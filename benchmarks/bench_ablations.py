"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its design arguments:

* **event-logger scaling** — "For scalability reasons, several event
  loggers may be used in a system": the EL is a shared contention point,
  so the latency-bound CG kernel speeds up with more loggers;
* **event batching** — the daemon may aggregate reception events per
  push; batch size trades EL load against acknowledgement latency;
* **log slab size** — the slab-allocated message log is what turns LU's
  modest payload volume into a disk-spilling 1 GB (DESIGN.md note 5);
* **collective latency per device** — the per-collective cost behind the
  CG/MG penalty of Figure 7.
"""

import pytest

from repro.analysis.report import Report
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job
from repro.workloads import nas
from repro.workloads.collect import collective_bench

from conftest import record_report


def bench_event_logger_scaling(benchmark):
    def run():
        rows = []
        out = {}
        for n_el in (1, 2, 4):
            res = run_job(
                nas.cg.program, 16, device="v2", params={"klass": "A"},
                n_event_loggers=n_el, limit=1e6,
            )
            rows.append([n_el, res.elapsed])
            out[n_el] = res.elapsed
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = Report("Ablation - event loggers for CG-A-16 (V2)")
    rep.table(["event loggers", "elapsed s"], rows)
    rep.add(
        "the paper: 'For scalability reasons, several event loggers may be "
        "used' -- the shared EL serializes event handling, so the "
        "latency-bound kernel gains from spreading ranks across loggers"
    )
    record_report(rep)
    assert out[4] < out[1]


def bench_event_batch_cap(benchmark):
    def run():
        rows = []
        out = {}
        for cap in (1, 4, 32):
            cfg = DEFAULT_TESTBED.with_(el_batch_cap=cap)
            res = run_job(
                nas.cg.program, 8, device="v2", params={"klass": "A"},
                cfg=cfg, limit=1e6,
            )
            rows.append([cap, res.elapsed])
            out[cap] = res.elapsed
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = Report("Ablation - event batch cap for CG-A-8 (V2)")
    rep.table(["batch cap", "elapsed s"], rows)
    rep.add(
        "larger batches amortize event-logger round trips; per-event "
        "pushes (cap=1) maximize the pessimistic gate's stalls"
    )
    record_report(rep)
    assert out[32] <= out[1]


def bench_log_slab_size(benchmark):
    def run():
        rows = []
        out = {}
        for slab in (1, 8 << 10, 24 << 10):
            cfg = DEFAULT_TESTBED.with_(log_slab_bytes=slab)
            res = run_job(
                nas.lu.program, 8, device="v2", params={"klass": "A"},
                cfg=cfg, limit=1e7,
            )
            disp = res.extras["dispatcher"]
            disk = max(
                disp.states[r].daemon.saved.bytes_on_disk for r in range(8)
            )
            rows.append([slab, res.elapsed, disk / 1e6])
            out[slab] = res.elapsed
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = Report("Ablation - message-log slab size for LU-A-8 (V2)")
    rep.table(["slab bytes", "elapsed s", "max disk MB"], rows)
    rep.add(
        "with byte-exact accounting (slab=1) LU's 40 MB payload stream "
        "never spills and runs at P4 speed; slab allocation is what pushes "
        "the log into swap and reproduces the paper's LU collapse"
    )
    record_report(rep)
    assert out[24 << 10] > 1.5 * out[1]


def bench_collective_latency(benchmark):
    OPS = ("barrier", "bcast", "allreduce", "alltoall")

    def run():
        rows = []
        out = {}
        barrier_cost = {}
        for dev in ("p4", "v1", "v2"):
            res = run_job(
                collective_bench, 8, device=dev,
                params={"op": "barrier", "nbytes": 64, "reps": 10}, limit=1e6,
            )
            barrier_cost[dev] = max(res.results)
        for op in OPS:
            cells = [op]
            for dev in ("p4", "v1", "v2"):
                if op == "barrier":
                    t = barrier_cost[dev] * 1e6
                else:
                    # fence the reps so rooted collectives measure latency,
                    # then remove the fence's own cost
                    res = run_job(
                        collective_bench, 8, device=dev,
                        params={"op": op, "nbytes": 64, "reps": 10,
                                "fenced": True},
                        limit=1e6,
                    )
                    t = (max(res.results) - barrier_cost[dev]) * 1e6
                cells.append(t)
                out[(op, dev)] = t
            rows.append(cells)
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = Report("Ablation - small collective latency, 8 ranks (us)")
    rep.table(["collective", "P4", "V1", "V2"], rows)
    rep.add(
        "every tree stage pays the per-message fault-tolerance cost: the "
        "V2/P4 gap per collective is the amplification factor behind the "
        "CG and MG results of Figure 7"
    )
    record_report(rep)
    for op in OPS:
        assert out[(op, "v2")] > out[(op, "p4")]


def bench_grid_event_logger_placement(benchmark):
    """Grid deployments (the paper's future work): every reception event
    crosses the CN-to-EL path before the next send may leave, so a
    wide-area event logger multiplies V2's per-message cost.  Placing one
    logger per site recovers almost all of it."""
    from repro.runtime.mpirun import run_job
    from repro.runtime.progfile import parse_progfile
    from repro.workloads.token_ring import token_ring

    REMOTE_EL = """
a1 CN site=alpha
b1 CN site=beta
a2 CN site=alpha
b2 CN site=beta
fe EL site=alpha
st CS site=alpha
"""
    # ranks alternate sites; rank %% 2 maps odd ranks to the beta logger
    PER_SITE_EL = REMOTE_EL.replace(
        "fe EL site=alpha", "fe EL site=alpha\nfb EL site=beta"
    )
    LOCAL = """
a1 CN site=alpha
b1 CN site=alpha
a2 CN site=alpha
b2 CN site=alpha
fe EL site=alpha
st CS site=alpha
"""

    def run():
        params = {"rounds": 150, "nbytes": 2048}
        rows = []
        out = {}
        for label, text in (("single cluster", LOCAL),
                            ("grid, remote EL", REMOTE_EL),
                            ("grid, EL per site", PER_SITE_EL)):
            res = run_job(token_ring, 4, device="v2",
                          plan=parse_progfile(text), limit=1e6)
            rows.append([label, res.elapsed])
            out[label] = res.elapsed
        return rows, out

    rows, out = benchmark.pedantic(run, rounds=1, iterations=1)
    rep = Report("Ablation - Grid deployment: event-logger placement")
    rep.table(["deployment", "ring time s"], rows)
    rep.add(
        "the WAITLOGGED gate makes every reception pay the CN->EL round "
        "trip before the node's next send: a wide-area logger multiplies "
        "V2's latency cost; one logger per site recovers most of it "
        "(the paper: 'several event loggers may be used in a system')"
    )
    record_report(rep)
    assert out["grid, remote EL"] > 1.5 * out["single cluster"]
    assert out["grid, EL per site"] < out["grid, remote EL"]
