"""The replicated checkpoint store: incremental bytes and restart time.

Two claims of the store subsystem, measured on CG-A-8:

* **incremental checkpoints move fewer bytes** — with the deterministic
  dirty-region model, only regions written since the previous checkpoint
  (plus the per-sequence header and fresh sender-log windows) miss the
  replica's content-addressed chunk store.  The acceptance bar is a
  **40%** reduction in pushed bytes vs full checkpoints, with at least
  3 checkpoints per rank so dedup actually gets a history to hit.

* **replication does not slow the restart path down** — a restart fetch
  against 3 replicas (write quorum 2) with one replica crashed for the
  whole detect/respawn/fetch window completes by failing over, in time
  comparable to the single-server baseline.

Results land in ``BENCH_ckpt_store.json`` at the repository root.

The sweep runs on a widened-link variant of the calibrated testbed: on the
paper's Fast Ethernet, pushing CG-A's ~7.5 MB images three times per
rank takes longer than the kernel runs, so no configuration could reach
the required checkpoint count.  The quantity under test — bytes pushed,
full vs incremental — is a property of the chunker and the dirty-region
model, not of the link, so the faster wire changes how many checkpoints
fit, never the ratio.

Run as a pytest benchmark (``pytest benchmarks/`` — *not* part of the
tier-1 suite) or directly: ``python benchmarks/bench_ckpt_store.py``.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.report import Report
from repro.ft.failure import ExplicitFaults, ServiceFaults
from repro.obs import recovery_timeline
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job
from repro.simnet.network import LinkConfig
from repro.workloads import nas

from conftest import record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_ckpt_store.json"
BUDGET = 0.40  # incremental must push at least 40% fewer bytes than full

KLASS = "A"
NPROCS = 8
CKPT_INTERVAL = 0.08

# the paper's Fast Ethernet, 25x wider (see module docstring): wide
# enough that three full-image rounds per rank fit into CG-A's runtime
FAST_WIRE = DEFAULT_TESTBED.with_(link=LinkConfig(bandwidth=285e6))


def _ckpt_run(incremental: bool) -> dict:
    # interval-driven (not continuous) ordering: both modes checkpoint on
    # the same cadence, so total pushed bytes compare like for like —
    # continuous mode would self-pace on push cost and hand the cheap
    # incremental run an order of magnitude more checkpoints
    cfg = FAST_WIRE.with_(ckpt_incremental=incremental)
    res = run_job(
        nas.cg.program, NPROCS, device="v2", cfg=cfg,
        params={"klass": KLASS}, limit=1e8,
        checkpointing=True, ckpt_policy="round_robin",
        ckpt_interval=CKPT_INTERVAL,
    )
    replica = res.extras["checkpoint_servers"][0]
    seqs = [max(per) for per in replica.manifests.values()]
    return {
        "mode": "incremental" if incremental else "full",
        "push_bytes": res.metrics.total("store.push_bytes"),
        "dedup_bytes": res.metrics.total("store.dedup_bytes"),
        "checkpoints": res.checkpoints,
        "ckpts_per_rank_min": min(seqs) if len(seqs) == NPROCS else 0,
        "elapsed_s": res.elapsed,
    }


def _restart_run(replicas: int, quorum: int, crash_cs: bool) -> dict:
    cfg = FAST_WIRE.with_(
        ckpt_servers=replicas, ckpt_replicas=quorum, ckpt_incremental=True
    )
    faults = [ExplicitFaults([(1.2, 2)])]
    if crash_cs:
        # down through the killed rank's whole detect+respawn+fetch window
        faults.append(ServiceFaults([(1.1, "cs:0", 3.0)]))
    res = run_job(
        nas.cg.program, NPROCS, device="v2", cfg=cfg,
        params={"klass": KLASS}, limit=1e8, trace=True,
        checkpointing=True, ckpt_policy="round_robin",
        ckpt_continuous=True, ckpt_interval=CKPT_INTERVAL,
        faults=faults,
    )
    spans = [s for s in recovery_timeline(res.tracer) if s.rank == 2]
    recovery = spans[0].recovery_s if spans else None
    return {
        "replicas": replicas,
        "quorum": quorum,
        "cs_crashed_mid_restart": crash_cs,
        "recovery_s": recovery,
        "failovers": int(res.metrics.total("store.failover")),
        "fetch_bytes": res.metrics.total("store.fetch_bytes"),
        "restarts": res.restarts,
        "elapsed_s": res.elapsed,
    }


def measure() -> dict:
    full = _ckpt_run(incremental=False)
    incr = _ckpt_run(incremental=True)
    reduction = 1.0 - incr["push_bytes"] / full["push_bytes"]
    restarts = [
        _restart_run(replicas=1, quorum=1, crash_cs=False),
        _restart_run(replicas=3, quorum=2, crash_cs=True),
    ]
    return {
        "kernel": "cg",
        "klass": KLASS,
        "nprocs": NPROCS,
        "ckpt_interval": CKPT_INTERVAL,
        "full": full,
        "incremental": incr,
        "reduction": reduction,
        "budget": BUDGET,
        "restart": restarts,
    }


def _render(out: dict) -> Report:
    rep = Report(f"Checkpoint store - CG-{KLASS}-{NPROCS} (V2)")
    rep.table(
        ["mode", "pushed MB", "deduped MB", "ckpts/rank >="],
        [[r["mode"], r["push_bytes"] / 1e6, r["dedup_bytes"] / 1e6,
          r["ckpts_per_rank_min"]]
         for r in (out["full"], out["incremental"])],
    )
    rep.add(
        f"incremental checkpoints push {out['reduction']:.1%} fewer bytes "
        f"(budget: {BUDGET:.0%}) — unchanged memory regions and already-"
        f"stored sender-log windows dedup against the replica's chunk store"
    )
    rep.table(
        ["replicas", "quorum", "cs crash", "recovery s", "failovers"],
        [[r["replicas"], r["quorum"], r["cs_crashed_mid_restart"],
          r["recovery_s"], r["failovers"]] for r in out["restart"]],
    )
    rep.add(
        "the 3-replica restart rides out a checkpoint server crashed for "
        "the whole recovery window: the fetch fails over to a surviving "
        "replica instead of stalling"
    )
    return rep


def _check(out: dict) -> None:
    assert out["full"]["ckpts_per_rank_min"] >= 3, out["full"]
    assert out["incremental"]["ckpts_per_rank_min"] >= 3, out["incremental"]
    assert out["reduction"] >= BUDGET, (
        f"incremental reduction {out['reduction']:.1%} below the "
        f"{BUDGET:.0%} budget"
    )
    for r in out["restart"]:
        assert r["recovery_s"] is not None, r
    assert out["restart"][1]["failovers"] >= 1, out["restart"][1]


def bench_ckpt_store():
    out = measure()
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    record_report(_render(out))
    _check(out)


if __name__ == "__main__":
    out = measure()
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    _check(out)
    print(
        f"OK: incremental pushes {out['reduction']:.1%} fewer bytes "
        f"(budget {BUDGET:.0%}); 3-replica restart failed over "
        f"{out['restart'][1]['failovers']} time(s) and recovered in "
        f"{out['restart'][1]['recovery_s']:.2f}s"
    )
