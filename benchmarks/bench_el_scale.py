"""Event-logger scaling: sharding and replication under a replica kill.

The paper prices the pessimistic-logging tax as the event-logger round
trip gating every send (Table 1) — and assumes the logger itself is
reliable.  This benchmark drops both simplifications at once: it sweeps
the EL replication group's two knobs (``el_servers`` shards ×
``el_replicas`` copies) on CG-A-8 and, for every replicated
configuration, kills one replica mid-run.  Three claims are gated:

- **availability** — with K=3 (majority quorum 2) the kill is absorbed:
  the job completes with a clean audit, zero rank restarts, and the
  relaunched replica resyncs from its peers;
- **scaling** — sharding ranks across EL servers reduces the el-ack
  share of the protocol's critical path (the WAITLOGGED tax) versus the
  single-server baseline, because each shard serves fewer ranks;
- **regression gate** — the killed-replica run's elapsed time must not
  exceed the checked-in ``BENCH_el_scale.json`` baseline by more than
  ``REGRESSION_BUDGET`` (simulated time on a fixed seed: deterministic).

Results land in ``BENCH_el_scale.json`` at the repository root (the CI
artifact and the next baseline).  Run as a pytest benchmark
(``pytest benchmarks/`` — *not* part of the tier-1 suite) or directly:
``python benchmarks/bench_el_scale.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.analysis.report import Report, format_table
from repro.ft.failure import ServiceFaults
from repro.obs.profile import critical_path
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_el_scale.json"

#: (el_servers, el_replicas) swept; (1, 1) is the paper's reliable-EL shape
CONFIGS = ((1, 1), (2, 1), (1, 3), (2, 3))
FULL_CONFIGS = CONFIGS + ((4, 3),)
KILL_AT = 1.0  # simulated seconds; CG-A-8 runs ~3.3 s
DOWNTIME = 0.8  # relaunch + peer resync land well before the job ends
SEED = 1
REGRESSION_BUDGET = 0.20  # killed-run elapsed vs the checked-in baseline


def _el_ack_share(res) -> float:
    cp = critical_path(res.audit.hb)
    return next(
        (c["share"] for c in cp["contributions"] if c["category"] == "el-ack"),
        0.0,
    )


def _run_config(servers: int, replicas: int, nprocs: int, klass: str) -> dict:
    cfg = DEFAULT_TESTBED.with_(el_servers=servers, el_replicas=replicas)
    # replicated configurations take a mid-run replica kill (replica 1 of
    # shard 0); K=1 has no redundant copy to lose without data loss
    faults = (
        [ServiceFaults([(KILL_AT, "el:0.1", DOWNTIME)])]
        if replicas > 1
        else None
    )
    res = run_job(
        nas.cg.program, nprocs, device="v2", cfg=cfg,
        params={"klass": klass}, limit=1e8, seed=SEED,
        faults=faults, audit=True, audit_hb=True,
    )
    m = res.metrics
    shard_cpu = {}
    for metric in m:
        if metric.name == "el.cpu_s":
            key = str(metric.labels.get("shard", 0))
            shard_cpu[key] = shard_cpu.get(key, 0.0) + metric.value
    return {
        "el_servers": servers,
        "el_replicas": replicas,
        "quorum": min(replicas, cfg.el_quorum),
        "killed_replica": "el:0.1" if replicas > 1 else None,
        "elapsed": res.elapsed,
        "restarts": res.restarts,
        "audit_clean": res.audit.clean,
        "el_ack_share": _el_ack_share(res),
        "quorum_wait_p95_s": m.quantile("el.quorum_wait_s", 0.95),
        "failovers": int(m.total("el.failovers")),
        "resyncs": int(m.total("el.resyncs")),
        "events_resynced": int(m.total("el.events_resynced")),
        "shard_cpu_s": shard_cpu,
    }


def measure_el_scale(nprocs: int = 8, klass: str = "A") -> dict:
    """Sweep shard/replica configurations; one replica kill per K>1 run."""
    configs = FULL_CONFIGS if full_sweep() else CONFIGS
    sweep = [_run_config(s, k, nprocs, klass) for s, k in configs]
    base = next(
        r for r in sweep if r["el_servers"] == 1 and r["el_replicas"] == 1
    )
    multi = [r for r in sweep if r["el_servers"] > 1]
    return {
        "kernel": "cg",
        "klass": klass,
        "nprocs": nprocs,
        "seed": SEED,
        "kill_at_s": KILL_AT,
        "downtime_s": DOWNTIME,
        "sweep": sweep,
        "baseline_el_ack_share": base["el_ack_share"],
        "best_sharded_el_ack_share": min(r["el_ack_share"] for r in multi),
        "regression_budget": REGRESSION_BUDGET,
    }


def _load_baseline() -> dict:
    """The checked-in result this run is gated against (may be absent)."""
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except (OSError, ValueError):
            return {}
    return {}


def check_el_scale(out: dict, baseline: dict) -> list[str]:
    """All budget violations as human-readable strings (empty = pass)."""
    problems: list[str] = []
    for row in out["sweep"]:
        tag = f"{row['el_servers']}x{row['el_replicas']}"
        if not row["audit_clean"]:
            problems.append(f"{tag}: audit reported violations")
        if row["el_replicas"] > 1:
            if row["restarts"] != 0:
                problems.append(
                    f"{tag}: a replica kill triggered {row['restarts']} "
                    f"rank restart(s) — the quorum must absorb it"
                )
            if row["failovers"] < 1:
                problems.append(
                    f"{tag}: the kill produced no client failover — "
                    f"the fault did not land"
                )
            if row["resyncs"] < 1:
                problems.append(
                    f"{tag}: the relaunched replica never resynced"
                )
    if out["best_sharded_el_ack_share"] >= out["baseline_el_ack_share"]:
        problems.append(
            f"sharding never reduced the el-ack critical-path share: "
            f"best sharded {out['best_sharded_el_ack_share']:.3f} vs "
            f"single-server {out['baseline_el_ack_share']:.3f}"
        )
    killed = next(
        (r for r in out["sweep"]
         if r["el_servers"] == 2 and r["el_replicas"] == 3), None
    )
    base_rows = {
        f"{r['el_servers']}x{r['el_replicas']}": r
        for r in baseline.get("sweep", ())
    }
    if killed is not None and "2x3" in base_rows:
        base_elapsed = base_rows["2x3"]["elapsed"]
        limit = base_elapsed * (1.0 + REGRESSION_BUDGET)
        if killed["elapsed"] > limit:
            problems.append(
                f"2x3 killed-replica elapsed {killed['elapsed']:.2f}s "
                f"regresses >{REGRESSION_BUDGET:.0%} vs baseline "
                f"{base_elapsed:.2f}s"
            )
        killed["baseline_elapsed"] = base_elapsed
    return problems


def _sweep_table(out: dict) -> str:
    base_elapsed = out["sweep"][0]["elapsed"]
    rows = []
    for row in out["sweep"]:
        rows.append(
            [
                f"{row['el_servers']}x{row['el_replicas']}",
                row["quorum"],
                row["killed_replica"] or "-",
                row["elapsed"],
                row["elapsed"] / base_elapsed,
                row["el_ack_share"],
                row["quorum_wait_p95_s"] * 1e6,
                row["failovers"],
                row["resyncs"],
                "clean" if row["audit_clean"] else "VIOLATIONS",
            ]
        )
    return format_table(
        ["SxK", "quorum", "killed", "elapsed s", "vs 1x1", "el-ack share",
         "qwait p95 us", "failovers", "resyncs", "audit"],
        rows,
    )


def bench_el_scale():
    baseline = _load_baseline()
    out = measure_el_scale()
    problems = check_el_scale(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(
        f"EL scaling - CG-{out['klass']}-{out['nprocs']} shard/replica sweep"
    )
    rep.add(_sweep_table(out))
    rep.add(
        f"el-ack critical-path share: {out['baseline_el_ack_share']:.3f} "
        f"single-server -> {out['best_sharded_el_ack_share']:.3f} best "
        f"sharded; every K=3 run absorbed a replica kill with a clean "
        f"audit and zero rank restarts"
    )
    record_report(rep)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    baseline = _load_baseline()
    out = measure_el_scale()
    problems = check_el_scale(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    print(_sweep_table(out))
    if problems:
        for p in problems:
            print(f"OVER BUDGET: {p}")
        sys.exit(1)
    print(
        f"OK: el-ack share {out['baseline_el_ack_share']:.3f} -> "
        f"{out['best_sharded_el_ack_share']:.3f}; replica kills absorbed"
    )
    sys.exit(0)
