"""Figure 10: re-execution performance of the asynchronous token ring.

Paper: 8 computing nodes + one event logger, checkpointing disabled.
After a (near-)complete run, x nodes are killed and restarted from the
beginning.  Claims:

* one restarted node re-executes in about *half* the reference time —
  only the receptions are replayed (its own sends are suppressed: every
  peer already delivered them) and event-logger round trips are not
  replayed;
* with many nodes re-executing the time approaches the reference;
* the knee between 64 KB and 128 KB comes from the eager-to-rendezvous
  protocol switch.

Reproduction note (see EXPERIMENTS.md): in our model the fault-free ring
is already transfer-bound — the V2 daemon overlaps each node's token-in
and token-out on the full-duplex NIC — so the re-execution saving is the
per-round event-logger gating latency: large in the small-message range
(re-execution ~0.6x of the reference) and shrinking toward parity for
bulk messages, rather than the paper's flat ~0.5x.  The qualitative
claims (1-restart cheapest, approach to the reference with more
restarts, the eager/rendezvous knee in the reference curve) hold.

We kill the x nodes during the last stretch of the run, so re-execution
spans essentially the whole history; re-execution time is measured from
the spawn of the new incarnation to its completion (detection and rsh
delays excluded, as in the paper's measurement).
"""

import pytest

from repro.analysis.report import Report
from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job
from repro.workloads.token_ring import token_ring

from conftest import full_sweep, record_report

NODES = 8
ROUNDS = 300
SIZES_DEFAULT = [4096, 16384, 65536, 131072]
SIZES_FULL = [1024, 4096, 16384, 32768, 65536, 131072, 262144]
RESTARTS_DEFAULT = [1, 4, 8]
RESTARTS_FULL = [1, 2, 4, 6, 8]


def run_fig10():
    sizes = SIZES_FULL if full_sweep() else SIZES_DEFAULT
    xs = RESTARTS_FULL if full_sweep() else RESTARTS_DEFAULT
    rows = []
    data = {}
    for nbytes in sizes:
        params = {"rounds": ROUNDS, "nbytes": nbytes}
        ref = run_job(token_ring, NODES, device="v2", params=params, limit=1e6)
        reference = ref.elapsed
        cells = [nbytes, reference]
        data[(nbytes, 0)] = reference
        for x in xs:
            t_kill = 0.97 * reference
            faults = ExplicitFaults([(t_kill, r) for r in range(x)])
            res = run_job(
                token_ring, NODES, device="v2", params=params,
                faults=faults, limit=1e6,
            )
            assert res.restarts == x
            disp = res.extras["dispatcher"]
            reexec = max(
                disp.states[r].finish_time - disp.states[r].spawn_time
                for r in range(x)
            )
            cells.append(reexec)
            data[(nbytes, x)] = reexec
        rows.append(cells)
    return xs, rows, data


def bench_fig10_reexecution(benchmark):
    xs, rows, data = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    rep = Report("Figure 10 - token ring re-execution time (s), 8 nodes")
    rep.table(["bytes", "reference"] + [f"{x}-restart" for x in xs], rows)
    rep.add(
        "paper: 1-restart ~ half the reference (only receptions replayed,"
        " no event-logger round trips); more restarts approach the"
        " reference.  Here the saving equals the per-round event-logging"
        " latency: pronounced for small messages, vanishing for bulk"
        " (see EXPERIMENTS.md)."
    )
    record_report(rep)
    small = min(k[0] for k in data)
    big = max(k[0] for k in data)
    # 1-restart re-executes substantially faster in the latency-bound range
    assert data[(small, 1)] < 0.8 * data[(small, 0)]
    # re-execution of one node never beats physics: at most ~reference
    for nbytes in {k[0] for k in data}:
        assert data[(nbytes, 1)] <= 1.1 * data[(nbytes, 0)]
    # more restarted nodes take at least as long as one
    for nbytes in {k[0] for k in data}:
        assert data[(nbytes, max(xs))] >= 0.95 * data[(nbytes, 1)]
    # note: the paper's eager->rendezvous knee between 64 and 128 KB is
    # not visible here — the V2 daemon overlaps the rendezvous handshake
    # with the transfer, so the per-byte cost stays flat across the
    # threshold (recorded as a deviation in EXPERIMENTS.md)
