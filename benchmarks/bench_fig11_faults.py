"""Figure 11: BT-A on 4 nodes under an increasing number of faults.

Paper setup: continuous checkpointing ("the system is always
checkpointing a node") with a random selection policy; faults are
termination signals to a randomly selected MPI process, any time —
including during a checkpoint or a re-execution.  Claims:

1. low overhead of the checkpoint system when no fault occurs;
2. smooth degradation of the execution time with the fault count;
3. execution time below twice the fault-free reference at 9 faults.
"""

import pytest

from repro.analysis.report import Report
from repro.ft.failure import RandomFaults
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

FAULTS_DEFAULT = [0, 1, 3, 9]
FAULTS_FULL = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]


def run_fig11():
    prog = nas.bt.program
    params = {"klass": "A"}
    base = run_job(prog, 4, device="v2", params=params, limit=1e7)
    reference = base.elapsed  # no checkpointing, no faults
    fault_interval = reference / 10  # the paper: one fault every 45 s
    counts = FAULTS_FULL if full_sweep() else FAULTS_DEFAULT
    rows = []
    times = {}
    for n in counts:
        res = run_job(
            prog, 4, device="v2", params=params,
            checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
            faults=RandomFaults(interval=fault_interval, count=n, seed=11 + n)
            if n
            else None,
            limit=1e7,
        )
        rows.append([n, res.elapsed, res.elapsed / reference, res.restarts,
                     res.checkpoints])
        times[n] = res.elapsed
    return reference, rows, times


def bench_fig11_faults(benchmark):
    reference, rows, times = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    rep = Report("Figure 11 - BT-A on 4 nodes, increasing fault count")
    rep.add(f"fault-free, checkpoint-free reference: {reference:.1f} s")
    rep.table(
        ["faults", "time s", "vs reference", "restarts", "checkpoints"], rows
    )
    rep.add(
        "paper: low no-fault checkpointing overhead; smooth degradation; "
        "under 2x the reference at 9 faults (1 fault per ~45 s)"
    )
    record_report(rep)
    counts = sorted(times)
    # claim 1: checkpointing alone costs little
    assert times[0] < 1.2 * reference
    # claim 2: smooth degradation (monotonic within noise)
    assert times[counts[-1]] >= times[0]
    # claim 3: < 2x reference at the maximum fault count
    assert times[counts[-1]] < 2.0 * reference
