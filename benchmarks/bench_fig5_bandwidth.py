"""Figure 5: ping-pong bandwidth comparison (MPICH-P4 / V1 / V2).

Paper: P4 reaches 11.3 MB/s for large messages, MPICH-V2 10.7 MB/s
(slightly slower, "always close to MPICH-P4"), MPICH-V1 "down to two
times slower" because every payload crosses a Channel Memory.
"""

import pytest

from repro.analysis.report import Report
from repro.workloads.pingpong import measure

from conftest import full_sweep, record_report

SIZES_DEFAULT = [4096, 65536, 262144, 1048576, 4194304]
SIZES_FULL = [1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216]


def run_fig5():
    sizes = SIZES_FULL if full_sweep() else SIZES_DEFAULT
    rows = []
    peak = {}
    for nbytes in sizes:
        cells = [nbytes]
        for dev in ("p4", "v1", "v2"):
            bw = measure(dev, nbytes, reps=4)["bandwidth_MBps"]
            cells.append(bw)
            peak[dev] = max(peak.get(dev, 0.0), bw)
        rows.append(cells)
    return rows, peak


def bench_fig5_bandwidth(benchmark):
    rows, peak = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    rep = Report("Figure 5 - ping-pong bandwidth (MB/s)")
    rep.table(["bytes", "P4", "V1", "V2"], rows)
    rep.add(
        f"peak: P4={peak['p4']:.2f}  V1={peak['v1']:.2f}  V2={peak['v2']:.2f} MB/s\n"
        "paper: P4=11.3, V2=10.7 (~95% of P4), V1 about half of P4"
    )
    record_report(rep)
    # shape assertions
    assert peak["p4"] == pytest.approx(11.3, rel=0.05)
    assert 0.88 * peak["p4"] <= peak["v2"] < peak["p4"]
    assert peak["v1"] == pytest.approx(peak["p4"] / 2, rel=0.2)
