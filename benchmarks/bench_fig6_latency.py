"""Figure 6: ping-pong latency comparison for short messages.

Paper: 0-byte one-way latency is 77 us for MPICH-P4 and 237 us for
MPICH-V2 ("six TCP messages... P4 only sends two"); the event-logger
acknowledgement gates each send.  MPICH-V1 sits in between (every message
takes two hops through a Channel Memory but needs no synchronous ack).
"""

import pytest

from repro.analysis.report import Report
from repro.workloads.pingpong import measure

from conftest import full_sweep, record_report

SIZES_DEFAULT = [0, 256, 1024, 4096, 16384]
SIZES_FULL = [0, 64, 256, 1024, 2048, 4096, 8192, 16384]


def run_fig6():
    sizes = SIZES_FULL if full_sweep() else SIZES_DEFAULT
    rows = []
    zero = {}
    for nbytes in sizes:
        cells = [nbytes]
        for dev in ("p4", "v1", "v2"):
            lat = measure(dev, nbytes, reps=8)["latency_us"]
            cells.append(lat)
            if nbytes == 0:
                zero[dev] = lat
        rows.append(cells)
    return rows, zero


def bench_fig6_latency(benchmark):
    rows, zero = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    rep = Report("Figure 6 - ping-pong one-way latency (us)")
    rep.table(["bytes", "P4", "V1", "V2"], rows)
    rep.add(
        f"0-byte latency: P4={zero['p4']:.0f}  V1={zero['v1']:.0f}  "
        f"V2={zero['v2']:.0f} us\n"
        "paper: P4=77 us, V2=237 us (~3x), V1 in between"
    )
    record_report(rep)
    assert zero["p4"] == pytest.approx(77, rel=0.08)
    assert 2.5 * zero["p4"] <= zero["v2"] <= 4.5 * zero["p4"]
    assert zero["p4"] < zero["v1"] < zero["v2"]
