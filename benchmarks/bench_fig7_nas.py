"""Figure 7: NPB 2.3 performance, MPICH-P4 vs MPICH-V2.

Paper claims reproduced here:

* CG and MG (many small messages): "the higher latency of MPICH-V2 leads
  to a high performance penalty", growing with the process count;
* FT (all-to-all of large messages): V2 "reach[es] the performance of
  MPICH-P4"; FT class B exceeds the 2 GB message-log budget without
  checkpointing and cannot run — reported as LOG-OVERFLOW;
* LU (huge message count): poor on V2 — event-log gating per message
  plus the logging daemon competing for the CPU;
* BT and SP (large messages, nonblocking overlap): "MPICH-V2 can provide
  the same performance as MPICH-P4 or even better ones".

Default sweep is a representative subset; REPRO_BENCH_FULL=1 runs classes
A+B on process counts up to 32 (slow).
"""

import pytest

from repro.analysis.metrics import mops
from repro.analysis.report import Report
from repro.core.sender_log import LogOverflow
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

DEFAULT = {
    "cg": ("A", [8, 16]),
    "mg": ("A", [8, 16]),
    "ft": ("A", [4, 8]),
    "lu": ("A", [4, 8]),
    "bt": ("A", [4, 9]),
    "sp": ("A", [4, 9]),
}
FULL_PROCS = {
    "cg": [1, 2, 4, 8, 16, 32],
    "mg": [1, 2, 4, 8, 16, 32],
    "ft": [1, 2, 4, 8, 16, 32],
    "lu": [1, 2, 4, 8, 16, 32],
    "bt": [1, 4, 9, 16, 25],
    "sp": [1, 4, 9, 16, 25],
}


def run_kernel(name, klass, nprocs, device):
    prog = nas.KERNELS[name].program
    return run_job(prog, nprocs, device=device, params={"klass": klass}, limit=1e7)


def run_fig7():
    rows = []
    ratios = {}
    classes = ("A", "B") if full_sweep() else ("A",)
    for name in sorted(DEFAULT):
        klass_default, procs_default = DEFAULT[name]
        procs = FULL_PROCS[name] if full_sweep() else procs_default
        for klass in classes:
            sp = nas.KERNELS[name].spec(klass)
            for p in procs:
                t_p4 = run_kernel(name, klass, p, "p4")
                t_v2 = run_kernel(name, klass, p, "v2")
                rows.append(
                    [
                        f"{name.upper()}-{klass}",
                        p,
                        t_p4.elapsed,
                        t_v2.elapsed,
                        mops(sp.total_flops, t_p4),
                        mops(sp.total_flops, t_v2),
                        t_v2.elapsed / t_p4.elapsed,
                    ]
                )
                ratios[(name, klass, p)] = t_v2.elapsed / t_p4.elapsed
    return rows, ratios


def run_ft_b_overflow():
    """FT class B without checkpointing: the 2 GB log budget bursts."""
    try:
        run_kernel("ft", "B", 4, "v2")
    except LogOverflow as exc:
        return str(exc)
    return None


def bench_fig7_nas(benchmark):
    rows, ratios = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    overflow = run_ft_b_overflow()
    rep = Report("Figure 7 - NPB 2.3, P4 vs V2")
    rep.table(
        ["kernel", "procs", "P4 s", "V2 s", "P4 Mop/s", "V2 Mop/s", "V2/P4"],
        rows,
    )
    rep.add(
        "paper shapes: CG/MG penalized on V2 (latency-bound, worsens with "
        "procs); FT ~equal; LU poor on V2; BT/SP equal or better on V2"
    )
    if overflow:
        rep.add(
            "FT-B on 4 procs without checkpointing: LOG-OVERFLOW as in the "
            f"paper ('memory size limitations') -> {overflow}"
        )
    record_report(rep)

    # latency-bound kernels: V2 pays, and pays more at scale
    assert ratios[("cg", "A", 16)] > 1.5
    assert ratios[("cg", "A", 16)] > ratios[("cg", "A", 8)]
    assert ratios[("mg", "A", 16)] > 1.05
    # bandwidth-bound: FT close to P4
    assert ratios[("ft", "A", 8)] < 1.25
    # LU: worse on V2
    assert ratios[("lu", "A", 8)] > 1.1
    # BT/SP: V2 matches or beats P4
    assert ratios[("bt", "A", 9)] < 1.05
    assert ratios[("sp", "A", 9)] < 1.05
    # FT class B exceeds the 2 GB log budget
    assert overflow is not None
