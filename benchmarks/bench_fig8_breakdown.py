"""Figure 8: execution-time breakdown of CG-A and BT-B on P4 / V1 / V2.

Paper: computation times are the same for all three implementations; the
CG communication time "increases dramatically" under both logging
protocols (V1 beats V2 there thanks to its lower small-message latency);
for BT-B the V2 communication time beats both P4 and V1.  MPICH-V1 uses
one Channel Memory per four computing nodes (9 reliable nodes at p=32
versus 1 for V2).
"""

import pytest

from repro.analysis.metrics import breakdown
from repro.analysis.report import Report
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report


def run_fig8():
    configs = [("cg", "A", 8), ("bt", "B" if full_sweep() else "A", 9)]
    out = {}
    for name, klass, p in configs:
        prog = nas.KERNELS[name].program
        for dev in ("p4", "v1", "v2"):
            res = run_job(prog, p, device=dev, params={"klass": klass}, limit=1e7)
            out[(name, klass, p, dev)] = breakdown(res)
    return configs, out


def bench_fig8_breakdown(benchmark):
    configs, out = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    rows = []
    for name, klass, p in configs:
        for dev in ("p4", "v1", "v2"):
            b = out[(name, klass, p, dev)]
            rows.append(
                [f"{name.upper()}-{klass}-{p}", dev.upper(), b["elapsed"],
                 b["compute"], b["comm"]]
            )
    rep = Report("Figure 8 - execution time breakdown (seconds)")
    rep.table(["benchmark", "MPI", "total", "compute", "comm"], rows)
    rep.add(
        "paper: identical compute across implementations; CG comm blows up "
        "under both logging protocols (V1 < V2 there); BT comm best on V2"
    )
    record_report(rep)

    (cg_name, cg_k, cg_p) = configs[0]
    (bt_name, bt_k, bt_p) = configs[1]
    cg = {d: out[(cg_name, cg_k, cg_p, d)] for d in ("p4", "v1", "v2")}
    bt = {d: out[(bt_name, bt_k, bt_p, d)] for d in ("p4", "v1", "v2")}
    # compute identical across devices (within the daemon CPU tax)
    for b in (cg, bt):
        ref = b["p4"]["compute"]
        for d in ("v1", "v2"):
            assert b[d]["compute"] == pytest.approx(ref, rel=0.15)
    # CG: both fault-tolerant protocols pay on communication
    assert cg["v2"]["comm"] > 1.1 * cg["p4"]["comm"]
    assert cg["v1"]["comm"] > cg["p4"]["comm"]
    # BT: V2's communication beats P4's and V1's
    assert bt["v2"]["comm"] < bt["p4"]["comm"]
    assert bt["v2"]["comm"] < bt["v1"]["comm"]
