"""Figure 9: the BT/SP-like synthetic nonblocking burst benchmark.

Paper: "Excepted for small messages where the higher latency of MPICH-V2
is predominant, MPICH-V2 performs better for non-blocking communications
than MPICH-P4, reaching twice the P4 bandwidth for 64 KB messages" — the
V2 daemon drains incoming chunks between transmissions (full duplex),
the P4 driver does not.
"""

import pytest

from repro.analysis.report import Report
from repro.workloads.synthetic import measure

from conftest import full_sweep, record_report

SIZES_DEFAULT = [1024, 4096, 16384, 65536, 131072]
SIZES_FULL = [256, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072]


def run_fig9():
    sizes = SIZES_FULL if full_sweep() else SIZES_DEFAULT
    rows = []
    ratio = {}
    for nbytes in sizes:
        p4 = measure("p4", nbytes, reps=4)["bandwidth_MBps"]
        v2 = measure("v2", nbytes, reps=4)["bandwidth_MBps"]
        rows.append([nbytes, p4, v2, v2 / p4])
        ratio[nbytes] = v2 / p4
    return rows, ratio


def bench_fig9_synthetic(benchmark):
    rows, ratio = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    rep = Report("Figure 9 - nonblocking burst bandwidth (MB/s per direction)")
    rep.table(["bytes", "P4", "V2", "V2/P4"], rows)
    rep.add(
        "paper: V2 below P4 for small messages, crossover in the few-KB "
        "range, V2 ~2x P4 at 64 KB (full-duplex daemon vs starved driver)"
    )
    record_report(rep)
    assert ratio[1024] < 1.0  # small messages: V2's latency dominates
    assert ratio[65536] > 1.7  # the paper's headline 2x
    assert ratio[131072] > 1.5
