"""Event-kernel throughput and profiler overhead.

The kernel profiler promises two things: that a kernel built *without*
a probe installed pays nothing for the hook points (the run loop and
``Process._step`` only ever test ``self._probe is None``), and that a
probed run stays cheap enough to leave on for any attribution question
(counts are exact, timing is sampled 1-in-``sample_every`` and scaled).

This benchmark measures the CG kernel — the highest event-rate workload
— three ways and records the results in ``BENCH_kernel.json`` at the
repository root:

- ``baseline``: plain run, no probe (the seed's code path).
- ``disabled``: identical plain run, re-measured — the hooks-present,
  probe-absent configuration.  Budget: **2%** over baseline (really a
  noise bound, since the code path is byte-identical).
- ``profiled``: ``profile=True``, full :class:`KernelProfiler`
  attached.  Budget: **10%** over baseline.

The recorded ``events_per_s`` figure is the throughput baseline the
profiler itself reports, for trending across commits.

Run as a pytest benchmark (``pytest benchmarks/`` — *not* part of the
tier-1 suite) or directly: ``python benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.analysis.report import Report
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"
BUDGET_DISABLED = 0.02  # hooks present, probe absent: noise bound
BUDGET_PROFILED = 0.10  # full profiler attached


def _time_run(nprocs: int, klass: str, profile: bool) -> tuple[float, object]:
    t0 = time.perf_counter()
    res = run_job(
        nas.cg.program, nprocs, device="v2", params={"klass": klass},
        limit=1e8, profile=profile,
    )
    return time.perf_counter() - t0, res


def measure_kernel(nprocs: int = 4, klass: str = "A", reps: int = 3) -> dict:
    """Min-of-N wall clock for baseline / disabled / profiled CG runs.

    Min (not median) because every source of variation here — scheduler
    noise, allocator state — only ever adds time; the floor is the
    honest per-configuration cost.
    """
    # warm both paths once so bytecode/allocator effects don't skew rep 1
    _time_run(nprocs, klass, False)
    _time_run(nprocs, klass, True)
    baseline = min(_time_run(nprocs, klass, False)[0] for _ in range(reps))
    disabled = min(_time_run(nprocs, klass, False)[0] for _ in range(reps))
    profiled_s = None
    last_profile = None
    for _ in range(reps):
        dt, res = _time_run(nprocs, klass, True)
        if profiled_s is None or dt < profiled_s:
            profiled_s = dt
        last_profile = res.profile
    return {
        "kernel": "cg",
        "klass": klass,
        "nprocs": nprocs,
        "reps": reps,
        "baseline_s": baseline,
        "disabled_s": disabled,
        "profiled_s": profiled_s,
        "disabled_overhead": (disabled - baseline) / baseline,
        "profiled_overhead": (profiled_s - baseline) / baseline,
        "budget_disabled": BUDGET_DISABLED,
        "budget_profiled": BUDGET_PROFILED,
        "events": last_profile.events,
        "events_per_s": last_profile.events_per_s,
        "sim_s": last_profile.sim_s,
        "sample_every": last_profile.sample_every,
    }


def bench_kernel_throughput():
    nprocs = 8 if full_sweep() else 4
    out = measure_kernel(nprocs=nprocs)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(f"Kernel throughput - CG-{out['klass']}-{out['nprocs']} (V2)")
    rep.table(
        ["baseline s", "disabled s", "profiled s",
         "disabled ovh", "profiled ovh", "events/s"],
        [[out["baseline_s"], out["disabled_s"], out["profiled_s"],
          f"{out['disabled_overhead']:+.1%}",
          f"{out['profiled_overhead']:+.1%}",
          f"{out['events_per_s']:,.0f}"]],
    )
    rep.add(
        "the probe hooks are a single identity test on the run-loop fast "
        "path when no profiler is installed; a full profiler samples "
        f"timing 1-in-{out['sample_every']} so counts stay exact while "
        "per-dispatch clock reads stay off the common case"
    )
    record_report(rep)
    assert out["disabled_overhead"] <= BUDGET_DISABLED, (
        f"probe-absent overhead {out['disabled_overhead']:.1%} exceeds the "
        f"{BUDGET_DISABLED:.0%} budget (baseline={out['baseline_s']:.3f}s "
        f"disabled={out['disabled_s']:.3f}s)"
    )
    assert out["profiled_overhead"] <= BUDGET_PROFILED, (
        f"profiled overhead {out['profiled_overhead']:.1%} exceeds the "
        f"{BUDGET_PROFILED:.0%} budget (baseline={out['baseline_s']:.3f}s "
        f"profiled={out['profiled_s']:.3f}s)"
    )


if __name__ == "__main__":
    out = measure_kernel()
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    ok = (
        out["disabled_overhead"] <= BUDGET_DISABLED
        and out["profiled_overhead"] <= BUDGET_PROFILED
    )
    status = "OK" if ok else "OVER BUDGET"
    print(
        f"{status}: disabled {out['disabled_overhead']:+.1%} "
        f"(budget {BUDGET_DISABLED:.0%}), profiled "
        f"{out['profiled_overhead']:+.1%} (budget {BUDGET_PROFILED:.0%})"
    )
    sys.exit(0 if ok else 1)
