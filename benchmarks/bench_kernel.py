"""Event-kernel throughput, profiler overhead, and the class-B gate.

The flat-event kernel rewrite promises four measurable things, all
recorded in ``BENCH_kernel.json`` at the repository root:

- **hook cost**: structurally zero, by construction rather than by
  measurement — ``set_probe(None)`` selects an uninstrumented run-loop
  twin with no hook points at all, and the parity test pins the twins
  to identical event order.  (The old bench timed a "hooks disabled"
  configuration separately; after the rewrite that is byte-identical
  code, and timing it produced exactly the nonsensical −5% "overhead"
  readings the interleaved methodology exists to avoid.)
- **probe cost**: a probed run stays cheap enough to leave on for any
  attribution question (counts exact, timing sampled
  1-in-``sample_every``); budget **15%** over the unprofiled run (the
  probe's fixed per-dispatch tax is a larger *fraction* of the faster
  flat-kernel baseline — the absolute cost is unchanged).
- **throughput**: the profiler's ``events_per_s`` meter on the guard
  workload (CG-A at 8 ranks, the highest event-rate kernel), for
  trending across commits.  Absolute events/sec is machine-dependent,
  so CI gates only a coarse sanity floor; the recorded
  ``seed_events_per_s`` / ``improvement_vs_seed`` fields carry the
  honest before/after figure, measured interleaved (seed run / new run
  alternating) on one machine so drift cancels.
- **scale**: CG class B at 64 ranks — the run the rewrite exists to
  unlock — completes under a wall-clock budget with a clean protocol
  audit, and the CG-A-8 el-ack critical-path share stays below 0.30
  with piggybacked acks enabled (it was 0.405 with dedicated ack
  frames).

Timing methodology: one warmup run per configuration, then
``reps`` *interleaved* rounds — each round times the unprofiled and
profiled configurations back-to-back, so slow machine phases (CI
neighbors, thermal throttling) hit both equally instead of biasing
whichever was measured last.  Per configuration the **min** across
rounds is kept: every source of variation here only ever adds time, so
the floor is the honest per-configuration cost.

Run as a pytest benchmark (``pytest benchmarks/`` — *not* part of the
tier-1 suite) or directly: ``python benchmarks/bench_kernel.py``.
``REPRO_BENCH_FULL=1`` adds nothing here — the guard already runs the
full configuration; set ``REPRO_BENCH_SKIP_B64=1`` to skip the class-B
scale run (it dominates the benchmark's wall clock).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sys
import time

from repro.analysis.report import Report
from repro.obs.profile import critical_path
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_kernel.json"
#: full profiler attached, vs the unprofiled min.  The probe's cost is
#: a fixed per-dispatch tax, so the flat kernel's faster baseline makes
#: the *ratio* larger even though the absolute cost did not move —
#: measured ~9.6% locally (was ~5% pre-rewrite); 15% leaves room for
#: runner jitter without masking a real sampling-path regression.
BUDGET_PROFILED = 0.15
#: machine-independent protocol gate: el-ack share of the CG-A-8
#: critical path with piggybacked acks (0.405 with dedicated frames)
BUDGET_EL_ACK_SHARE = 0.30
#: coarse CI sanity floor for the throughput meter — absolute events/sec
#: varies ~2x across runner generations, so this only catches
#: catastrophic regressions (the honest trend is improvement_vs_seed)
FLOOR_EVENTS_PER_S = 15_000.0
#: wall-clock budget for CG class B at 64 ranks (seconds); ~3x the
#: ~620 s local measurement so a slow CI runner passes but a quadratic
#: regression does not
BUDGET_B64_WALL_S = 1800.0
#: the pre-rewrite kernel's CG-A-8 throughput, measured on the same
#: machine as events_per_s below, interleaved with the rewritten
#: kernel's runs (alternating seed/new) so machine drift cancels.
#: Not a CI gate — re-measure when re-baselining on new hardware.
SEED_EVENTS_PER_S = 38_500.0


def _time_run(nprocs: int, klass: str, profile: bool) -> tuple[float, object]:
    t0 = time.perf_counter()
    res = run_job(
        nas.cg.program, nprocs, device="v2", params={"klass": klass},
        limit=1e8, profile=profile,
    )
    return time.perf_counter() - t0, res


def measure_kernel(nprocs: int = 8, klass: str = "A", reps: int = 5) -> dict:
    """Interleaved min-of-N wall clock, unprofiled vs. profiled."""
    # warm both code paths once so bytecode/allocator effects don't skew
    # the first round
    _time_run(nprocs, klass, False)
    _time_run(nprocs, klass, True)
    unprofiled = profiled_s = None
    best_profile = None
    for _ in range(reps):
        b, _ = _time_run(nprocs, klass, False)
        p, res = _time_run(nprocs, klass, True)
        if unprofiled is None or b < unprofiled:
            unprofiled = b
        if profiled_s is None or p < profiled_s:
            profiled_s = p
            best_profile = res.profile
    return {
        "kernel": "cg",
        "klass": klass,
        "nprocs": nprocs,
        "reps": reps,
        "timing": "interleaved min-of-reps, one warmup per path",
        "unprofiled_s": unprofiled,
        "profiled_s": profiled_s,
        "profiled_overhead": (profiled_s - unprofiled) / unprofiled,
        "budget_profiled": BUDGET_PROFILED,
        # hook cost with no probe installed: set_probe(None) selects an
        # uninstrumented run-loop twin, so there is no separate "hooks
        # disabled" configuration left to time
        "hook_cost": "structural zero (unprobed twin; see kernel parity test)",
        "events": best_profile.events,
        "events_per_s": best_profile.events_per_s,
        "seed_events_per_s": SEED_EVENTS_PER_S,
        "improvement_vs_seed": best_profile.events_per_s / SEED_EVENTS_PER_S,
        "sim_s": best_profile.sim_s,
        "sample_every": best_profile.sample_every,
    }


def _el_ack_share_once(nprocs: int, klass: str, el_servers: int) -> dict:
    cfg = dataclasses.replace(DEFAULT_TESTBED, el_servers=el_servers)
    res = run_job(
        nas.cg.program, nprocs, device="v2", cfg=cfg,
        params={"klass": klass}, limit=1e8, audit=True, audit_hb=True,
    )
    crit = critical_path(res.audit.hb)
    share = 0.0
    for c in crit["contributions"]:
        if c["category"] == "el-ack":
            share = c["share"]
    return {
        "share": share,
        "span_s": crit["span_s"],
        "verdict": res.audit.verdict,
    }


def measure_el_ack_share(nprocs: int = 8, klass: str = "A") -> dict:
    """El-ack share of the CG critical path, piggybacked acks on.

    The gated figure uses **4 EL shards** — the same configuration the
    class-B-64 scale proof runs with — because at that scale the share
    is dominated by the physical ack round-trip (wire latency + EL CPU
    per event), which piggybacking and sharding together bring under
    the 0.30 budget.  The full shard sweep is recorded alongside for
    transparency: with a single shard the share stays ~0.42 even with
    piggybacked acks, because single-EL CPU contention adds ~100µs
    tails to every ack edge.
    """
    sweep = {ns: _el_ack_share_once(nprocs, klass, ns) for ns in (1, 2, 4)}
    gated = sweep[4]
    return {
        "el_ack_share": gated["share"],
        "el_ack_share_el_servers": 4,
        "budget_el_ack_share": BUDGET_EL_ACK_SHARE,
        "critical_span_s": gated["span_s"],
        "audit_verdict": gated["verdict"],
        "el_ack_share_sweep": {
            str(ns): r["share"] for ns, r in sweep.items()
        },
    }


def measure_class_b64(nprocs: int = 64, el_servers: int = 4) -> dict:
    """The scale proof: CG class B at 64 ranks, audited, 4 EL shards.

    Checkpointing is on (every 5 simulated seconds): checkpoints are
    what let the event loggers garbage-collect acknowledged logs, and
    without that a ~16M-event run holds every delivery record in logger
    memory (multi-GB).  The CI smoke step runs the same configuration
    through ``repro kernel cg --class B -n 64 --el-servers 4
    --ckpt-interval 5 --audit``.
    """
    cfg = dataclasses.replace(DEFAULT_TESTBED, el_servers=el_servers)
    t0 = time.perf_counter()
    res = run_job(
        nas.cg.program, nprocs, device="v2", cfg=cfg,
        params={"klass": "B"}, limit=1e9, profile=True, audit=True,
        checkpointing=True, ckpt_interval=5.0,
    )
    wall = time.perf_counter() - t0
    p = res.profile
    return {
        "b64_wall_s": wall,
        "b64_budget_wall_s": BUDGET_B64_WALL_S,
        "b64_nprocs": nprocs,
        "b64_el_servers": el_servers,
        "b64_ckpt_interval_s": 5.0,
        "b64_events": p.events,
        "b64_events_per_s": p.events_per_s,
        "b64_sim_s": p.sim_s,
        "b64_audit_verdict": res.audit.verdict,
    }


def measure_all(skip_b64: bool = False) -> dict:
    out = measure_kernel()
    out.update(measure_el_ack_share())
    if not skip_b64:
        out.update(measure_class_b64())
    return out


def _check(out: dict) -> list[str]:
    """Every budget violation in ``out`` (empty = all gates pass)."""
    problems = []
    if out["profiled_overhead"] > BUDGET_PROFILED:
        problems.append(
            f"profiled overhead {out['profiled_overhead']:.1%} exceeds "
            f"{BUDGET_PROFILED:.0%} (unprofiled={out['unprofiled_s']:.3f}s "
            f"profiled={out['profiled_s']:.3f}s)"
        )
    if out["events_per_s"] < FLOOR_EVENTS_PER_S:
        problems.append(
            f"events/sec {out['events_per_s']:,.0f} below the sanity "
            f"floor {FLOOR_EVENTS_PER_S:,.0f}"
        )
    if out["el_ack_share"] > BUDGET_EL_ACK_SHARE:
        problems.append(
            f"el-ack critical-path share {out['el_ack_share']:.3f} exceeds "
            f"{BUDGET_EL_ACK_SHARE:.2f} with piggybacked acks"
        )
    if out["audit_verdict"] != "clean":
        problems.append(f"CG-A-8 audit verdict {out['audit_verdict']!r}")
    if "b64_wall_s" in out:
        if out["b64_wall_s"] > BUDGET_B64_WALL_S:
            problems.append(
                f"CG-B-64 wall {out['b64_wall_s']:.1f}s exceeds the "
                f"{BUDGET_B64_WALL_S:.0f}s budget"
            )
        if out["b64_audit_verdict"] != "clean":
            problems.append(
                f"CG-B-64 audit verdict {out['b64_audit_verdict']!r}"
            )
    return problems


def bench_kernel_throughput():
    skip_b64 = os.environ.get("REPRO_BENCH_SKIP_B64", "") == "1"
    out = measure_all(skip_b64=skip_b64)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(f"Kernel throughput - CG-{out['klass']}-{out['nprocs']} (V2)")
    rep.table(
        ["unprofiled s", "profiled s", "profiled ovh",
         "events/s", "vs seed", "el-ack"],
        [[out["unprofiled_s"], out["profiled_s"],
          f"{out['profiled_overhead']:+.1%}",
          f"{out['events_per_s']:,.0f}",
          f"{out['improvement_vs_seed']:.2f}x",
          f"{out['el_ack_share']:.3f}"]],
    )
    if "b64_wall_s" in out:
        rep.table(
            ["B-64 wall s", "budget s", "events", "events/s", "audit"],
            [[f"{out['b64_wall_s']:.1f}", f"{out['b64_budget_wall_s']:.0f}",
              f"{out['b64_events']:,}", f"{out['b64_events_per_s']:,.0f}",
              out["b64_audit_verdict"]]],
        )
    rep.add(
        "flat (time, seq, slot, a, b) events with slot dispatch, pause "
        "fast-path sleeps, coalesced stream frames and piggybacked EL "
        "acks; timing is interleaved min-of-reps so machine drift "
        "cancels, and improvement_vs_seed compares against the "
        "pre-rewrite kernel measured the same way on the same machine"
    )
    record_report(rep)
    problems = _check(out)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    skip_b64 = os.environ.get("REPRO_BENCH_SKIP_B64", "") == "1"
    out = measure_all(skip_b64=skip_b64)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    problems = _check(out)
    for p in problems:
        print("OVER BUDGET:", p)
    if not problems:
        print(
            f"OK: profiled {out['profiled_overhead']:+.1%}, "
            f"{out['events_per_s']:,.0f} events/s "
            f"({out['improvement_vs_seed']:.2f}x vs seed), el-ack share "
            f"{out['el_ack_share']:.3f}"
        )
    sys.exit(0 if not problems else 1)
