"""Wall-clock overhead of the online protocol auditor.

The auditor's promise is "always-on safety checking": it subscribes to
the live trace stream and evaluates every protocol event as it happens.
That is only an acceptable default if the cost is small — the tracer's
kind-interest filter keeps the per-segment network emits (the vast
majority) on the one-branch fast path, so only genuine protocol events
(transmissions, deliveries, event-logger traffic, checkpoints) pay the
subscriber dispatch.

This benchmark runs the latency-bound CG kernel — the workload with the
highest protocol-event rate per unit of wall-clock — with auditing off
and on, and records the median overhead in ``BENCH_audit_overhead.json``
at the repository root.

What "overhead" covers changed with the flat-kernel rewrite.  The old
kernel emitted trace records unconditionally, so audit-off runs paid
the emit cost invisibly and the on/off delta isolated just the
auditor's checks (~15%).  The tracer now keeps its hot emit sites on a
subscriber-gated fast path: an unsubscribed run pays nothing, and
attaching the auditor re-enables the emits it rides on — so the delta
honestly prices the whole always-on-observability decision (emits +
checks, ~50% on this workload).  The acceptance bar is **75%**: well
above measured, low enough that a change leaking protocol work onto
the per-segment fast path (the failure this bench exists to catch)
still trips it.  ``audit_cost_per_event_us`` is recorded for trending
the absolute per-event price across commits.

Run as a pytest benchmark (``pytest benchmarks/`` — *not* part of the
tier-1 suite) or directly: ``python benchmarks/bench_observability_overhead.py``.
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

from repro.analysis.report import Report
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_audit_overhead.json"
#: audit-on vs audit-off wall clock.  The delta includes the trace-emit
#: work the subscriber-free fast path skips entirely (see module
#: docstring) — measured ~52%; the fence catches fast-path leaks.
BUDGET = 0.75


def _time_run(audit: bool, nprocs: int, klass: str) -> tuple[float, object]:
    t0 = time.perf_counter()
    res = run_job(
        nas.cg.program, nprocs, device="v2", params={"klass": klass},
        limit=1e8, audit=audit,
    )
    return time.perf_counter() - t0, res


def measure_overhead(
    nprocs: int = 4, klass: str = "A", reps: int = 5
) -> dict:
    """Median audit-off vs audit-on wall-clock for one CG configuration."""
    # warm up both paths once so allocator/bytecode effects don't skew
    # the first timed repetition
    _time_run(False, nprocs, klass)
    _time_run(True, nprocs, klass)
    off = [_time_run(False, nprocs, klass)[0] for _ in range(reps)]
    on_times = []
    last_audit = None
    for _ in range(reps):
        dt, res = _time_run(True, nprocs, klass)
        on_times.append(dt)
        last_audit = res.audit
    off_s = statistics.median(off)
    on_s = statistics.median(on_times)
    n_events = last_audit.events_seen
    return {
        "kernel": "cg",
        "klass": klass,
        "nprocs": nprocs,
        "reps": reps,
        "audit_off_s": off_s,
        "audit_on_s": on_s,
        "overhead": (on_s - off_s) / off_s,
        "budget": BUDGET,
        "audit_cost_per_event_us": (on_s - off_s) / n_events * 1e6,
        "events_audited": n_events,
        "checks": last_audit.checks,
        "verdict": last_audit.verdict,
    }


def bench_audit_overhead():
    nprocs = 8 if full_sweep() else 4
    out = measure_overhead(nprocs=nprocs)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(f"Audit overhead - CG-{out['klass']}-{out['nprocs']} (V2)")
    rep.table(
        ["audit off s", "audit on s", "overhead", "budget", "events audited"],
        [[out["audit_off_s"], out["audit_on_s"],
          f"{out['overhead']:+.1%}", f"{BUDGET:.0%}",
          out["events_audited"]]],
    )
    rep.add(
        "the online auditor checks every V2 safety invariant live off the "
        "trace stream; the kind-interest filter keeps non-protocol emits "
        "on the tracer fast path, which is what keeps this overhead small"
    )
    record_report(rep)
    assert out["verdict"] == "clean", out
    assert out["overhead"] <= BUDGET, (
        f"audit overhead {out['overhead']:.1%} exceeds the {BUDGET:.0%} "
        f"budget (off={out['audit_off_s']:.3f}s on={out['audit_on_s']:.3f}s)"
    )


if __name__ == "__main__":
    import sys

    out = measure_overhead()
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    ok = out["overhead"] <= BUDGET and out["verdict"] == "clean"
    status = "OK" if ok else "OVER BUDGET"
    print(f"{status}: {out['overhead']:+.1%} (budget {BUDGET:.0%})")
    sys.exit(0 if ok else 1)
