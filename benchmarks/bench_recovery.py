"""Recovery attribution under churn: MTTR stays flat as churn climbs.

The paper's Figures 10-11 argue that a crashed rank rejoins quickly; the
ROADMAP's cloud-scale-churn direction needs the stronger property that
*mean time to recovery stays flat as the churn rate climbs* — each
recovery is an independent detect / respawn / fetch / el-download /
resync / replay arc whose cost is set by the checkpoint image and the
replay tail, not by how often faults arrive.

This benchmark sweeps the churn rate (mean node lifetime) on CG-A-8 and
records, per rate, the phase-decomposed MTTR distribution from
:class:`repro.obs.timeline.RecoveryAttribution`.  Three assertions:

- **reconciliation** — each completed arc's contiguous phase durations
  (detect + respawn + restore + replay) sum to ``recovery_s`` exactly
  (< ``RECONCILE_EPS``): no phase marker went missing;
- **flatness** — p95 MTTR across churn rates stays within
  ``FLAT_FACTOR`` of the best rate;
- **regression gate** — the sweep-wide median MTTR must not exceed the
  checked-in ``BENCH_recovery.json`` baseline by more than
  ``REGRESSION_BUDGET`` (the run is simulated time on a fixed seed, so
  the comparison is deterministic).

Results land in ``BENCH_recovery.json`` at the repository root (the CI
artifact and the next baseline).  Run as a pytest benchmark
(``pytest benchmarks/`` — *not* part of the tier-1 suite) or directly:
``python benchmarks/bench_recovery.py``.
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.analysis.report import Report, format_table
from repro.ft.failure import ChurnFaults
from repro.obs.timeline import RecoveryAttribution, quantile
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import full_sweep, record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_recovery.json"

#: churn rates swept: mean node lifetime in simulated seconds (CG-A-8
#: runs ~14 s fault-free, so 8 s lifetime is heavy churn)
MEAN_LIFETIMES = (20.0, 12.0, 8.0)
MAX_FAULTS = 4
SEED = 1
RECONCILE_EPS = 1e-9  # contiguous phases tile recovery_s exactly
FLAT_FACTOR = 2.0  # p95 MTTR spread across churn rates
REGRESSION_BUDGET = 0.15  # median MTTR vs the checked-in baseline


def _run_rate(mean_lifetime: float, nprocs: int, klass: str) -> dict:
    res = run_job(
        nas.cg.program, nprocs, device="v2", params={"klass": klass},
        limit=1e8, seed=SEED, trace=True,
        checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
        ckpt_interval=5.0,
        faults=ChurnFaults(
            mean_lifetime=mean_lifetime, shape=0.7,
            max_faults=MAX_FAULTS, seed=SEED,
        ),
    )
    att = RecoveryAttribution.from_trace(res.tracer)
    recon = [
        e for s in att.completed if (e := att.reconcile(s)) is not None
    ]
    return {
        "mean_lifetime": mean_lifetime,
        "elapsed": res.elapsed,
        "restarts": res.restarts,
        "completed": len(att.completed),
        "aborted": len(att.aborted),
        "incomplete": len(att.incomplete),
        "mttr": att.mttr(),
        "phases": {
            p: {"n": st["n"], "p50": st["p50"], "p95": st["p95"]}
            for p, st in att.phase_stats().items()
        },
        "max_reconcile_err_s": max(recon, default=0.0),
        "recoveries_s": sorted(s.recovery_s for s in att.completed),
    }


def measure_recovery(nprocs: int = 8, klass: str = "A") -> dict:
    """Sweep churn rates; aggregate the MTTR distribution per rate."""
    sweep = [_run_rate(ml, nprocs, klass) for ml in MEAN_LIFETIMES]
    all_recoveries = sorted(
        r for row in sweep for r in row["recoveries_s"]
    )
    p95s = [
        row["mttr"]["p95"] for row in sweep if row["mttr"]["p95"] is not None
    ]
    return {
        "kernel": "cg",
        "klass": klass,
        "nprocs": nprocs,
        "seed": SEED,
        "max_faults": MAX_FAULTS,
        "sweep": sweep,
        "median_mttr_s": quantile(all_recoveries, 0.5),
        "p95_mttr_s": quantile(all_recoveries, 0.95),
        "flatness_ratio": (max(p95s) / min(p95s)) if p95s else None,
        "flat_factor_budget": FLAT_FACTOR,
        "regression_budget": REGRESSION_BUDGET,
    }


def _load_baseline() -> dict:
    """The checked-in result this run is gated against (may be absent)."""
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except (OSError, ValueError):
            return {}
    return {}


def check_recovery(out: dict, baseline: dict) -> list[str]:
    """All budget violations as human-readable strings (empty = pass)."""
    problems: list[str] = []
    for row in out["sweep"]:
        if row["max_reconcile_err_s"] > RECONCILE_EPS:
            problems.append(
                f"lifetime {row['mean_lifetime']}s: phase sums miss "
                f"recovery_s by {row['max_reconcile_err_s']:.2e}s "
                f"(eps {RECONCILE_EPS:.0e})"
            )
        if row["completed"] + row["aborted"] < row["restarts"]:
            problems.append(
                f"lifetime {row['mean_lifetime']}s: {row['restarts']} "
                f"restarts but only {row['completed']} completed + "
                f"{row['aborted']} aborted spans — arcs went missing"
            )
    ratio = out["flatness_ratio"]
    if ratio is not None and ratio > FLAT_FACTOR:
        problems.append(
            f"p95 MTTR spread {ratio:.2f}x across churn rates exceeds "
            f"the {FLAT_FACTOR:.1f}x flatness budget"
        )
    base = baseline.get("median_mttr_s")
    if base:
        limit = base * (1.0 + REGRESSION_BUDGET)
        if out["median_mttr_s"] > limit:
            problems.append(
                f"median MTTR {out['median_mttr_s']:.3f}s regresses "
                f">{REGRESSION_BUDGET:.0%} vs baseline {base:.3f}s"
            )
        out["baseline_median_mttr_s"] = base
    return problems


def _sweep_table(out: dict) -> str:
    rows = []
    for row in out["sweep"]:
        m = row["mttr"]
        rows.append(
            [
                row["mean_lifetime"],
                row["restarts"],
                row["completed"],
                row["aborted"],
                m["p50"] if m["p50"] is not None else "-",
                m["p95"] if m["p95"] is not None else "-",
                row["phases"]["fetch"]["p95"] or 0.0,
                row["phases"]["replay"]["p95"] or 0.0,
                f"{row['max_reconcile_err_s']:.1e}",
            ]
        )
    return format_table(
        ["lifetime s", "restarts", "done", "aborted", "MTTR p50",
         "MTTR p95", "fetch p95", "replay p95", "reconcile err"],
        rows,
    )


def bench_recovery_attribution():
    nprocs = 16 if full_sweep() else 8
    baseline = _load_baseline()
    out = measure_recovery(nprocs=nprocs)
    problems = check_recovery(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(f"Recovery attribution - CG-{out['klass']}-{out['nprocs']} churn sweep")
    rep.add(_sweep_table(out))
    rep.add(
        f"sweep-wide MTTR: median {out['median_mttr_s']:.3f}s, "
        f"p95 {out['p95_mttr_s']:.3f}s; p95 spread across churn rates "
        f"{out['flatness_ratio']:.2f}x (budget {FLAT_FACTOR:.1f}x) — "
        "recovery cost is set by the checkpoint image and replay tail, "
        "not the fault arrival rate"
    )
    record_report(rep)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    baseline = _load_baseline()
    out = measure_recovery()
    problems = check_recovery(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    print(_sweep_table(out))
    if problems:
        for p in problems:
            print(f"OVER BUDGET: {p}")
        sys.exit(1)
    print(
        f"OK: median MTTR {out['median_mttr_s']:.3f}s, p95 spread "
        f"{out['flatness_ratio']:.2f}x (budget {FLAT_FACTOR:.1f}x)"
    )
    sys.exit(0)
