"""Section 4.6.2: round-robin vs adaptive checkpoint scheduling.

The paper: "We have built a simulator and have compared the two policies
with classical communication schemes (point to point, synchronous all to
all, broadcasts and reduces). The comparison demonstrates that the
adaptive algorithm never provides a worse scheduling (w.r.t. bandwidth
utilization) and often provides better (up to n times better, n being
the number of computing nodes for asynchronous broadcast)."
"""

import pytest

from repro.analysis.report import Report
from repro.sched import SCHEMES, scheme, simulate

from conftest import full_sweep, record_report

NS = [8, 16, 32] if not full_sweep() else [4, 8, 16, 32, 64]


def run_sched():
    rows = []
    ratios = {}
    for n in NS:
        for name in sorted(SCHEMES):
            sc = scheme(name, n, rate=2e6)
            rr = simulate(sc, "round_robin", footprint=4e6)
            ad = simulate(sc, "adaptive", footprint=4e6)
            ratio = rr.ckpt_bandwidth / ad.ckpt_bandwidth
            rows.append(
                [name, n, rr.ckpt_bandwidth / 1e6, ad.ckpt_bandwidth / 1e6,
                 ratio, rr.peak_log / 1e6, ad.peak_log / 1e6]
            )
            ratios[(name, n)] = ratio
    return rows, ratios


def bench_sched_policies(benchmark):
    rows, ratios = benchmark.pedantic(run_sched, rounds=1, iterations=1)
    rep = Report("Section 4.6.2 - checkpoint scheduling policies")
    rep.table(
        ["scheme", "n", "RR bw MB/s", "AD bw MB/s", "RR/AD",
         "RR peak MB", "AD peak MB"],
        rows,
    )
    rep.add(
        "paper: adaptive never worse (w.r.t. bandwidth utilization), up to "
        "n times better for asynchronous broadcast"
    )
    record_report(rep)
    # never worse, on any scheme at any size
    for (name, n), ratio in ratios.items():
        assert ratio >= 0.999, f"adaptive worse on {name} n={n}"
    # asymmetric schemes: strictly better, and growing with n
    assert ratios[("broadcast", 16)] > 1.5
    assert ratios[("broadcast", 32)] > ratios[("broadcast", 8)]
    assert ratios[("reduce", 16)] > 1.5
