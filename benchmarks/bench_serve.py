"""Control-plane serving: a thousand-job admission sweep on one cluster.

The paper runs one MPI job per dedicated deployment; the serve layer
(``repro.serve``) multiplexes many jobs over a single shared cluster
with gang scheduling, fair-share admission and per-job namespaces on
the shared event-logger and checkpoint-store services.  This benchmark
drives the plane with 1000 jobs from two tenants (weights 3:1),
submitted all at once — a pure admission storm — with a v2 slice that
includes rank-kill faults recovering mid-traffic.  Four claims are
gated:

- **completion** — every job of the storm runs to completion: 1000
  completed, zero timeouts;
- **isolation** — zero audit violations across all audited jobs: the
  per-job namespaces keep co-resident EL events, checkpoint manifests
  and GC floors disjoint even while kills recover next door;
- **fairness** — over the saturation window (admissions while both
  tenants still have queued work), each tenant's rank-weighted share
  of admitted capacity is within 20% of its fair-share weight;
- **regression gate** — makespan must not exceed the checked-in
  ``BENCH_serve.json`` baseline by more than ``REGRESSION_BUDGET``
  (simulated time on a fixed seed: deterministic).

Results land in ``BENCH_serve.json`` at the repository root (the CI
artifact and the next baseline).  Run as a pytest benchmark
(``pytest benchmarks/`` — *not* part of the tier-1 suite) or directly:
``python benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import json
import pathlib
import random
import sys

from repro.analysis.report import Report, format_table
from repro.serve import ControlPlane, JobSpec

from conftest import record_report

OUT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_serve.json"

N_JOBS = 1000
#: v2-device job slots per 20-job window — one even (alpha) and one odd
#: (beta) index, so both tenants carry the same v2/p4 mix and fairness
#: is measured on workload-symmetric queues
V2_SLOTS = (0, 11)
FAULTY_SLOTS = (3, 6)  # of every 8 v2 jobs, one alpha and one beta kill
CAPACITY = 8
SVC_SLOTS = 2
WEIGHTS = {"alpha": 3.0, "beta": 1.0}
SEED = 1
FAIRNESS_BUDGET = 0.20  # tenant share vs weight, saturation window
REGRESSION_BUDGET = 0.20  # makespan vs the checked-in baseline


def _specs(rng: random.Random) -> list[JobSpec]:
    """The deterministic 1000-job storm: ~90% p4, ~10% v2, some killed."""
    specs = []
    v2_seen = 0
    for i in range(N_JOBS):
        tenant = "alpha" if i % 2 == 0 else "beta"
        nranks = rng.choice((1, 2, 2, 4))
        if i % 20 in V2_SLOTS:
            v2_seen += 1
            if v2_seen % 8 in FAULTY_SLOTS:
                # hot enough that the kill lands mid-traffic and recovery
                # replays from a checkpoint plus logged events
                specs.append(JobSpec(
                    workload="token_ring", nranks=max(2, nranks),
                    device="v2", tenant=tenant,
                    params={"rounds": 200, "nbytes": 8192},
                    checkpointing=True, ckpt_interval=0.05,
                    fault={"kind": "kill", "rank": 1,
                           "at": round(0.05 + 0.01 * (v2_seen % 5), 3)},
                ))
            else:
                specs.append(JobSpec(
                    workload="token_ring", nranks=nranks,
                    device="v2", tenant=tenant,
                    params={"rounds": rng.randint(10, 30),
                            "nbytes": rng.choice((512, 1024, 2048))},
                ))
        else:
            specs.append(JobSpec(
                workload="token_ring", nranks=nranks,
                device="p4", tenant=tenant,
                params={"rounds": rng.randint(2, 6),
                        "nbytes": rng.choice((256, 512, 1024))},
            ))
    return specs


def _saturation_shares(handles) -> dict[str, float]:
    """Rank-weighted admission share per tenant over the window where
    every tenant still has queued jobs (admission order = start time)."""
    remaining = {"alpha": 0, "beta": 0}
    for h in handles:
        remaining[h.spec.tenant] += 1
    admitted = {"alpha": 0.0, "beta": 0.0}
    for h in sorted(handles, key=lambda h: (h.start_t, h.job_id)):
        admitted[h.spec.tenant] += h.spec.nranks
        remaining[h.spec.tenant] -= 1
        if remaining[h.spec.tenant] == 0:
            break
    total = sum(admitted.values())
    return {t: admitted[t] / total for t in admitted}


def measure_serve() -> dict:
    rng = random.Random(SEED)
    specs = _specs(rng)
    plane = ControlPlane(
        seed=SEED, capacity=CAPACITY, svc_slots=SVC_SLOTS, tenants=WEIGHTS,
    )
    handles = [plane.submit(spec) for spec in specs]
    plane.drain()
    summary = plane.finish()

    shares = _saturation_shares(handles)
    weight_total = sum(WEIGHTS.values())
    per_tenant: dict[str, dict] = {}
    for name, weight in WEIGHTS.items():
        hs = [h for h in handles if h.spec.tenant == name]
        waits = sorted(h.wait_s for h in hs)
        per_tenant[name] = {
            "weight": weight,
            "fair_share": weight / weight_total,
            "saturation_share": shares[name],
            "jobs": len(hs),
            "mean_wait_s": sum(waits) / len(waits),
            "p95_wait_s": waits[int(0.95 * (len(waits) - 1))],
        }
    faulty = [
        h for h in handles
        if h.spec.fault is not None or h.result.restarts
    ]
    return {
        "jobs": N_JOBS,
        "capacity": CAPACITY,
        "svc_slots": SVC_SLOTS,
        "seed": SEED,
        "completed": summary["completed"],
        "timeouts": summary["timeouts"],
        "audit_violations": summary["audit_violations"],
        "makespan_s": summary["elapsed"],
        "v2_jobs": sum(1 for h in handles if h.spec.device == "v2"),
        "faulted_jobs": len(faulty),
        "total_restarts": sum(h.result.restarts for h in handles),
        "unrecovered_faults": sum(
            1 for h in faulty if h.result.restarts < 1
        ),
        "tenants": per_tenant,
        "fairness_budget": FAIRNESS_BUDGET,
        "regression_budget": REGRESSION_BUDGET,
    }


def _load_baseline() -> dict:
    """The checked-in result this run is gated against (may be absent)."""
    if OUT_PATH.exists():
        try:
            return json.loads(OUT_PATH.read_text())
        except (OSError, ValueError):
            return {}
    return {}


def check_serve(out: dict, baseline: dict) -> list[str]:
    """All budget violations as human-readable strings (empty = pass)."""
    problems: list[str] = []
    if out["completed"] != out["jobs"]:
        problems.append(
            f"only {out['completed']}/{out['jobs']} jobs completed"
        )
    if out["timeouts"]:
        problems.append(f"{out['timeouts']} job(s) timed out")
    if out["audit_violations"]:
        problems.append(
            f"{out['audit_violations']} cross-job audit violation(s) — "
            f"namespace isolation broke"
        )
    if out["unrecovered_faults"]:
        problems.append(
            f"{out['unrecovered_faults']} killed job(s) never restarted"
        )
    for name, t in out["tenants"].items():
        drift = abs(t["saturation_share"] - t["fair_share"])
        if drift > FAIRNESS_BUDGET * t["fair_share"]:
            problems.append(
                f"tenant {name}: saturation share "
                f"{t['saturation_share']:.3f} drifts >{FAIRNESS_BUDGET:.0%} "
                f"from fair share {t['fair_share']:.3f}"
            )
    base_makespan = baseline.get("makespan_s")
    if base_makespan:
        limit = base_makespan * (1.0 + REGRESSION_BUDGET)
        if out["makespan_s"] > limit:
            problems.append(
                f"makespan {out['makespan_s']:.2f}s regresses "
                f">{REGRESSION_BUDGET:.0%} vs baseline {base_makespan:.2f}s"
            )
        out["baseline_makespan_s"] = base_makespan
    return problems


def _tenant_table(out: dict) -> str:
    rows = [
        [
            name, t["weight"], t["jobs"], t["fair_share"],
            t["saturation_share"], t["mean_wait_s"], t["p95_wait_s"],
        ]
        for name, t in sorted(out["tenants"].items())
    ]
    return format_table(
        ["tenant", "weight", "jobs", "fair share", "sat share",
         "mean wait s", "p95 wait s"],
        rows,
    )


def bench_serve():
    baseline = _load_baseline()
    out = measure_serve()
    problems = check_serve(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    rep = Report(
        f"Serve - {out['jobs']}-job admission storm on "
        f"{out['capacity']} CN / {out['svc_slots']} svc slots"
    )
    rep.add(_tenant_table(out))
    rep.add(
        f"{out['completed']}/{out['jobs']} jobs in {out['makespan_s']:.2f} "
        f"simulated s ({out['v2_jobs']} on v2, {out['faulted_jobs']} "
        f"killed and recovered with {out['total_restarts']} restarts); "
        f"{out['audit_violations']} audit violations"
    )
    record_report(rep)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    baseline = _load_baseline()
    out = measure_serve()
    problems = check_serve(out, baseline)
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))
    print(_tenant_table(out))
    if problems:
        for p in problems:
            print(f"OVER BUDGET: {p}")
        sys.exit(1)
    print(
        f"OK: {out['completed']}/{out['jobs']} jobs, "
        f"{out['audit_violations']} violations, "
        f"makespan {out['makespan_s']:.2f}s"
    )
    sys.exit(0)
