"""Table 1: time decomposition of MPI communication functions.

Paper (BT-A-9 and CG-A-8, P4 vs V2):

    Function     | BT A 9: P4    V2   | CG A 8: P4     V2
    MPI_(I)send  |       44.9s  3.4s  |       3.5s    0.6s
    MPI_Irecv    |       0.32s  0.32s |       0.0038s 0.013s
    MPI_Wait     |       4s     17.5s |       1.6s    13.8s
    Total        |       49.2s  21.2s |       5.1s    14.4s

The shape: V2's MPI_(I)send is an order of magnitude cheaper (a local
copy to the daemon instead of pushing the payload into the socket), the
actual transmission shifts into MPI_Wait, V2's total is *smaller* for BT
and ~3x larger for CG.
"""

import pytest

from repro.analysis.report import Report
from repro.runtime.mpirun import run_job
from repro.workloads import nas

from conftest import record_report


def decompose(name, klass, p, device):
    res = run_job(
        nas.KERNELS[name].program, p, device=device,
        params={"klass": klass}, limit=1e7,
    )
    t = res.timers[0]
    return {
        "isend": t.get("isend") + t.get("send"),
        "irecv": t.get("irecv"),
        "wait": t.get("wait"),
        "total": t.comm_total(),
    }


def run_table1():
    out = {}
    for name, klass, p in (("bt", "A", 9), ("cg", "A", 8)):
        for dev in ("p4", "v2"):
            out[(name, dev)] = decompose(name, klass, p, dev)
    return out


def bench_table1_decomposition(benchmark):
    out = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = []
    for fn in ("isend", "irecv", "wait", "total"):
        rows.append(
            [
                {"isend": "MPI_(I)send", "irecv": "MPI_Irecv",
                 "wait": "MPI_Wait", "total": "Total comm"}[fn],
                out[("bt", "p4")][fn],
                out[("bt", "v2")][fn],
                out[("cg", "p4")][fn],
                out[("cg", "v2")][fn],
            ]
        )
    rep = Report("Table 1 - MPI call time decomposition (s), rank 0")
    rep.table(["function", "BT-A-9 P4", "BT-A-9 V2", "CG-A-8 P4", "CG-A-8 V2"], rows)
    rep.add(
        "paper: P4 pays in MPI_(I)send (payload pushed inside the call); V2 "
        "posts to the daemon and pays in MPI_Wait; V2 total smaller for BT, "
        "~3x bigger for CG"
    )
    record_report(rep)

    bt_p4, bt_v2 = out[("bt", "p4")], out[("bt", "v2")]
    cg_p4, cg_v2 = out[("cg", "p4")], out[("cg", "v2")]
    # the headline mechanism: V2's isend is far cheaper than P4's where
    # payload pushes dominate (BT); for CG both are negligible next to the
    # wait/collective time
    assert bt_v2["isend"] < 0.35 * bt_p4["isend"]
    assert cg_v2["isend"] < 0.05 * cg_v2["total"]
    # the work moves into Wait on V2 (the daemon transmits during waits)
    assert bt_v2["wait"] > bt_p4["wait"]
    # totals: V2 wins on BT, loses on CG
    assert bt_v2["total"] < bt_p4["total"]
    assert cg_v2["total"] > cg_p4["total"]
