"""Benchmark-harness plumbing.

Each benchmark regenerates one table or figure of the paper and records a
plain-text report.  Reports are printed in the terminal summary (visible
without ``-s``) and written to ``benchmarks/results/``.

Set ``REPRO_BENCH_FULL=1`` to run the full parameter sweeps (all process
counts up to 32, class B everywhere) instead of the representative
defaults.
"""

from __future__ import annotations

import os
import pathlib

_REPORTS: list = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_report(report) -> None:
    """Register a finished report for terminal output and save it."""
    _REPORTS.append(report)
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = report.title.lower().replace(" ", "_").replace("/", "-")[:60]
    (_RESULTS_DIR / f"{slug}.txt").write_text(report.render())


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for report in _REPORTS:
        terminalreporter.write(report.render())
