#!/usr/bin/env python3
"""Desktop grid: a long MPI job on highly volatile nodes.

The paper positions MPICH-V2 for "campus/industry wide desktop Grids
with volatile nodes": machines join and leave unpredictably, so a long
computation must survive a steady drizzle of failures.  This example
runs a master/worker Monte-Carlo-flavoured workload (with MPI_ANY_SOURCE
receives — the nondeterministic receptions that make event logging
necessary) under random node kills every few seconds, with continuous
checkpointing so restarted workers fast-forward from their images
instead of recomputing from scratch.

Run:  python examples/desktop_grid.py
"""

from repro.ft.failure import RandomFaults
from repro.runtime.mpirun import run_job

CHUNKS = 24
CHUNK_WORK = 0.35  # simulated seconds of computation per chunk


def master_worker(mpi):
    """Rank 0 farms work chunks; workers request, compute, return."""
    if mpi.rank == 0:
        handed = 0
        results = []
        active = mpi.size - 1
        while active:
            # ANY_SOURCE: the matching order is a nondeterministic event,
            # logged by MPICH-V2 and forced during any replay
            msg = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=1)
            worker, payload = msg.data
            if payload is not None:
                results.append(payload)
            if handed < CHUNKS:
                yield from mpi.send(worker, nbytes=64, tag=2, data=handed)
                handed += 1
            else:
                yield from mpi.send(worker, nbytes=16, tag=2, data=None)
                active -= 1
        return round(sum(results), 9)
    # worker
    done = 0
    yield from mpi.send(0, nbytes=32, tag=1, data=(mpi.rank, None))
    while True:
        task = yield from mpi.recv(source=0, tag=2)
        if task.data is None:
            return done
        yield from mpi.compute(seconds=CHUNK_WORK)
        value = 1.0 / (1.0 + task.data)  # the "Monte-Carlo" estimate
        yield from mpi.send(0, nbytes=64, tag=1, data=(mpi.rank, value))
        done += 1


def main() -> None:
    nprocs = 5

    print("== calm desktop grid (no faults)")
    calm = run_job(master_worker, nprocs, device="v2")
    print(f"   sum={calm.results[0]}   elapsed={calm.elapsed:.2f} s")

    print("== volatile desktop grid: a node dies every ~1.5 s, 5 deaths")
    stormy = run_job(
        master_worker,
        nprocs,
        device="v2",
        checkpointing=True,
        ckpt_interval=0.4,
        faults=RandomFaults(interval=1.5, count=5, seed=42),
        spares=2,  # volunteers joining the grid replace lost machines
        limit=3600.0,
    )
    print(
        f"   sum={stormy.results[0]}   elapsed={stormy.elapsed:.2f} s   "
        f"restarts={stormy.restarts}   checkpoints={stormy.checkpoints}"
    )

    assert calm.results[0] == stormy.results[0], "consistency violated!"
    print("\nSame result despite the churn — workers restarted (some on")
    print("spare machines), fast-forwarded from checkpoint images, and")
    print("replayed their ANY_SOURCE receptions in the logged order.")


if __name__ == "__main__":
    main()
