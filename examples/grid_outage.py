#!/usr/bin/env python3
"""Grid outage: a whole cluster disconnects from the Grid and rejoins.

The paper motivates MPICH-V2 with exactly this scenario: "An example of
massive lost of nodes in a Grid infrastructure is when all the nodes of
a cluster disconnect the system due to a network connection failure
between the cluster and the rest of the Grid. Note that conversely, a
cluster may join the Grid and continue the execution of the lost MPI
processes."

Here a NAS-CG-style solver runs across two *sites* (a real multi-site
topology: inter-site traffic crosses a slow wide-area link), described
by a Section-4.7-style machine file.  Site beta drops off the Grid in
one instant — four concurrent failures — and its ranks are restarted on
the spare machines of site gamma (the replacement cluster joining the
Grid).  The job completes with the identical numerical result.

Checkpoints go to a *replicated* content-addressed store: three
checkpoint-server replicas with write quorum 2, pushing incrementally
(only chunks a replica is missing travel).  The restarted ranks stream
their images back from whichever replicas answer.  The sites talk over
gigabit ethernet rather than the paper's Fast Ethernet — on the slower
wire a full cycle of image pushes takes longer than this short
verification job runs, and nobody would have a checkpoint to restart
from.

Run:  python examples/grid_outage.py
"""

from repro.ft.failure import ExplicitFaults
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job
from repro.runtime.progfile import parse_progfile
from repro.simnet.network import LinkConfig
from repro.workloads import nas

MACHINES = """
# site alpha: the home cluster (also hosts the reliable services)
alpha1  CN  site=alpha
alpha2  CN  site=alpha
alpha3  CN  site=alpha
alpha4  CN  site=alpha
# site beta: a remote cluster lending four machines
beta1   CN  site=beta
beta2   CN  site=beta
beta3   CN  site=beta
beta4   CN  site=beta
# site gamma: a cluster that will join the Grid when beta is lost
gamma1  SPARE site=gamma
gamma2  SPARE site=gamma
gamma3  SPARE site=gamma
gamma4  SPARE site=gamma
frontend EL  site=alpha
storage  CS  site=alpha
"""


def main() -> None:
    params = {"klass": "T"}  # the verification class: real numpy arithmetic
    # three checkpoint-store replicas, durable at two, incremental pushes,
    # on a gigabit wire (see the docstring)
    cfg = DEFAULT_TESTBED.with_(
        ckpt_servers=3, ckpt_replicas=2, ckpt_incremental=True,
        link=LinkConfig(bandwidth=125e6),
    )

    print("== reference run on the two-site Grid (no outage)")
    ref = run_job(nas.cg.program, 8, device="v2", cfg=cfg,
                  plan=parse_progfile(MACHINES), params=params)
    print(f"   CG checksum = {ref.results[0].checksum}   "
          f"elapsed = {ref.elapsed:.2f} s")

    print("== site beta (ranks 4..7) disconnects mid-run;")
    print("   site gamma joins the Grid and picks the ranks up")
    # The checkpointed run is markedly slower than the bare reference
    # (every image cycle crosses the wide-area link), so scale the
    # outage instant up from the reference elapsed: it must land after
    # site beta's first checkpoint cycle has committed — otherwise the
    # restarted ranks would have no image to stream back — and before
    # the job ends.
    outage_time = 1.4 * ref.elapsed
    faults = ExplicitFaults([(outage_time, r) for r in range(4, 8)])
    res = run_job(
        nas.cg.program, 8, device="v2", cfg=cfg,
        plan=parse_progfile(MACHINES), params=params,
        checkpointing=True, ckpt_policy="round_robin",
        ckpt_continuous=True, ckpt_interval=0.02,
        faults=faults, limit=3600.0,
    )
    disp = res.extras["dispatcher"]
    hosts = [(disp.states[r].host.name, disp.states[r].host.site)
             for r in range(4, 8)]
    m = res.metrics
    print(f"   ranks 4..7 now run on: {hosts}")
    print(f"   CG checksum = {res.results[0].checksum}   "
          f"restarts={res.restarts}   checkpoints={res.checkpoints}   "
          f"elapsed = {res.elapsed:.2f} s")
    print(f"   store: {len(res.extras['checkpoint_servers'])} replicas "
          f"(write quorum {cfg.ckpt_replicas}), "
          f"pushed {m.total('store.push_bytes') / 1e6:.2f} MB, "
          f"deduped {m.total('store.dedup_bytes') / 1e6:.2f} MB, "
          f"fetched {m.total('store.fetch_bytes') / 1e6:.2f} MB, "
          f"failovers {int(m.total('store.failover'))}")

    assert res.results[0].checksum == ref.results[0].checksum
    assert all(site == "gamma" for _, site in hosts)
    assert len(res.extras["checkpoint_servers"]) == 3
    # at least one restarted rank streamed its image back from the store
    assert m.total("store.fetch_bytes") > 0
    print("\nFour concurrent failures, four re-executions on a freshly")
    print("joined cluster, identical result: the pessimistic logging")
    print("protocol needed no coordination and rolled back nobody else.")


if __name__ == "__main__":
    main()
