#!/usr/bin/env python3
"""NAS campaign: a small Figure-7-style sweep from the public API.

Runs three NPB proxies (class A) on MPICH-P4 and MPICH-V2 and prints an
NPB-style Mop/s table — the programmatic counterpart of the full
benchmark harness (``pytest benchmarks/ --benchmark-only``), showing how
to drive sweeps from your own scripts.

Run:  python examples/nas_campaign.py            (about a minute)
"""

from repro.analysis.metrics import mops
from repro.analysis.report import format_table
from repro.runtime.mpirun import run_job
from repro.workloads import nas

CAMPAIGN = [
    ("cg", 8),  # latency-bound: V2 pays for event logging
    ("ft", 8),  # bandwidth-bound: V2 keeps up
    ("bt", 9),  # nonblocking overlap: V2 wins
]


def main() -> None:
    rows = []
    for name, p in CAMPAIGN:
        spec = nas.KERNELS[name].spec("A")
        prog = nas.KERNELS[name].program
        p4 = run_job(prog, p, device="p4", params={"klass": "A"}, limit=1e7)
        v2 = run_job(prog, p, device="v2", params={"klass": "A"}, limit=1e7)
        rows.append(
            [
                f"{name.upper()}-A",
                p,
                f"{p4.elapsed:.1f}",
                f"{v2.elapsed:.1f}",
                f"{mops(spec.total_flops, p4):.1f}",
                f"{mops(spec.total_flops, v2):.1f}",
                f"{v2.elapsed / p4.elapsed:.2f}",
            ]
        )
    print(
        format_table(
            ["kernel", "procs", "P4 s", "V2 s", "P4 Mop/s", "V2 Mop/s", "V2/P4"],
            rows,
        )
    )
    print(
        "\nThe paper's Figure 7 shape: CG suffers on V2 (small messages,"
        "\nevent-log gating), FT is close, BT matches or beats P4."
    )


if __name__ == "__main__":
    main()
