#!/usr/bin/env python3
"""Quickstart: run an MPI program on MPICH-V2 and watch it survive a crash.

This is the five-minute tour of the library:

1. write an MPI program as a generator over the :class:`repro.mpi.api.MPI`
   context (every blocking call is a ``yield from``);
2. run it with :func:`repro.runtime.mpirun.run_job` on any of the three
   channel devices — ``p4`` (the plain MPICH baseline), ``v1`` (Channel
   Memory logging) or ``v2`` (the paper's pessimistic sender-based
   message logging);
3. inject faults; MPICH-V2 restarts the killed ranks, replays their
   receptions in the logged order from the senders' message logs, and
   the job finishes with *exactly* the same result.

Run:  python examples/quickstart.py
"""

from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job


def stencil(mpi, iters=10):
    """A 1-D heat-equation-flavoured stencil with halo exchanges."""
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    value = float(mpi.rank + 1)

    for it in range(iters):
        # nonblocking halo exchange
        s1 = yield from mpi.isend(right, nbytes=1024, tag=it, data=value)
        s2 = yield from mpi.isend(left, nbytes=1024, tag=1000 + it, data=value)
        r1 = yield from mpi.irecv(source=left, tag=it)
        r2 = yield from mpi.irecv(source=right, tag=1000 + it)
        yield from mpi.waitall([s1, s2, r1, r2])
        value = 0.5 * value + 0.25 * (r1.message.data + r2.message.data)
        # pretend to compute for a while (simulated seconds)
        yield from mpi.compute(seconds=0.05)
        # a global residual, as any real solver would do
        residual = yield from mpi.allreduce(value=value, nbytes=8)
    return round(residual, 9)


def main() -> None:
    nprocs = 6

    print("== fault-free run on MPICH-P4 (no fault tolerance)")
    ref = run_job(stencil, nprocs, device="p4")
    print(f"   result={ref.results[0]}   elapsed={ref.elapsed:.2f} simulated s")

    print("== fault-free run on MPICH-V2")
    v2 = run_job(stencil, nprocs, device="v2")
    print(f"   result={v2.results[0]}   elapsed={v2.elapsed:.2f} simulated s")

    print("== MPICH-V2 with two injected crashes (ranks 2 and 4)")
    faulty = run_job(
        stencil,
        nprocs,
        device="v2",
        faults=ExplicitFaults([(0.08, 2), (0.30, 4)]),
    )
    print(
        f"   result={faulty.results[0]}   elapsed={faulty.elapsed:.2f} s   "
        f"restarts={faulty.restarts}"
    )

    assert ref.results == v2.results == faulty.results, "consistency violated!"
    print("\nAll three runs produced identical results: the re-executions are")
    print("equivalent to a fault-free execution (Theorem 1/2 of the paper).")
    overhead = (faulty.elapsed - v2.elapsed) / v2.elapsed * 100
    print(f"The two faults cost {overhead:.0f}% extra execution time.")


if __name__ == "__main__":
    main()
