"""Legacy shim: lets `pip install -e . --no-use-pep517` work offline
(the environment has no `wheel` package and no network access)."""
from setuptools import setup

setup()
