"""Analysis helpers: derived metrics and report tables."""

from .metrics import breakdown, mean_comm, mean_compute, mops
from .report import Report, format_table

__all__ = [
    "breakdown",
    "mean_comm",
    "mean_compute",
    "mops",
    "Report",
    "format_table",
]
