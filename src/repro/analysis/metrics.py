"""Derived metrics over :class:`~repro.runtime.results.JobResult`."""

from __future__ import annotations


from ..runtime.results import JobResult

__all__ = ["mops", "breakdown", "mean_comm", "mean_compute"]


def mops(total_flops: float, result: JobResult) -> float:
    """NPB-style aggregate Mop/s for a completed kernel run."""
    return total_flops / result.elapsed / 1e6


def mean_compute(result: JobResult) -> float:
    """Mean per-rank computation time (the paper's breakdown numerator)."""
    return sum(
        t.get("compute") for t in result.timers.values()
    ) / len(result.timers)


def mean_comm(result: JobResult) -> float:
    """Mean per-rank communication time (everything except compute)."""
    return sum(t.comm_total() for t in result.timers.values()) / len(
        result.timers
    )


def breakdown(result: JobResult) -> dict[str, float]:
    """Execution-time breakdown (Figure 8 of the paper)."""
    return {
        "elapsed": result.elapsed,
        "compute": mean_compute(result),
        "comm": mean_comm(result),
    }
