"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = [
    "format_table", "format_stats", "format_timeline", "format_audit",
    "format_mttr", "format_profile", "Report",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""

    def cell(x: Any) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            if abs(x) >= 1000:
                return f"{x:,.0f}"
            if abs(x) >= 10:
                return f"{x:.1f}"
            return f"{x:.3f}"
        return str(x)

    grid = [[cell(h) for h in headers]] + [[cell(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(grid):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


#: the per-rank columns of ``format_stats``: the mechanism signals the
#: paper's figures are built from, in presentation order
RANK_STAT_COLUMNS = (
    "dev.msgs_sent",
    "dev.bytes_sent",
    "el.roundtrips",
    "gate.stall_s",
    "senderlog.bytes",
    "senderlog.spill_bytes",
    "deliveries.replayed",
    "deliveries.fresh",
    "ckpt.bytes",
)


def format_stats(
    metrics: Any,
    columns: Optional[Sequence[str]] = None,
    prefix: Optional[str] = None,
    top: Optional[int] = None,
) -> str:
    """Render a metrics registry: per-rank mechanism table + totals.

    ``metrics`` is a :class:`~repro.obs.registry.Metrics`; ``columns``
    overrides the per-rank column set (default
    :data:`RANK_STAT_COLUMNS`).  Metrics a run never touched show 0.
    ``prefix`` keeps only metrics under one namespace (``"el."``,
    ``"session."``, ...; the per-rank columns are filtered too), and
    ``top`` keeps only the N largest totals instead of the full
    alphabetical dump.
    """
    columns = list(columns if columns is not None else RANK_STAT_COLUMNS)
    if prefix is not None:
        columns = [c for c in columns if c.startswith(prefix)]
    by_rank = metrics.by_label("rank")
    blocks: list[str] = []
    if by_rank and columns:
        rows = [
            [rank] + [by_rank[rank].get(c, 0.0) for c in columns]
            for rank in sorted(by_rank)
        ]
        blocks.append(format_table(["rank"] + columns, rows))
    totals = metrics.snapshot()
    if prefix is not None:
        totals = {n: v for n, v in totals.items() if n.startswith(prefix)}
    if totals:
        if top is not None:
            names = [
                n for n, _ in sorted(
                    totals.items(), key=lambda kv: (-abs(kv[1]), kv[0])
                )[:top]
            ]
        else:
            names = sorted(totals)
        blocks.append(
            format_table(
                ["metric", "total"],
                [[name, totals[name]] for name in names],
            )
        )
    return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


def format_timeline(spans: Sequence[Any]) -> str:
    """Render recovery spans (see :mod:`repro.obs.timeline`) as a table.

    A span a second fault (or a global restart) cut short shows its
    abort cause in the ``note`` column instead of silently reading as
    missing data."""
    if not spans:
        return "(no restarts)"

    def opt(x: Any) -> Any:
        return "-" if x is None else x

    def note(s: Any) -> str:
        if getattr(s, "aborted", False):
            return f"aborted:{s.aborted_by}@{s.aborted_t:.3f}"
        if getattr(s, "chained_from", None) is not None:
            return f"supersedes i{s.chained_from}"
        return ""

    rows = [
        [
            s.rank,
            s.fault_t,
            opt(s.detect_t),
            opt(s.respawn_t),
            opt(s.replay_start_t),
            opt(s.caught_up_t),
            opt(s.downtime_s),
            opt(s.recovery_s),
            opt(s.host),
            note(s),
        ]
        for s in spans
    ]
    return format_table(
        ["rank", "fault s", "detect s", "respawn s", "replay s",
         "caught-up s", "downtime s", "recovery s", "host", "note"],
        rows,
    )


def format_mttr(attribution: Any, per_fault: bool = True) -> str:
    """Render a :class:`~repro.obs.timeline.RecoveryAttribution`.

    One headline block (MTTR distribution, span accounting, the
    reconciliation error), a per-fault phase-decomposition table (when
    ``per_fault``), the aggregate per-phase p50/p95 table, and the
    detection-latency split by detector source.
    """
    if attribution is None:
        return "(no attribution: run with trace=True)"
    att = attribution
    if not att.spans:
        return "(no faults: nothing to attribute)"

    def opt(x: Any) -> Any:
        return "-" if x is None else x

    mttr = att.mttr()
    head = (
        f"recoveries: {len(att.completed)} completed, "
        f"{len(att.aborted)} aborted, {len(att.incomplete)} incomplete"
    )
    if mttr["n"]:
        head += (
            f"\nMTTR: p50 {mttr['p50']:.3f}s  p95 {mttr['p95']:.3f}s  "
            f"mean {mttr['mean']:.3f}s  max {mttr['max']:.3f}s"
        )
        err = max(
            (e for s in att.completed
             if (e := att.reconcile(s)) is not None),
            default=0.0,
        )
        head += f"\nphase sums reconcile with recovery_s to {err:.2e}s"
    blocks = [head]
    if per_fault:
        rows = []
        for s in att.spans:
            b = att.breakdown(s)
            status = "ok"
            if s.aborted:
                status = f"aborted:{s.aborted_by}"
            elif not s.completed:
                status = "incomplete"
            rows.append(
                [
                    s.rank,
                    opt(s.incarnation),
                    s.fault_t,
                    opt(s.detect_source),
                    opt(b["detect"]),
                    opt(b["respawn"]),
                    opt(b["fetch"]),
                    opt(b["el_download"]),
                    opt(b["resync"]),
                    opt(b["replay"]),
                    opt(s.recovery_s),
                    status,
                ]
            )
        blocks.append(
            "per-fault phase decomposition (seconds):\n"
            + format_table(
                ["rank", "inc", "fault t", "source", "detect", "respawn",
                 "fetch", "el-dl", "resync", "replay", "recovery", "status"],
                rows,
            )
        )
    phases = att.phase_stats()
    prows = [
        [p, st["n"], opt(st["p50"]), opt(st["p95"]), opt(st["mean"]),
         opt(st["max"])]
        for p, st in phases.items()
    ]
    blocks.append(
        "per-phase distribution over completed recoveries:\n"
        + format_table(["phase", "n", "p50 s", "p95 s", "mean s", "max s"],
                       prows)
    )
    by_src = att.detect_by_source()
    if by_src:
        blocks.append(
            "detection latency by source:\n"
            + format_table(
                ["source", "n", "p50 s", "p95 s", "mean s", "max s"],
                [
                    [src, st["n"], opt(st["p50"]), opt(st["p95"]),
                     opt(st["mean"]), opt(st["max"])]
                    for src, st in by_src.items()
                ],
            )
        )
    totals = att.totals()
    blocks.append(
        "recovery traffic totals: "
        f"fetch {totals['fetch_bytes']:,} B in {totals['fetch_chunks']} "
        f"chunks ({totals['fetch_failovers']} failovers, "
        f"{totals['fetch_retries']} retries), "
        f"EL {totals['el_events']} events ({totals['el_retries']} retries, "
        f"{totals['el_failovers']} replica failovers), "
        f"{totals['resync_peers']} peer resyncs"
    )
    return "\n\n".join(blocks)


def format_audit(report: Any) -> str:
    """Render an :class:`~repro.obs.audit.AuditReport` as display text.

    One header line with the verdict and stream coverage, a per-rule
    check/violation table, and — when there are violations — one row per
    violation with its rank, vector clock, and detail.
    """
    if report is None:
        return "(no audit: run with audit=True)"
    head = (
        f"audit verdict: {report.verdict}  "
        f"(events={report.events_seen}, dropped={report.dropped_records})"
    )
    if report.truncated:
        head += "  [stream truncated: cannot attest a clean run]"
    rule_rows = [
        [rule, report.checks.get(rule, 0), report.count(rule)]
        for rule in sorted(report.checks)
    ]
    blocks = [head, format_table(["rule", "checks", "violations"], rule_rows)]
    if report.violations:
        vrows = [
            [
                f"{v.time:.3f}",
                v.rule,
                v.rank,
                "{" + ", ".join(
                    f"{r}:{c}" for r, c in sorted(v.vc.items())
                ) + "}",
                v.detail,
            ]
            for v in report.violations
        ]
        blocks.append(
            format_table(["time s", "rule", "rank", "vclock", "detail"], vrows)
        )
    return "\n\n".join(blocks)


def format_profile(
    profile: Any,
    critical: Optional[dict] = None,
    elapsed: Optional[float] = None,
    top: int = 10,
) -> str:
    """Render a :class:`~repro.obs.profile.KernelProfile` as display text.

    One headline block (events, events/sec, wall vs simulated time,
    queue depth), the per-service CPU decomposition, the ``top`` hottest
    event kinds, and — when ``critical`` (a :func:`~repro.obs.profile.
    critical_path` result) is given — the per-category latency
    contributions plus the tail of the binding chain.
    """
    if profile is None:
        return "(no profile: run with profile=True)"
    q = profile.queue_depth or {}
    head = (
        f"kernel: {profile.events:,} events in {profile.wall_s:.3f}s wall "
        f"({profile.events_per_s:,.0f} events/s), "
        f"{profile.sim_s:.3f}s simulated"
    )
    if elapsed is not None:
        head += f", job elapsed {elapsed:.3f}s"
    head += (
        f"\nheap depth: mean {q.get('mean', 0.0):.1f}, max {q.get('max', 0)}"
        f"  (sampled 1/{profile.sample_every})"
    )
    blocks = [head]
    if profile.services:
        blocks.append(
            "service CPU decomposition (sampled, scaled):\n"
            + format_table(
                ["service", "steps", "cpu s", "share %"],
                [
                    [s["service"], s["steps"], s["cpu_s"], 100.0 * s["share"]]
                    for s in profile.services
                ],
            )
        )
    if profile.kinds:
        blocks.append(
            f"top {min(top, len(profile.kinds))} event kinds by wall time:\n"
            + format_table(
                ["kind", "count", "wall s", "share %"],
                [
                    [k["kind"], k["count"], k["wall_s"], 100.0 * k["share"]]
                    for k in profile.kinds[:top]
                ],
            )
        )
    if critical is not None:
        steps = critical.get("steps") or []
        if not steps:
            blocks.append("critical path: (empty happens-before graph)")
        else:
            blocks.append(
                f"critical path: {len(steps)} edges spanning "
                f"{critical['span_s']:.3f}s, "
                f"top contributor: {critical['top_contributor']}\n"
                + format_table(
                    ["category", "edges", "latency s", "share %"],
                    [
                        [c["category"], c["edges"], c["latency_s"],
                         100.0 * c["share"]]
                        for c in critical["contributions"]
                    ],
                )
            )
            tail = steps[-min(8, len(steps)):]
            rows = [
                [
                    f"{s['from']['time']:.4f}",
                    f"r{s['from']['rank']}:{s['from']['op']}",
                    "->",
                    f"r{s['to']['rank']}:{s['to']['op']}",
                    s["category"],
                    s["latency_s"],
                ]
                for s in tail
            ]
            blocks.append(
                f"chain tail (last {len(tail)} of {len(steps)} edges):\n"
                + format_table(
                    ["t from", "from", "", "to", "category", "latency s"],
                    rows,
                )
            )
    return "\n\n".join(blocks)


class Report:
    """A titled block of text collected by the benchmark harness."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.blocks: list[str] = []

    def add(self, text: str) -> "Report":
        """Append a text block; returns self for chaining."""
        self.blocks.append(text)
        return self

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> "Report":
        """Append an aligned table block; returns self for chaining."""
        return self.add(format_table(headers, rows))

    def render(self) -> str:
        """The full report as display-ready text."""
        bar = "=" * max(len(self.title), 40)
        return f"\n{bar}\n{self.title}\n{bar}\n" + "\n\n".join(self.blocks) + "\n"
