"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "Report"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""

    def cell(x: Any) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            if abs(x) >= 1000:
                return f"{x:,.0f}"
            if abs(x) >= 10:
                return f"{x:.1f}"
            return f"{x:.3f}"
        return str(x)

    grid = [[cell(h) for h in headers]] + [[cell(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(grid):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class Report:
    """A titled block of text collected by the benchmark harness."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.blocks: list[str] = []

    def add(self, text: str) -> "Report":
        """Append a text block; returns self for chaining."""
        self.blocks.append(text)
        return self

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> "Report":
        """Append an aligned table block; returns self for chaining."""
        return self.add(format_table(headers, rows))

    def render(self) -> str:
        """The full report as display-ready text."""
        bar = "=" * max(len(self.title), 40)
        return f"\n{bar}\n{self.title}\n{bar}\n" + "\n\n".join(self.blocks) + "\n"
