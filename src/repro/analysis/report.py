"""Plain-text tables for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = [
    "format_table", "format_stats", "format_timeline", "format_audit",
    "Report",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""

    def cell(x: Any) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            if abs(x) >= 1000:
                return f"{x:,.0f}"
            if abs(x) >= 10:
                return f"{x:.1f}"
            return f"{x:.3f}"
        return str(x)

    grid = [[cell(h) for h in headers]] + [[cell(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in grid) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(grid):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


#: the per-rank columns of ``format_stats``: the mechanism signals the
#: paper's figures are built from, in presentation order
RANK_STAT_COLUMNS = (
    "dev.msgs_sent",
    "dev.bytes_sent",
    "el.roundtrips",
    "gate.stall_s",
    "senderlog.bytes",
    "senderlog.spill_bytes",
    "deliveries.replayed",
    "deliveries.fresh",
    "ckpt.bytes",
)


def format_stats(
    metrics: Any, columns: Optional[Sequence[str]] = None
) -> str:
    """Render a metrics registry: per-rank mechanism table + totals.

    ``metrics`` is a :class:`~repro.obs.registry.Metrics`; ``columns``
    overrides the per-rank column set (default
    :data:`RANK_STAT_COLUMNS`).  Metrics a run never touched show 0.
    """
    columns = list(columns if columns is not None else RANK_STAT_COLUMNS)
    by_rank = metrics.by_label("rank")
    blocks: list[str] = []
    if by_rank:
        rows = [
            [rank] + [by_rank[rank].get(c, 0.0) for c in columns]
            for rank in sorted(by_rank)
        ]
        blocks.append(format_table(["rank"] + columns, rows))
    totals = metrics.snapshot()
    if totals:
        blocks.append(
            format_table(
                ["metric", "total"],
                [[name, totals[name]] for name in sorted(totals)],
            )
        )
    return "\n\n".join(blocks) if blocks else "(no metrics recorded)"


def format_timeline(spans: Sequence[Any]) -> str:
    """Render recovery spans (see :mod:`repro.obs.timeline`) as a table."""
    if not spans:
        return "(no restarts)"

    def opt(x: Any) -> Any:
        return "-" if x is None else x

    rows = [
        [
            s.rank,
            s.fault_t,
            opt(s.detect_t),
            opt(s.respawn_t),
            opt(s.replay_start_t),
            opt(s.caught_up_t),
            opt(s.downtime_s),
            opt(s.recovery_s),
            opt(s.host),
        ]
        for s in spans
    ]
    return format_table(
        ["rank", "fault s", "detect s", "respawn s", "replay s",
         "caught-up s", "downtime s", "recovery s", "host"],
        rows,
    )


def format_audit(report: Any) -> str:
    """Render an :class:`~repro.obs.audit.AuditReport` as display text.

    One header line with the verdict and stream coverage, a per-rule
    check/violation table, and — when there are violations — one row per
    violation with its rank, vector clock, and detail.
    """
    if report is None:
        return "(no audit: run with audit=True)"
    head = (
        f"audit verdict: {report.verdict}  "
        f"(events={report.events_seen}, dropped={report.dropped_records})"
    )
    if report.truncated:
        head += "  [stream truncated: cannot attest a clean run]"
    rule_rows = [
        [rule, report.checks.get(rule, 0), report.count(rule)]
        for rule in sorted(report.checks)
    ]
    blocks = [head, format_table(["rule", "checks", "violations"], rule_rows)]
    if report.violations:
        vrows = [
            [
                f"{v.time:.3f}",
                v.rule,
                v.rank,
                "{" + ", ".join(
                    f"{r}:{c}" for r, c in sorted(v.vc.items())
                ) + "}",
                v.detail,
            ]
            for v in report.violations
        ]
        blocks.append(
            format_table(["time s", "rule", "rank", "vclock", "detail"], vrows)
        )
    return "\n\n".join(blocks)


class Report:
    """A titled block of text collected by the benchmark harness."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.blocks: list[str] = []

    def add(self, text: str) -> "Report":
        """Append a text block; returns self for chaining."""
        self.blocks.append(text)
        return self

    def table(self, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> "Report":
        """Append an aligned table block; returns self for chaining."""
        return self.add(format_table(headers, rows))

    def render(self) -> str:
        """The full report as display-ready text."""
        bar = "=" * max(len(self.title), 40)
        return f"\n{bar}\n{self.title}\n{bar}\n" + "\n\n".join(self.blocks) + "\n"
