"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the workflows of the paper's evaluation:

* ``pingpong`` — latency/bandwidth across devices (Figures 5/6);
* ``burst`` — the Figure 9 nonblocking burst pattern;
* ``kernel`` — run one NPB proxy on one device;
* ``faulty`` — run a kernel under random faults with checkpointing
  (the Figure 11 setup);
* ``sched`` — the §4.6.2 checkpoint-scheduling policy comparison.

All output is plain-text tables; everything runs on simulated time.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.metrics import breakdown, mops
from .analysis.report import format_table
from .runtime.mpirun import run_job
from .workloads import nas
from .workloads.pingpong import measure as pingpong_measure
from .workloads.synthetic import measure as burst_measure

__all__ = ["main"]

DEVICES = ("p4", "v1", "v2")


def _cmd_pingpong(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    for nbytes in sizes:
        cells = [nbytes]
        for dev in args.devices.split(","):
            m = pingpong_measure(dev, nbytes, reps=args.reps)
            cells.append(m["latency_us"])
            cells.append(m["bandwidth_MBps"])
        rows.append(cells)
    headers = ["bytes"]
    for dev in args.devices.split(","):
        headers += [f"{dev} us", f"{dev} MB/s"]
    print(format_table(headers, rows))
    return 0


def _cmd_burst(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    for nbytes in sizes:
        p4 = burst_measure("p4", nbytes, reps=args.reps)["bandwidth_MBps"]
        v2 = burst_measure("v2", nbytes, reps=args.reps)["bandwidth_MBps"]
        rows.append([nbytes, p4, v2, v2 / p4])
    print(format_table(["bytes", "P4 MB/s", "V2 MB/s", "V2/P4"], rows))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    mod = nas.KERNELS[args.name]
    spec = mod.spec(args.klass)
    res = run_job(
        mod.program, args.nprocs, device=args.device,
        params={"klass": args.klass}, limit=1e8,
    )
    b = breakdown(res)
    print(
        format_table(
            ["kernel", "device", "procs", "elapsed s", "compute s",
             "comm s", "Mop/s"],
            [[f"{args.name.upper()}-{args.klass}", args.device, args.nprocs,
              b["elapsed"], b["compute"], b["comm"],
              mops(spec.total_flops, res)]],
        )
    )
    return 0


def _cmd_faulty(args: argparse.Namespace) -> int:
    from .ft.failure import RandomFaults

    mod = nas.KERNELS[args.name]
    base = run_job(
        mod.program, args.nprocs, device="v2",
        params={"klass": args.klass}, limit=1e8,
    )
    interval = base.elapsed / max(1, args.faults + 1)
    res = run_job(
        mod.program, args.nprocs, device="v2",
        params={"klass": args.klass},
        checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
        faults=RandomFaults(interval=interval, count=args.faults,
                            seed=args.seed) if args.faults else None,
        limit=1e8,
    )
    print(
        format_table(
            ["kernel", "faults", "reference s", "elapsed s", "slowdown",
             "restarts", "checkpoints"],
            [[f"{args.name.upper()}-{args.klass}", args.faults, base.elapsed,
              res.elapsed, res.elapsed / base.elapsed, res.restarts,
              res.checkpoints]],
        )
    )
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    from .sched import SCHEMES, scheme, simulate

    rows = []
    for name in sorted(SCHEMES):
        sc = scheme(name, args.nodes, rate=2e6)
        rr = simulate(sc, "round_robin", footprint=4e6)
        ad = simulate(sc, "adaptive", footprint=4e6)
        rows.append(
            [name, rr.ckpt_bandwidth / 1e6, ad.ckpt_bandwidth / 1e6,
             rr.ckpt_bandwidth / ad.ckpt_bandwidth]
        )
    print(format_table(["scheme", "RR MB/s", "adaptive MB/s", "RR/AD"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="MPICH-V2 reproduction: run the paper's experiments",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("pingpong", help="latency/bandwidth (Figures 5/6)")
    sp.add_argument("--sizes", default="0,1024,65536,1048576")
    sp.add_argument("--devices", default="p4,v1,v2")
    sp.add_argument("--reps", type=int, default=8)
    sp.set_defaults(fn=_cmd_pingpong)

    sp = sub.add_parser("burst", help="nonblocking burst bandwidth (Figure 9)")
    sp.add_argument("--sizes", default="1024,16384,65536")
    sp.add_argument("--reps", type=int, default=4)
    sp.set_defaults(fn=_cmd_burst)

    sp = sub.add_parser("kernel", help="run one NPB proxy")
    sp.add_argument("name", choices=sorted(nas.KERNELS))
    sp.add_argument("--class", dest="klass", default="A",
                    choices=["T", "S", "A", "B", "C"])
    sp.add_argument("-n", "--nprocs", type=int, default=4)
    sp.add_argument("--device", default="v2", choices=DEVICES)
    sp.set_defaults(fn=_cmd_kernel)

    sp = sub.add_parser("faulty", help="kernel under faults (Figure 11 setup)")
    sp.add_argument("name", choices=sorted(nas.KERNELS))
    sp.add_argument("--class", dest="klass", default="A",
                    choices=["T", "S", "A", "B", "C"])
    sp.add_argument("-n", "--nprocs", type=int, default=4)
    sp.add_argument("--faults", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.set_defaults(fn=_cmd_faulty)

    sp = sub.add_parser("sched", help="checkpoint-scheduling policies (§4.6.2)")
    sp.add_argument("--nodes", type=int, default=16)
    sp.set_defaults(fn=_cmd_sched)

    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
