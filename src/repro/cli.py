"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the workflows of the paper's evaluation:

* ``pingpong`` — latency/bandwidth across devices (Figures 5/6);
* ``burst`` — the Figure 9 nonblocking burst pattern;
* ``kernel`` — run one NPB proxy on one device;
* ``faulty`` — run a kernel under random faults with checkpointing
  (the Figure 11 setup);
* ``sched`` — the §4.6.2 checkpoint-scheduling policy comparison;
* ``stats`` — run one kernel and print the mechanism-level metrics
  (``--prefix``/``--top`` filter the totals table);
* ``trace`` — run one kernel with tracing and export a Chrome trace;
* ``audit`` — run one kernel under the online protocol auditor and
  report the V2 safety verdict (exit 1 on violations);
* ``profile`` — run one kernel under the event-kernel profiler and
  print the overhead decomposition ("where does the time go"): per-
  service CPU, hottest event kinds, and — on v2 — the critical path
  over the happens-before graph;
* ``mttr`` — run one kernel under churn faults and print the
  phase-decomposed recovery attribution ("where does recovery time
  go"): per-fault detect/respawn/fetch/el-download/resync/replay
  durations, per-phase p50/p95, detection latency by source;
* ``serve`` — run a whole plan of jobs concurrently over one shared
  cluster through the gang-scheduling control plane, with fair-share
  tenancy and per-job audits (exit 1 on any violation).

``kernel``, ``faulty``, ``pingpong``, ``burst`` and ``stats`` also take
``--trace-out`` (Chrome trace-event JSON, or JSON lines when the path
ends in ``.jsonl``) and ``--metrics-out`` (the full metrics registry as
JSON).  All table output is plain text; everything runs on simulated
time.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from .analysis.metrics import breakdown, mops
from .analysis.report import (
    format_audit,
    format_mttr,
    format_profile,
    format_stats,
    format_table,
    format_timeline,
)
from .obs import (
    RecoveryAttribution,
    chrome_trace,
    merge_chrome_traces,
    recovery_timeline,
    trace_records,
)
from .runtime.mpirun import run_job
from .workloads import nas
from .workloads.pingpong import measure as pingpong_measure
from .workloads.synthetic import measure as burst_measure

__all__ = ["main"]

DEVICES = ("p4", "v1", "v2")


def _parse_devices(spec: str) -> Optional[list[str]]:
    """Split a ``--devices`` list once and validate every entry."""
    devices = [d.strip() for d in spec.split(",") if d.strip()]
    unknown = [d for d in devices if d not in DEVICES]
    if not devices or unknown:
        what = ", ".join(unknown) if unknown else "(empty list)"
        print(
            f"repro: unknown device(s): {what}; "
            f"choose from {', '.join(DEVICES)}",
            file=sys.stderr,
        )
        return None
    return devices


KLASSES = ("T", "S", "A", "B", "C")


def _workload_parent(
    klass: str = "A", nprocs: int = 4, device: Optional[str] = "v2"
) -> argparse.ArgumentParser:
    """Parent parser: the shared kernel/--class/-n/--device block
    (``device=None`` omits ``--device`` for commands pinned to v2)."""
    sp = argparse.ArgumentParser(add_help=False)
    sp.add_argument("name", choices=sorted(nas.KERNELS))
    sp.add_argument("--class", dest="klass", default=klass, choices=KLASSES)
    sp.add_argument("-n", "--nprocs", type=int, default=nprocs)
    if device is not None:
        sp.add_argument("--device", default=device, choices=DEVICES)
    return sp


def _store_parent() -> argparse.ArgumentParser:
    """Parent parser: the shared EL / checkpoint-store deployment flags."""
    sp = argparse.ArgumentParser(add_help=False)
    sp.add_argument(
        "--ckpt-servers", type=int, default=None, metavar="N",
        help="deploy N checkpoint-store replicas (default 1)",
    )
    sp.add_argument(
        "--ckpt-replicas", type=int, default=None, metavar="K",
        help="write quorum: a checkpoint is durable once K replicas "
             "hold it (default 1)",
    )
    sp.add_argument(
        "--ckpt-incremental", action="store_true",
        help="push only the chunks a replica is missing "
             "(content-addressed incremental checkpoints)",
    )
    sp.add_argument(
        "--ckpt-chunk-kib", type=int, default=None, metavar="KIB",
        help="checkpoint store chunk size in KiB (default 64)",
    )
    sp.add_argument(
        "--el-servers", type=int, default=None, metavar="N",
        help="shard ranks across N event-logger groups (default 1)",
    )
    sp.add_argument(
        "--el-replicas", type=int, default=None, metavar="K",
        help="run K replicas per event-logger shard; the WAITLOGGED "
             "gate clears on a majority quorum of acks (default 1)",
    )
    return sp


def _store_cfg(args: argparse.Namespace, cfg):
    """Apply the ``--ckpt-*`` / ``--el-*`` store flags to a TestbedConfig."""
    changes: dict[str, Any] = {}
    if getattr(args, "ckpt_servers", None) is not None:
        changes["ckpt_servers"] = max(1, args.ckpt_servers)
    if getattr(args, "ckpt_replicas", None) is not None:
        changes["ckpt_replicas"] = max(1, args.ckpt_replicas)
    if getattr(args, "ckpt_incremental", False):
        changes["ckpt_incremental"] = True
    if getattr(args, "ckpt_chunk_kib", None) is not None:
        changes["ckpt_chunk_kib"] = max(1, args.ckpt_chunk_kib)
    if getattr(args, "el_servers", None) is not None:
        changes["el_servers"] = max(1, args.el_servers)
    if getattr(args, "el_replicas", None) is not None:
        changes["el_replicas"] = max(1, args.el_replicas)
    return cfg.with_(**changes) if changes else cfg


def _obs_parent() -> argparse.ArgumentParser:
    """Parent parser: the trace/metrics export and audit flags."""
    sp = argparse.ArgumentParser(add_help=False)
    sp.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's trace (Chrome trace-event JSON; "
             "*.jsonl writes JSON lines)",
    )
    sp.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the full metrics registry as JSON",
    )
    sp.add_argument(
        "--audit", action="store_true",
        help="attach the online protocol auditor and print its verdict",
    )
    return sp


def _write_obs(args: argparse.Namespace, runs: list[tuple[str, Any]]) -> None:
    """Honour ``--trace-out`` / ``--metrics-out`` for one or more runs."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out:
        if trace_out.endswith(".jsonl"):
            with open(trace_out, "w") as fh:
                for label, res in runs:
                    for rec in trace_records(res.tracer):
                        if len(runs) > 1:
                            rec = {"run": label, **rec}
                        fh.write(json.dumps(rec) + "\n")
        else:
            if len(runs) == 1:
                res = runs[0][1]
                # a sampled run renders its time-series as counter tracks
                counters = (
                    res.timeseries.counter_tracks()
                    if getattr(res, "timeseries", None) is not None
                    else None
                )
                doc = chrome_trace(res.tracer, counters=counters)
            else:
                doc = merge_chrome_traces(
                    [(label, res.tracer) for label, res in runs]
                )
            with open(trace_out, "w") as fh:
                json.dump(doc, fh)
    if metrics_out:
        payload: Any = {
            label: res.metrics.export() if res.metrics is not None else []
            for label, res in runs
        }
        if len(runs) == 1:
            payload = next(iter(payload.values()))
        with open(metrics_out, "w") as fh:
            json.dump(payload, fh, indent=2)


def _print_detect_latency(res: Any) -> None:
    """Print the fault→detection latency histogram split by source."""
    if res.metrics is None:
        return
    rows = []
    for m in res.metrics:
        if m.name != "disp.detect_latency_s" or not m.count:
            continue
        rows.append(
            [m.labels.get("source", "?"), m.count, m.mean(), m.max]
        )
    if rows:
        print("\ndetection latency by source:")
        print(format_table(["source", "n", "mean s", "max s"], sorted(rows)))


def _print_audits(args: argparse.Namespace, runs: list[tuple[str, Any]]) -> None:
    """Honour ``--audit`` by printing each run's verdict."""
    if not getattr(args, "audit", False):
        return
    for label, res in runs:
        if len(runs) > 1:
            print(f"\n[{label}]")
        print(format_audit(res.audit))


def _cmd_pingpong(args: argparse.Namespace) -> int:
    devices = _parse_devices(args.devices)
    if devices is None:
        return 2
    sizes = [int(s) for s in args.sizes.split(",")]
    job_kw: dict[str, Any] = {"trace": True} if args.trace_out else {}
    if args.audit:
        job_kw["audit"] = True
    runs: list[tuple[str, Any]] = []
    rows = []
    for nbytes in sizes:
        cells: list[Any] = [nbytes]
        for dev in devices:
            m = pingpong_measure(dev, nbytes, reps=args.reps, **job_kw)
            runs.append((f"{dev}/{nbytes}B", m["result"]))
            cells.append(m["latency_us"])
            cells.append(m["bandwidth_MBps"])
        rows.append(cells)
    headers = ["bytes"]
    for dev in devices:
        headers += [f"{dev} us", f"{dev} MB/s"]
    print(format_table(headers, rows))
    _print_audits(args, runs)
    _write_obs(args, runs)
    return 0


def _cmd_burst(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    job_kw: dict[str, Any] = {"trace": True} if args.trace_out else {}
    if args.audit:
        job_kw["audit"] = True
    runs: list[tuple[str, Any]] = []
    rows = []
    for nbytes in sizes:
        mp4 = burst_measure("p4", nbytes, reps=args.reps, **job_kw)
        mv2 = burst_measure("v2", nbytes, reps=args.reps, **job_kw)
        runs.append((f"p4/{nbytes}B", mp4["result"]))
        runs.append((f"v2/{nbytes}B", mv2["result"]))
        p4 = mp4["bandwidth_MBps"]
        v2 = mv2["bandwidth_MBps"]
        rows.append([nbytes, p4, v2, v2 / p4])
    print(format_table(["bytes", "P4 MB/s", "V2 MB/s", "V2/P4"], rows))
    _print_audits(args, runs)
    _write_obs(args, runs)
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .runtime.config import DEFAULT_TESTBED

    mod = nas.KERNELS[args.name]
    spec = mod.spec(args.klass)
    ckpt_kw = {}
    if args.ckpt_interval is not None:
        if args.device != "v2":
            print("--ckpt-interval requires --device v2", file=sys.stderr)
            return 2
        ckpt_kw = dict(checkpointing=True, ckpt_interval=args.ckpt_interval)
    res = run_job(
        mod.program, args.nprocs, device=args.device,
        cfg=_store_cfg(args, DEFAULT_TESTBED),
        params={"klass": args.klass}, limit=1e8,
        trace=bool(args.trace_out), audit=args.audit,
        **ckpt_kw,
    )
    b = breakdown(res)
    print(
        format_table(
            ["kernel", "device", "procs", "elapsed s", "compute s",
             "comm s", "Mop/s"],
            [[f"{args.name.upper()}-{args.klass}", args.device, args.nprocs,
              b["elapsed"], b["compute"], b["comm"],
              mops(spec.total_flops, res)]],
        )
    )
    _print_audits(args, [(f"{args.name}-{args.klass}", res)])
    _write_obs(args, [(f"{args.name}-{args.klass}", res)])
    return 0


def _parse_partitions(spec: str) -> list[tuple[float, tuple[int, ...], float]]:
    """Parse ``AT:DUR:R0+R1[,...]`` into a PartitionFaults schedule."""
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        at_s, dur_s, ranks_s = part.split(":")
        ranks = tuple(int(r) for r in ranks_s.split("+"))
        out.append((float(at_s), ranks, float(dur_s)))
    return out


def _parse_service_faults(spec: str) -> list[tuple[float, str, float]]:
    """Parse ``NAME@AT:DOWN[,...]`` into a ServiceFaults schedule.

    Split on ``@`` first: service names themselves contain colons
    ("el:0", "cs:0").
    """
    out = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, rest = part.split("@", 1)
        at_s, down_s = rest.split(":")
        out.append((float(at_s), name, float(down_s)))
    return out


def _cmd_faulty(args: argparse.Namespace) -> int:
    from .ft.failure import (
        ChurnFaults,
        PartitionFaults,
        RandomFaults,
        ServiceFaults,
    )

    if args.device not in ("v1", "v2"):
        print(
            f"repro: faulty requires a fault-tolerant device "
            f"(--device v2 or v1), not {args.device!r}",
            file=sys.stderr,
        )
        return 2
    if args.device == "v1" and args.partitions:
        print(
            "repro: --partitions requires --device v2 "
            "(V1 has no partition hook)",
            file=sys.stderr,
        )
        return 2
    try:
        partition_sched = (
            _parse_partitions(args.partitions) if args.partitions else []
        )
        service_sched = (
            _parse_service_faults(args.service_faults)
            if args.service_faults
            else []
        )
    except ValueError as exc:
        print(f"repro: bad fault spec: {exc}", file=sys.stderr)
        return 2
    from .runtime.config import DEFAULT_TESTBED

    cfg = _store_cfg(args, DEFAULT_TESTBED)
    mod = nas.KERNELS[args.name]
    base = run_job(
        mod.program, args.nprocs, device=args.device, cfg=cfg,
        params={"klass": args.klass}, limit=1e8,
    )
    plans: list[Any] = []
    if args.faults:
        if args.plan == "churn":
            plans.append(
                ChurnFaults(
                    mean_lifetime=args.mean_lifetime, shape=args.shape,
                    max_faults=args.faults, seed=args.seed,
                )
            )
        else:
            interval = base.elapsed / max(1, args.faults + 1)
            plans.append(
                RandomFaults(interval=interval, count=args.faults,
                             seed=args.seed)
            )
    if partition_sched:
        plans.append(PartitionFaults(partition_sched))
    if service_sched:
        plans.append(ServiceFaults(service_sched))
    # V1's recovery is its own (restart-from-scratch + CM replay):
    # checkpointing kwargs belong to the v2 launcher only
    ckpt_kw = (
        dict(checkpointing=True, ckpt_policy="random", ckpt_continuous=True)
        if args.device == "v2"
        else {}
    )
    res = run_job(
        mod.program, args.nprocs, device=args.device, cfg=cfg,
        params={"klass": args.klass},
        faults=plans or None,
        limit=1e8,
        trace=bool(args.trace_out), audit=args.audit,
        **ckpt_kw,
    )
    print(
        format_table(
            ["kernel", "faults", "reference s", "elapsed s", "slowdown",
             "restarts", "checkpoints", "replayed", "ckpt MB"],
            [[f"{args.name.upper()}-{args.klass}", args.faults, base.elapsed,
              res.elapsed, res.elapsed / base.elapsed, res.restarts,
              res.checkpoints, int(res.stat("deliveries.replayed")),
              res.stat("ckpt.bytes") / 1e6]],
        )
    )
    if (partition_sched or service_sched) and res.metrics is not None:
        print(
            f"outages: retries={int(res.metrics.total('outage.retries'))} "
            f"reconnects={int(res.metrics.total('outage.reconnects'))} "
            f"backoff={res.metrics.total('outage.backoff_s'):.3f}s "
            f"el_down={res.metrics.total('outage.el_down_s'):.3f}s "
            f"ckpt_aborted={int(res.metrics.total('ckpt.aborted'))}"
        )
    if res.metrics is not None and res.metrics.total("store.push_bytes"):
        print(
            f"store: pushed={res.metrics.total('store.push_bytes') / 1e6:.2f}MB "
            f"deduped={res.metrics.total('store.dedup_bytes') / 1e6:.2f}MB "
            f"fetched={res.metrics.total('store.fetch_bytes') / 1e6:.2f}MB "
            f"failovers={int(res.metrics.total('store.failover'))} "
            f"gc_reclaimed={res.metrics.total('store.gc_reclaimed_bytes') / 1e6:.2f}MB"
        )
    if args.device == "v1" and service_sched and res.metrics is not None:
        print(
            f"cm: crashes={int(res.metrics.total('svc.crashes'))} "
            f"relaunches={int(res.metrics.total('svc.restarts'))} "
            f"client_reconnects={int(res.metrics.total('v1.cm_reconnects'))}"
        )
    if res.metrics is not None and (cfg.el_servers > 1 or cfg.el_replicas > 1):
        print(
            f"el: shards={cfg.el_servers} replicas={cfg.el_replicas} "
            f"quorum={cfg.el_quorum} "
            f"failovers={int(res.metrics.total('el.failovers'))} "
            f"resyncs={int(res.metrics.total('el.resyncs'))} "
            f"quorum_wait_p95="
            f"{res.metrics.quantile('el.quorum_wait_s', 0.95) * 1e6:.0f}us"
        )
    if res.restarts:
        _print_detect_latency(res)
    _print_audits(args, [(f"{args.name}-{args.klass}-faulty", res)])
    _write_obs(args, [(f"{args.name}-{args.klass}-faulty", res)])
    if args.audit and res.audit is not None and not res.audit.clean:
        return 1
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    from .sched import SCHEMES, scheme, simulate

    rows = []
    for name in sorted(SCHEMES):
        sc = scheme(name, args.nodes, rate=2e6)
        rr = simulate(sc, "round_robin", footprint=4e6)
        ad = simulate(sc, "adaptive", footprint=4e6)
        rows.append(
            [name, rr.ckpt_bandwidth / 1e6, ad.ckpt_bandwidth / 1e6,
             rr.ckpt_bandwidth / ad.ckpt_bandwidth]
        )
    print(format_table(["scheme", "RR MB/s", "adaptive MB/s", "RR/AD"], rows))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    mod = nas.KERNELS[args.name]
    res = run_job(
        mod.program, args.nprocs, device=args.device,
        params={"klass": args.klass}, limit=1e8,
        trace=bool(args.trace_out), audit=args.audit,
    )
    print(format_stats(res.metrics, prefix=args.prefix, top=args.top))
    if args.prefix in (None, "disp."):
        _print_detect_latency(res)
    _print_audits(args, [(f"{args.name}-{args.klass}", res)])
    _write_obs(args, [(f"{args.name}-{args.klass}", res)])
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs.profile import critical_path

    mod = nas.KERNELS[args.name]
    use_hb = args.device == "v2" and not args.no_critical
    hb_kw = {"audit_hb": True} if use_hb else {}  # v2-only keyword
    res = run_job(
        mod.program, args.nprocs, device=args.device,
        params={"klass": args.klass}, limit=1e8, seed=args.seed,
        profile=True, audit=use_hb, **hb_kw,
    )
    critical = None
    if use_hb and res.audit is not None:
        critical = critical_path(res.audit.hb)
    print(
        format_profile(
            res.profile, critical=critical, elapsed=res.elapsed, top=args.top
        )
    )
    if args.json_out:
        doc = res.profile.to_dict()
        if critical is not None:
            doc["critical_path"] = critical
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote profile to {args.json_out}")
    return 0


def _cmd_mttr(args: argparse.Namespace) -> int:
    from .ft.failure import ChurnFaults, ExplicitFaults
    from .runtime.config import DEFAULT_TESTBED

    mod = nas.KERNELS[args.name]
    cfg = _store_cfg(args, DEFAULT_TESTBED)
    if args.kill_at:
        faults: Any = ExplicitFaults(
            [(float(t), int(r)) for t, r in
             (part.split(":") for part in args.kill_at.split(","))]
        )
    else:
        faults = ChurnFaults(
            mean_lifetime=args.mean_lifetime, shape=args.shape,
            max_faults=args.faults, seed=args.seed,
        )
    res = run_job(
        mod.program, args.nprocs, device="v2", cfg=cfg,
        params={"klass": args.klass}, limit=1e8, seed=args.seed,
        trace=True, audit=args.audit,
        checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
        ckpt_interval=args.ckpt_interval,
        faults=faults,
        timeseries=args.sample_interval,
    )
    att = RecoveryAttribution.from_trace(res.tracer)
    print(
        f"{args.name.upper()}-{args.klass} x{args.nprocs} under churn: "
        f"elapsed {res.elapsed:.2f}s, {res.restarts} restarts, "
        f"{res.checkpoints} checkpoints"
    )
    print(format_mttr(att))
    if args.json_out:
        doc = {
            "kernel": f"{args.name}-{args.klass}",
            "nprocs": args.nprocs,
            "seed": args.seed,
            "elapsed": res.elapsed,
            "restarts": res.restarts,
            "attribution": att.as_dict(),
        }
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote attribution to {args.json_out}")
    if args.timeseries_out:
        n = res.timeseries.write_jsonl(args.timeseries_out)
        print(f"wrote {n} time-series samples to {args.timeseries_out}")
    _print_audits(args, [(f"{args.name}-{args.klass}-mttr", res)])
    _write_obs(args, [(f"{args.name}-{args.klass}-mttr", res)])
    if args.audit and res.audit is not None and not res.audit.clean:
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .ft.failure import RandomFaults

    mod = nas.KERNELS[args.name]
    job_kw: dict[str, Any] = {}
    if args.faults:
        if args.device != "v2":
            print(
                "repro: fault injection requires --device v2",
                file=sys.stderr,
            )
            return 2
        job_kw.update(
            checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
            faults=RandomFaults(interval=args.fault_interval,
                                count=args.faults, seed=args.seed),
        )
    res = run_job(
        mod.program, args.nprocs, device=args.device,
        params={"klass": args.klass}, limit=1e8, trace=True, **job_kw,
    )
    args.trace_out = args.out  # reuse the shared writer
    args.metrics_out = getattr(args, "metrics_out", None)
    _write_obs(args, [(f"{args.name}-{args.klass}", res)])
    print(f"wrote {len(res.tracer)} trace records to {args.out}")
    if args.timeline:
        print(format_timeline(recovery_timeline(res.tracer)))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .ft.failure import RandomFaults

    mod = nas.KERNELS[args.name]
    job_kw: dict[str, Any] = {}
    if args.faults:
        job_kw.update(
            checkpointing=True, ckpt_policy="random", ckpt_continuous=True,
            faults=RandomFaults(interval=args.fault_interval,
                                count=args.faults, seed=args.seed),
        )
    res = run_job(
        mod.program, args.nprocs, device="v2",
        params={"klass": args.klass}, limit=1e8, seed=args.seed,
        audit=True, audit_hb=bool(args.hb_out), **job_kw,
    )
    print(format_audit(res.audit))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(res.audit.to_dict(), fh, indent=2)
    if args.hb_out:
        with open(args.hb_out, "w") as fh:
            json.dump(res.audit.hb, fh)
        print(
            f"wrote happens-before graph "
            f"({len(res.audit.hb['nodes'])} nodes, "
            f"{len(res.audit.hb['edges'])} edges) to {args.hb_out}"
        )
    return 1 if res.audit.violations else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.cli import cmd_serve
    return cmd_serve(args, _store_cfg, format_table)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="MPICH-V2 reproduction: run the paper's experiments",
    )
    sub = p.add_subparsers(dest="command", required=True)
    obs = _obs_parent()
    store = _store_parent()

    sp = sub.add_parser("pingpong", parents=[obs],
                        help="latency/bandwidth (Figures 5/6)")
    sp.add_argument("--sizes", default="0,1024,65536,1048576")
    sp.add_argument("--devices", default="p4,v1,v2")
    sp.add_argument("--reps", type=int, default=8)
    sp.set_defaults(fn=_cmd_pingpong)

    sp = sub.add_parser("burst", parents=[obs],
                        help="nonblocking burst bandwidth (Figure 9)")
    sp.add_argument("--sizes", default="1024,16384,65536")
    sp.add_argument("--reps", type=int, default=4)
    sp.set_defaults(fn=_cmd_burst)

    sp = sub.add_parser("kernel", parents=[_workload_parent(), store, obs],
                        help="run one NPB proxy")
    sp.add_argument("--ckpt-interval", type=float, default=None,
                    metavar="SECS",
                    help="checkpoint every SECS simulated seconds (v2 "
                         "only); checkpoints let the event loggers "
                         "garbage-collect acknowledged logs, which bounds "
                         "logger memory on long runs")
    sp.set_defaults(fn=_cmd_kernel)

    sp = sub.add_parser("faulty", parents=[_workload_parent(), store, obs],
                        help="kernel under faults (Figure 11 setup)")
    sp.add_argument("--faults", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--plan", default="random", choices=["random", "churn"],
                    help="rank-kill schedule: evenly-spaced random kills, "
                         "or Weibull desktop-grid churn")
    sp.add_argument("--mean-lifetime", type=float, default=10.0,
                    help="churn: mean node lifetime in simulated seconds")
    sp.add_argument("--shape", type=float, default=0.7,
                    help="churn: Weibull shape (<1 is heavy-tailed)")
    sp.add_argument("--partitions", default=None, metavar="AT:DUR:R0+R1[,..]",
                    help="cut the listed ranks off the network at time AT "
                         "for DUR seconds (repeatable, comma separated)")
    sp.add_argument("--service-faults", default=None,
                    metavar="NAME@AT:DOWN[,..]",
                    help="crash service NAME (el:0, cs:0) at time AT for "
                         "DOWN seconds; durable state survives")
    sp.set_defaults(fn=_cmd_faulty)

    sp = sub.add_parser("sched", help="checkpoint-scheduling policies (§4.6.2)")
    sp.add_argument("--nodes", type=int, default=16)
    sp.set_defaults(fn=_cmd_sched)

    sp = sub.add_parser("stats", parents=[_workload_parent(), obs],
                        help="mechanism-level metrics for one run")
    sp.add_argument("--prefix", default=None, metavar="NS",
                    help="only metrics under this namespace prefix "
                         "(e.g. el. / session. / store.)")
    sp.add_argument("--top", type=int, default=None, metavar="N",
                    help="only the N largest totals (default: all)")
    sp.set_defaults(fn=_cmd_stats)

    sp = sub.add_parser(
        "profile", parents=[_workload_parent()],
        help="kernel-profiler overhead decomposition (where the time goes)",
    )
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--top", type=int, default=10,
                    help="event kinds shown in the hot-kind table")
    sp.add_argument("--no-critical", action="store_true",
                    help="skip the happens-before critical path "
                         "(v2 only; avoids the audit overhead)")
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="write the profile (and critical path) as JSON")
    sp.set_defaults(fn=_cmd_profile)

    sp = sub.add_parser(
        "mttr", parents=[_workload_parent(nprocs=8, device=None), store, obs],
        help="recovery attribution under churn (where recovery time goes)",
    )
    sp.add_argument("--faults", type=int, default=4,
                    help="churn: maximum number of rank kills")
    sp.add_argument("--mean-lifetime", type=float, default=10.0,
                    help="churn: mean node lifetime in simulated seconds")
    sp.add_argument("--shape", type=float, default=0.7,
                    help="churn: Weibull shape (<1 is heavy-tailed)")
    sp.add_argument("--kill-at", default=None, metavar="AT:RANK[,..]",
                    help="explicit kill schedule instead of churn")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--ckpt-interval", type=float, default=5.0,
                    help="checkpoint scheduler interval (simulated s)")
    sp.add_argument("--sample-interval", type=float, default=0.5,
                    help="time-series sampling cadence (simulated s)")
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="write the full attribution as JSON")
    sp.add_argument("--timeseries-out", default=None, metavar="PATH",
                    help="write the sampled time-series as JSON lines")
    sp.set_defaults(fn=_cmd_mttr)

    sp = sub.add_parser(
        "trace", parents=[_workload_parent()],
        help="run one kernel with tracing; export Chrome trace",
    )
    sp.add_argument("--out", default="trace.json",
                    help="output path (*.jsonl writes JSON lines)")
    sp.add_argument("--faults", type=int, default=0)
    sp.add_argument("--fault-interval", type=float, default=5.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--timeline", action="store_true",
                    help="print the recovery timeline (fault → caught-up)")
    sp.set_defaults(fn=_cmd_trace)

    sp = sub.add_parser(
        "audit", parents=[_workload_parent(klass="S", device=None)],
        help="check the V2 safety invariants live (exit 1 on violations)",
    )
    sp.add_argument("--faults", type=int, default=0,
                    help="inject this many random faults (with checkpointing)")
    sp.add_argument("--fault-interval", type=float, default=5.0)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="write the full audit report as JSON")
    sp.add_argument("--hb-out", default=None, metavar="PATH",
                    help="write the happens-before graph as JSON")
    sp.set_defaults(fn=_cmd_audit)

    sp = sub.add_parser(
        "serve", parents=[store],
        help="run a multi-job plan over one shared cluster (gang scheduling)",
    )
    sp.add_argument("--jobs", required=True, metavar="PLAN.json",
                    help="plan file: tenants (with weights) and jobs")
    sp.add_argument("--capacity", type=int, default=None, metavar="N",
                    help="computing-node slots in the shared pool")
    sp.add_argument("--svc-slots", type=int, default=None, metavar="N",
                    help="service hosts (one per running v2 job)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--limit", type=float, default=None, metavar="S",
                    help="total simulated-seconds budget")
    sp.add_argument("--json-out", default=None, metavar="PATH",
                    help="write the per-job and per-tenant summary as JSON")
    sp.set_defaults(fn=_cmd_serve)

    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except OSError as exc:
        print(f"repro: cannot write output: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
