"""The paper's contribution: the MPICH-V2 pessimistic sender-based
message-logging protocol — clocks, sender log, event logger, the
daemon/device pair, and the replay engine."""

from .ckpt_client import CheckpointClient
from .clocks import ClockState, EventRecord
from .el_client import EventLogClient
from .event_logger import EventLoggerServer
from .peers import PeerLink, PeerManager
from .replay import CheckpointImage, DeliveryRecord, ReplayState
from .sender_log import LogOverflow, SavedMessage, SenderLog
from .v2_device import V2Daemon, V2Device

__all__ = [
    "CheckpointClient",
    "ClockState",
    "EventRecord",
    "EventLogClient",
    "EventLoggerServer",
    "CheckpointImage",
    "DeliveryRecord",
    "ReplayState",
    "LogOverflow",
    "SavedMessage",
    "SenderLog",
    "PeerLink",
    "PeerManager",
    "V2Daemon",
    "V2Device",
]
