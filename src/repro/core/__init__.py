"""The paper's contribution: the MPICH-V2 pessimistic sender-based
message-logging protocol — clocks, sender log, event logger, the
daemon/device pair, and the replay engine."""

from .clocks import ClockState, EventRecord
from .event_logger import EventLoggerServer
from .replay import CheckpointImage, DeliveryRecord, ReplayState
from .sender_log import LogOverflow, SavedMessage, SenderLog
from .v2_device import PeerLink, V2Daemon, V2Device

__all__ = [
    "ClockState",
    "EventRecord",
    "EventLoggerServer",
    "CheckpointImage",
    "DeliveryRecord",
    "ReplayState",
    "LogOverflow",
    "SavedMessage",
    "SenderLog",
    "PeerLink",
    "V2Daemon",
    "V2Device",
]
