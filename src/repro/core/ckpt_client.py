"""The daemon's checkpoint client: capture, dirty regions, store push.

One :class:`CheckpointClient` per daemon incarnation owns the
checkpoint side of the node: the ordered-checkpoint request flag, the
deterministic dirty-region model (which makes incremental images
reconverge across replay), image capture at API-boundary safe points,
the background quorum push to the replicated store, and the completion
fan-out it authorizes — GC orders to peers (thresholds from the
*image's* HR vector), a best-effort EL prune, and the scheduler's
CKPT_DONE / CKPT_FAIL accounting.

Composes with the daemon core through the same explicit interface as
:class:`~repro.core.peers.PeerManager`: ``core`` provides ``rank``,
``clock``, ``saved``, ``delivery_log``, ``op_index``,
``app_footprint``, ``mutations``, ``peers`` (GC fan-out), ``el``
(prune), ``ctrl.sched_end`` (completion reports), and ``_spawn``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..simnet.kernel import Simulator
from ..simnet.node import Host
from ..simnet.streams import Disconnected
from ..simnet.trace import Tracer
from ..store.chunks import chunk_image, stable_digest
from ..store.client import StoreClient
from .replay import CheckpointImage

__all__ = ["CheckpointClient"]


class CheckpointClient:
    """One rank's checkpoint machinery (capture, push, completion)."""

    def __init__(
        self,
        core,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        host: Host,
        cs_names: tuple[str, ...],
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
        key: Optional[Any] = None,
    ) -> None:
        self.core = core
        self.sim = sim
        self.cfg = cfg
        #: the identity this rank's images carry on the (possibly shared)
        #: store.  Captured images stamp it into ``CheckpointImage.rank``
        #: — the mem/hdr chunk digests derive from it, so two jobs with
        #: identical footprints cannot collide on restore-critical chunks
        self.key = core.rank if key is None else key
        self.requested = False
        self.seq = 0
        self.done = 0
        self.aborts = 0
        # deterministic dirty-region model: one write-version counter per
        # ckpt_chunk_bytes region of the application footprint.  Each
        # API operation past the fast-forward boundary dirties the region
        # picked by its op phase — a pure function of op_index, so a
        # replayed execution reconverges to the same versions and
        # successive checkpoints share every untouched region's chunks
        self.region_versions: list[int] = []
        # (phase, nregions) -> region index memo: touch_region runs per
        # API call but its digest only changes once per ckpt_dirty_ops
        self._dirty_phase = -1
        self._dirty_nreg = 0
        self._dirty_idx = 0
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = metrics if metrics is not None else Metrics()
        rank = core.rank
        self._m_bytes = m.counter("ckpt.bytes", rank=rank)
        self._m_images = m.counter("ckpt.images", rank=rank)
        self._m_push = m.histogram("ckpt.push_s", rank=rank)
        self._m_aborted = m.counter("ckpt.aborted", rank=rank)
        # the replicated checkpoint store (quorum push, failover fetch)
        self.store: Optional[StoreClient] = None
        if cs_names:
            self.store = StoreClient(
                sim, cfg, fabric, host, cs_names, rank,
                tracer=self.tracer, metrics=m, rng=rng, on_retry=on_retry,
                key=self.key,
            )

    # ------------------------------------------------------------------
    # ordering / dirty regions / capture
    # ------------------------------------------------------------------
    def order(self) -> None:
        """Request a checkpoint at the next API-boundary safe point."""
        self.requested = True

    def resize_regions(self, app_footprint: int) -> None:
        """Fit the dirty-region vector to the application footprint."""
        n = -(-app_footprint // max(1, self.cfg.ckpt_chunk_bytes))
        if len(self.region_versions) < n:
            self.region_versions.extend([0] * (n - len(self.region_versions)))
        elif len(self.region_versions) > n:
            del self.region_versions[n:]

    def touch_region(self, op_index: int) -> None:
        """Dirty the memory region this operation phase writes.

        Which region an op dirties depends only on ``op_index`` (hashed
        per phase of ``ckpt_dirty_ops`` operations), never on wall time
        or arrival order, so a replayed execution dirties exactly the
        regions the original did and reconverges to the same versions.
        """
        regions = self.region_versions
        if not regions:
            return
        phase = op_index // max(1, self.cfg.ckpt_dirty_ops)
        n = len(regions)
        if phase != self._dirty_phase or n != self._dirty_nreg:
            self._dirty_phase = phase
            self._dirty_nreg = n
            self._dirty_idx = stable_digest("dirty", phase) % n
        regions[self._dirty_idx] += 1

    def restore(self, image: CheckpointImage) -> None:
        """Re-seed the checkpoint state from a restored image."""
        self.seq = image.seq
        self.region_versions = list(image.regions)
        self.resize_regions(image.app_footprint)

    def capture(self) -> CheckpointImage:
        """Snapshot the node's logical state as a checkpoint image."""
        core = self.core
        self.seq += 1
        return CheckpointImage(
            rank=self.key,
            seq=self.seq,
            op_count=core.op_index,
            clock=core.clock.snapshot(),
            saved=core.saved.snapshot(),
            delivery_log=list(core.delivery_log),
            app_footprint=core.app_footprint,
            regions=tuple(self.region_versions),
        )

    # ------------------------------------------------------------------
    # the push and its completion fan-out
    # ------------------------------------------------------------------
    def start_push(self, image: CheckpointImage) -> None:
        """Stream the image to the checkpoint store in the background."""
        self.core._spawn(self._push(image), f"ckpt{image.seq}")

    def _push(self, image: CheckpointImage):
        core = self.core
        t0 = self.sim.now
        # decompose into content-addressed chunks and push to the replica
        # set; durable once the write quorum committed.  A briefly-down
        # replica (supervisor restart, partition) comes back within the
        # client's retry budget; losing the quorum entirely degrades to a
        # scheduler-retried abort exactly as a lost single server did
        manifest, chunks = chunk_image(image, self.cfg.ckpt_chunk_bytes)
        ok = yield from self.store.push(
            manifest, chunks, self.cfg.ckpt_incremental
        )
        if not ok:
            yield from self._failed(image, self.store.last_push_why)
            return
        total = image.image_bytes
        self.done += 1
        self._m_images.inc()
        self._m_bytes.inc(total)
        self._m_push.observe(self.sim.now - t0)
        # the completion record (with the image's HR vector) must precede
        # the GC orders it authorizes, so an online observer always sees
        # the checkpoint's coverage before any sender acts on it
        self.tracer.emit(
            self.sim.now,
            "v2.ckpt",
            rank=core.rank,
            seq=image.seq,
            clock=image.clock.h,
            nbytes=total,
            hr=dict(image.clock.hr),
        )
        # garbage collection: peers drop copies we will never ask for again.
        # Thresholds come from the *image's* HR vector — the live clock has
        # already advanced past deliveries the image does not cover.
        for q in core.peers.links:
            thr = image.clock.hr.get(q, 0)
            if "premature_gc" in core.mutations:
                thr += 5  # test-only: GC past the checkpoint's coverage
            core.peers.enqueue_ctrl(q, ("GC", thr))
        yield from core.el.prune(image.clock.recv_seq)
        sched_end = core.ctrl.sched_end
        if sched_end is not None:
            try:
                yield from sched_end.write(
                    16, ("CKPT_DONE", core.rank, image.clock.h, image.seq)
                )
            except Disconnected:
                pass

    def _failed(self, image: CheckpointImage, why: str):
        """Account an aborted push and ask the scheduler to retry it."""
        core = self.core
        self.aborts += 1
        self._m_aborted.inc()
        self.tracer.emit(
            self.sim.now, "v2.ckpt_abort", rank=core.rank, seq=image.seq,
            why=why,
        )
        sched_end = core.ctrl.sched_end
        if sched_end is not None:
            try:
                yield from sched_end.write(16, ("CKPT_FAIL", core.rank))
            except Disconnected:
                pass
        else:
            yield self.sim.pause(0.0)
