"""Logical clocks and reception-event records (the heart of the protocol).

Per the paper (Section 4.1): "Each time a process sends a message, or
receives one, it increases a local logical clock. Every message m sent
from q to p has a unique identifier" — the couple (sender, sender clock).
The dependency information logged per reception is the four-field record
"(sender's identity; sender's logical clock at emission; receiver's
logical clock at delivery; number of probes since last delivery)".

Implementation note: the paper describes a single clock ticked by both
sends and receives.  A faithful single counter makes the identifier of a
re-executed *send* depend on exactly where early-arriving receptions
interleave with it — a race the pull-based MPICH channel hides but an
asynchronous progress engine exposes.  We therefore keep two independent
sequences: ``send_seq`` identifies messages (program-deterministic given
the replayed delivery order) and ``recv_seq`` orders reception events
(forced by the event log during replay).  Their sum plays the role of
the paper's clock wherever only a monotonic scalar is needed.

The clock state also carries the two vectors of Appendix A:
``HR[q]`` — send-seq of the last message delivered from q, and
``HS[q]`` — suppression threshold for sends to q during re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EventRecord", "ClockState", "VectorClock"]


class VectorClock:
    """A classic Fidge/Mattern vector clock over integer rank ids.

    The protocol itself needs only the paper's scalar clock (below); the
    vector form is the observability instrument: the online auditor
    stamps every audited protocol event with one, so a reported
    violation carries its full causal context and the happens-before
    relation between any two events is decidable after the fact.
    """

    __slots__ = ("clocks",)

    def __init__(self, clocks: dict[int, int] | None = None) -> None:
        self.clocks: dict[int, int] = dict(clocks) if clocks else {}

    def tick(self, rank: int) -> "VectorClock":
        """Advance ``rank``'s own component (a local event); returns self."""
        self.clocks[rank] = self.clocks.get(rank, 0) + 1
        return self

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise max with ``other`` (a reception); returns self."""
        for r, c in other.clocks.items():
            if c > self.clocks.get(r, 0):
                self.clocks[r] = c
        return self

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def happened_before(self, other: "VectorClock") -> bool:
        """Strict causal precedence: self < other in every component."""
        if not any(c > 0 for c in self.clocks.values()):
            return any(c > 0 for c in other.clocks.values())
        le = all(c <= other.clocks.get(r, 0) for r, c in self.clocks.items())
        return le and self.clocks != other.clocks

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither event causally precedes the other."""
        return not self.happened_before(other) and not other.happened_before(self)

    def as_dict(self) -> dict[int, int]:
        """A plain-dict snapshot (sorted by rank, for stable reports)."""
        return {r: self.clocks[r] for r in sorted(self.clocks)}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {r: c for r, c in self.clocks.items() if c}
        theirs = {r: c for r, c in other.clocks.items() if c}
        return mine == theirs

    def __repr__(self) -> str:
        inner = ",".join(f"{r}:{c}" for r, c in sorted(self.clocks.items()))
        return f"VC({inner})"


@dataclass(frozen=True, order=True, slots=True)
class EventRecord:
    """One logged reception event (sorted by receiver sequence).

    ``slots=True`` matters: event loggers hold one of these per
    acknowledged delivery until a checkpoint lets them garbage-collect,
    and a class-B 64-rank run stores ~16M of them — the per-instance
    ``__dict__`` alone would roughly double logger memory.
    """

    rclock: int  # receiver's delivery sequence number
    src: int  # sender's identity
    sclock: int  # sender's send sequence at emission (the message id)
    probes: int  # unsuccessful probes since the previous delivery

    def wire_bytes(self, per_event: int) -> int:
        """Bytes this record occupies on the wire."""
        return per_event


@dataclass
class ClockState:
    """Logical-clock state of one computing node."""

    send_seq: int = 0  # messages emitted so far
    recv_seq: int = 0  # messages delivered so far
    hr: dict[int, int] = field(default_factory=dict)  # HR_p[q]
    hs: dict[int, int] = field(default_factory=dict)  # HS_p[q]

    @property
    def h(self) -> int:
        """The paper's scalar logical clock (sends + receives)."""
        return self.send_seq + self.recv_seq

    def tick_send(self) -> int:
        """Advance for an emission; returns the message's sclock."""
        self.send_seq += 1
        return self.send_seq

    def tick_recv(self, src: int, sclock: int) -> int:
        """Advance for a delivery; returns the event's rclock."""
        self.recv_seq += 1
        self.hr[src] = max(self.hr.get(src, 0), sclock)
        return self.recv_seq

    def suppressed(self, dst: int, sclock: int) -> bool:
        """Should a (re-executed) send to ``dst`` skip transmission?

        True when the destination is known to have already received every
        message up to ``HS[dst]`` (set by the RESTART handshake).
        """
        return sclock <= self.hs.get(dst, 0)

    def snapshot(self) -> "ClockState":
        """An independent copy (for checkpoint images)."""
        return ClockState(
            send_seq=self.send_seq,
            recv_seq=self.recv_seq,
            hr=dict(self.hr),
            hs=dict(self.hs),
        )
