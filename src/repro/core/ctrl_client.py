"""The daemon's control-plane client: dispatcher and scheduler links.

Both links are best-effort under partitions — a daemon that cannot
reach the dispatcher still computes, it just cannot report
UNRECOVERABLE states; a daemon that cannot reach the checkpoint
scheduler still answers peers, it just takes no ordered checkpoints
until the link heals.  Each is a
:class:`~repro.runtime.session.Session` under the shared retry policy.

Composes with the daemon core through the usual explicit interface:
``core`` provides ``rank``, ``saved``, ``device``, ``finalized``,
``ckpt.order()`` (checkpoint orders), and ``_spawn``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import Session
from ..simnet.kernel import Future, Simulator
from ..simnet.node import Host
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer

__all__ = ["ControlPlaneClient"]


class ControlPlaneClient:
    """One rank's links to the dispatcher and the checkpoint scheduler."""

    def __init__(
        self,
        core,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        host: Host,
        dispatcher_name: Optional[str],
        sched_name: Optional[str],
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.core = core
        self.sim = sim
        policy = RetryPolicy.from_config(cfg, max_tries=cfg.peer_retry_tries)
        hello = ("HELLO", core.rank, core.incarnation)
        common = dict(
            hello=hello, policy=policy, rng=rng, on_retry=on_retry,
            tracer=tracer, metrics=metrics, labels={"rank": core.rank},
        )
        self.disp: Optional[Session] = None
        if dispatcher_name is not None:
            self.disp = Session(
                sim, fabric, host, dispatcher_name, scope="disp", **common
            )
        self.sched: Optional[Session] = None
        if sched_name is not None:
            self.sched = Session(
                sim, fabric, host, sched_name, scope="sched", **common
            )

    @property
    def disp_end(self) -> Optional[StreamEnd]:
        return self.disp.end if self.disp is not None else None

    @property
    def sched_end(self) -> Optional[StreamEnd]:
        return self.sched.end if self.sched is not None else None

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def connect_dispatcher(self) -> Generator[Future, Any, None]:
        """Dial the dispatcher with backoff (best-effort: may give up)."""
        if self.disp is not None:
            yield from self.disp.connect()

    def connect_scheduler(self) -> None:
        """Single scheduler dial; a refused scheduler is simply absent."""
        if self.sched is not None:
            try:
                self.sched.connect_now()
            except ConnectionRefused:
                pass

    def start_sched_loop(self) -> None:
        if self.sched_end is not None:
            self.core._spawn(self._sched_loop(), "sched")

    def start_heartbeat(self, interval: float, timeout: float) -> None:
        """Start PINGing the dispatcher and draining its PONGs.

        The dispatcher link carries no other inbound traffic toward the
        daemon, so a dedicated reader just absorbs PONGs (inside
        :meth:`Session.read_record`) and exits when the link breaks."""
        if self.disp is None or self.disp.end is None or interval <= 0:
            return
        self.core._spawn(self._disp_reader(), "disp.rx")
        self.core._spawn(
            self.disp.heartbeat(interval, timeout if timeout > 0 else None),
            "disp.hb",
        )

    def _disp_reader(self):
        sess = self.disp
        while True:
            end = sess.end
            if end is None:
                return
            try:
                yield from sess.read_record(end)
            except Disconnected:
                # best-effort link: no reconnect storm from the reader;
                # the heartbeat loop keeps skipping while it is down
                sess.drop(end)
                return

    # ------------------------------------------------------------------
    # dispatcher reports
    # ------------------------------------------------------------------
    def report_unrecoverable(self, q: int):
        if self.disp_end is not None:
            try:
                yield from self.disp_end.write(16, ("UNRECOVERABLE", q))
            except Disconnected:  # pragma: no cover
                pass

    def report_finalized(self) -> Generator[Future, Any, None]:
        """Tell the dispatcher this rank's MPI process completed."""
        if self.disp_end is not None:
            try:
                yield from self.disp_end.write(16, ("FINALIZED", self.core.rank))
            except Disconnected:
                pass
        else:
            yield self.sim.pause(0.0)

    # ------------------------------------------------------------------
    # scheduler protocol
    # ------------------------------------------------------------------
    def _sched_loop(self):
        core = self.core
        sess = self.sched
        while True:
            end = sess.end
            if end is None:
                return
            try:
                msg = yield from sess.read_record(end)
            except Disconnected:
                # a flapped control link: reconnect so checkpoint orders
                # keep flowing (the scheduler re-registers us on accept)
                sess.drop(end)
                yield from sess.connect()
                continue
            if msg[0] == "STATUS_REQ":
                status = (
                    "STATUS",
                    core.rank,
                    {
                        "logged_bytes": core.saved.bytes_total,
                        "logged_msgs": len(core.saved),
                        "bytes_sent": core.device.stats.bytes_sent
                        if core.device
                        else 0,
                        "bytes_received": core.device.stats.bytes_received
                        if core.device
                        else 0,
                        "finalized": core.finalized,
                    },
                )
                try:
                    yield from end.write(32, status)
                except Disconnected:
                    continue  # the next read notices and reconnects
            elif msg[0] == "CKPT_ORDER":
                core.ckpt.order()
