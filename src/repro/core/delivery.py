"""The daemon's delivery pipeline: peer packets down to the MPI process.

One :class:`DeliveryPipeline` per daemon incarnation owns the receive
side of the node: phase-C duplicate discard against the per-sender
``forwarded_hw`` watermark, the forced-order holdback during replay,
and the UNIX-socket forwarding queue that models the daemon-to-process
handoff.  It also accounts the incarnation's catch-up point (the
``v2.caught_up`` trace and the ``ft.replay_s`` histogram).

Composes with the daemon core through the usual explicit interface:
``core`` provides ``rank``, ``incarnation``, ``cfg``, ``sim``,
``replay``, ``op_index``, ``mutations``, ``device`` (or None),
``peers`` (the RTSDUP answer), and ``cpu_tax_owed``.
"""

from __future__ import annotations

from typing import Optional

from ..mpi.datatypes import Envelope
from ..mpi.protocol import Packet, PacketKind
from ..obs.registry import Metrics
from ..simnet.kernel import Queue, Simulator
from ..simnet.trace import Tracer

__all__ = ["DeliveryPipeline"]

_PAYLOAD_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.DATA)
_FIRST_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.RTS)


class DeliveryPipeline:
    """One rank's receive path: discard, holdback, forward, catch up."""

    def __init__(
        self,
        core,
        sim: Simulator,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.core = core
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        # highest sclock passed up to the MPI process, per sender: the
        # duplicate-discard watermark of replay phase C
        self.forwarded_hw: dict[int, int] = {}
        self.dups_dropped = 0
        # daemon -> MPI process forwarding (the UNIX socket, ordered)
        self.fwd_q: Queue = Queue(sim, name=f"d{core.rank}.fwd")
        self.start_t = 0.0
        self._caught_up = False
        m = metrics if metrics is not None else Metrics()
        self._m_replay_s = m.histogram("ft.replay_s", rank=core.rank)

    def enqueue_replay(self, dst: int, env: Envelope) -> None:
        """Old saved messages are re-sent with the payload inline."""
        kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
        self.core.peers.enqueue_app(
            dst, Packet(kind, env, payload_bytes=env.nbytes)
        )

    def handle_app_packet(self, src: int, pkt: Packet) -> None:
        core = self.core
        env = pkt.env
        if pkt.kind in _FIRST_KINDS:
            # duplicate discard (phase C): the RESTART handshake may re-send
            # messages we already passed up to the MPI process
            if env.sclock <= self.forwarded_hw.get(src, 0):
                self.dups_dropped += 1
                if pkt.kind is PacketKind.RTS:
                    # a discarded rendezvous request still needs an answer,
                    # or the (restarted) sender waits forever for a CTS:
                    # tell it we already have the message
                    core.peers.enqueue_ctrl(src, ("RTSDUP", env.sclock))
                return
        if (
            core.replay is not None
            and core.replay.replaying()
            and pkt.kind in _FIRST_KINDS
        ):
            # the forced-order holdback applies to the packets that *start*
            # a delivery; CTS and rendezvous DATA complete an exchange the
            # event order already admitted and must pass through, or the
            # handshake deadlocks behind its own consumed event
            if "reorder_replay" in core.mutations:
                self._release(pkt)  # test-only: arrival order, not logged order
                return
            for released in core.replay.offer_packet(pkt):
                self._release(released)
            self.maybe_caught_up()
            return
        self._release(pkt)

    def _release(self, pkt: Packet) -> None:
        # the duplicate-discard watermark advances only when the *payload*
        # goes up: an RTS must not bump it, or a sender that crashes
        # between its RTS and its DATA would have the re-executed RTS
        # swallowed as a duplicate and the message would be lost
        if pkt.kind in _PAYLOAD_KINDS:
            src = pkt.env.src
            self.forwarded_hw[src] = max(
                self.forwarded_hw.get(src, 0), pkt.env.sclock
            )
        self._forward(
            pkt.env.src if pkt.kind is not PacketKind.CTS else pkt.env.dst, pkt
        )

    def _forward(self, src: int, pkt: Packet) -> None:
        """Ship a packet across the UNIX socket to the MPI process."""
        self.fwd_q.put((src, pkt))
        self.core.cpu_tax_owed += self.core.cfg.daemon_cpu_per_msg

    def forward_loop(self):
        core = self.core
        cfg = core.cfg
        device = core.device
        while True:
            src, pkt = yield self.fwd_q.get()
            delay = cfg.unix_socket_latency + (
                (pkt.payload_bytes + cfg.packet_header_bytes)
                / cfg.unix_socket_bw
            )
            yield self.sim.pause(delay)
            device.inbox.put((src, pkt))
            device.stats.bytes_received += pkt.payload_bytes
            device.stats.msgs_received += 1

    def maybe_caught_up(self) -> None:
        """Emit ``v2.caught_up`` once this incarnation's replay drains."""
        core = self.core
        if self._caught_up or core.replay is None:
            return
        if core.replay.active(core.op_index):
            return
        self._caught_up = True
        replay_s = self.sim.now - self.start_t
        self._m_replay_s.observe(replay_s)
        self.tracer.emit(
            self.sim.now,
            "v2.caught_up",
            rank=core.rank,
            incarnation=core.incarnation,
            replay_s=replay_s,
        )
