"""The daemon's event-logger client: the WAITLOGGED gate and re-push.

One :class:`EventLogClient` per daemon incarnation owns everything the
pessimistic protocol needs from the event logger side of the node:

* the **WAITLOGGED gate** — closed the instant a reception event is
  queued, reopened only when every outstanding event is acknowledged;
  :meth:`EventLogClient.wait_sendable` is where the transmit loops park
  (and where the stall is measured — V2's small-message latency);
* the **writer/reader pair** — events batched up to ``el_batch_cap``
  per stream write, acknowledgements counted down on the read side;
* **outage survival** — batches written but not yet acknowledged sit in
  ``unacked`` and are re-pushed, in order, after a reconnect (the server
  dedups by ``(rank, rclock)``, so the at-least-once re-push is
  idempotent); the gate stays closed throughout, so no application
  message escapes while its reception event is in doubt — the
  pessimistic property holds across the outage by construction.

The link itself is a :class:`~repro.runtime.session.Session` (framing,
epochs, integrated backoff); this module adds only the protocol above.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import Session
from ..simnet.kernel import Future, Gate, Queue, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .clocks import EventRecord

__all__ = ["EventLogClient"]


class EventLogClient:
    """One rank's connection to the event logger (phase-A downloads,
    event pushes, acknowledgement-gated sending)."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        host: Host,
        rank: int,
        el_name: str,
        *,
        spawn: Callable[[Any, str], Any],
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.rank = rank
        self.el_name = el_name
        self._spawn = spawn
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.session = Session(
            sim, fabric, host, el_name,
            policy=RetryPolicy.from_config(cfg), rng=rng, on_retry=on_retry,
            tracer=self.tracer, metrics=metrics, scope="el",
            labels={"rank": rank},
        )

        # the pessimistic gate: closed while any reception event is
        # unacknowledged; no application message leaves the node then
        self.gate = Gate(sim, opened=True, name=f"d{rank}.elgate")
        self.outstanding = 0
        self._q: Queue = Queue(sim, name=f"d{rank}.elq")
        # EL outage state: batches written but not yet acknowledged (re-pushed
        # idempotently after a reconnect; the server dedups by rclock), and
        # the connection-up gate the writer parks on during an outage
        self.unacked: deque[list[EventRecord]] = deque()
        self._up = Gate(sim, opened=False, name=f"d{rank}.elup")
        self._down_since: Optional[float] = None
        # (send time, batch size) of EL batches awaiting acknowledgement
        self._inflight: deque[tuple[float, int]] = deque()
        self.events_pushed = 0

        m = metrics if metrics is not None else Metrics()
        self._m_roundtrips = m.counter("el.roundtrips", rank=rank)
        self._m_rtt = m.histogram("el.rtt_s", rank=rank)
        self._m_gate_stalls = m.counter("gate.stalls", rank=rank)
        self._m_gate_stall_s = m.counter("gate.stall_s", rank=rank)
        self._m_outage_reconnects = m.counter("outage.reconnects", rank=rank)
        self._m_outage_el_down_s = m.counter("outage.el_down_s", rank=rank)
        self._m_outage_stalled = m.counter("outage.stalled_send_s", rank=rank)

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> Generator[Future, Any, StreamEnd]:
        """Connect to the event logger, retrying with capped backoff.

        Exhausting the budget means the EL never came back within ~2
        minutes of simulated backoff: that violates the deployment
        contract (the supervisor restarts crashed services), so fail the
        simulation loudly rather than deadlock silently.
        """
        end = yield from self.session.connect()
        if end is None:
            raise RuntimeError(
                f"rank {self.rank}: event logger {self.el_name} unreachable "
                f"after {self.session.policy.max_tries} attempts"
            )
        return end

    def online(self) -> None:
        """Declare the freshly-connected link usable by the writer."""
        self._up.open()

    def start_io(self) -> None:
        """Spawn the steady-state writer and reader loops."""
        self._spawn(self._writer(), "el.tx")
        self._spawn(self._reader(self.session.end), "el.rx")

    def down(self, end: Optional[StreamEnd]) -> None:
        """Mark the EL connection lost and start the reconnect process."""
        if end is None or not self.session.drop(end):
            return  # a stale loop noticed an already-replaced stream
        self._up.close()
        self._down_since = self.sim.now
        self.tracer.emit(
            self.sim.now, "v2.el_down", rank=self.rank,
            outstanding=self.outstanding, unacked=len(self.unacked),
        )
        self._spawn(self._reconnect(), "el.re")

    def _reconnect(self):
        """Re-establish the EL link and re-push written-but-unacked batches.

        The WAITLOGGED gate stays closed throughout (``outstanding``
        still counts the lost acknowledgements), so no application
        message escapes while its reception event is in doubt — the
        pessimistic property holds across the outage by construction.
        The server dedups re-pushed events by ``(rank, rclock)``, so the
        at-least-once re-push is idempotent; it still acknowledges every
        batch, which is what re-earns the lost acks.
        """
        down_since = self._down_since
        end = yield from self.connect()
        # acks of the old stream died with it: every unacked batch is
        # re-pushed, in order, ahead of anything the writer sends next
        repush = list(self.unacked)
        self._inflight.clear()
        self._spawn(self._reader(end), "el.rx")
        for batch in repush:
            t0 = self.sim.now
            try:
                yield from end.write(
                    self.cfg.event_bytes * len(batch), ("EVENT", self.rank, batch)
                )
            except (Disconnected, HostDown):
                self.down(end)  # crashed again: the next round re-pushes
                return
            self._inflight.append((t0, len(batch)))
        outage_s = self.sim.now - down_since if down_since is not None else 0.0
        self._m_outage_reconnects.inc()
        self._m_outage_el_down_s.inc(outage_s)
        self._down_since = None
        self.tracer.emit(
            self.sim.now, "v2.el_reconnect", rank=self.rank,
            outage_s=outage_s, repushed=len(repush),
        )
        self._up.open()

    # ------------------------------------------------------------------
    # the pessimistic protocol
    # ------------------------------------------------------------------
    def log_event(self, rec: EventRecord) -> None:
        """Queue a reception event for the event logger; closes the gate."""
        self.outstanding += 1
        self.gate.close()
        self._q.put(rec)
        self.tracer.emit(
            self.sim.now,
            "v2.log_event",
            rank=self.rank,
            rclock=rec.rclock,
            src=rec.src,
            sclock=rec.sclock,
        )

    def wait_sendable(self) -> Generator[Future, Any, None]:
        """Park until every logged event is acknowledged (WAITLOGGED)."""
        if self.gate.is_open:
            yield self.gate.waitfor()  # gate open: free
        else:
            # the pessimistic gate — measure the stall
            self._m_gate_stalls.inc()
            t0 = self.sim.now
            down0 = self._down_since
            yield self.gate.waitfor()
            self._m_gate_stall_s.inc(self.sim.now - t0)
            if down0 is not None or self._down_since is not None:
                # the stall overlapped an EL outage: the gate held
                # because acknowledgements could not arrive at all
                self._m_outage_stalled.inc(self.sim.now - t0)

    def _writer(self):
        while True:
            first = yield self._q.get()
            batch = [first]
            while len(batch) < self.cfg.el_batch_cap:
                ok, more = self._q.try_get()
                if not ok:
                    break
                batch.append(more)
            # exactly-once hand-off per stream generation: a batch joins
            # ``unacked`` only once written, so the reconnector (which
            # re-pushes ``unacked``) and this writer never both send it
            while True:
                if not self._up.is_open:
                    yield self._up.waitfor()
                end = self.session.end
                if end is None:
                    continue  # raced with another disconnect; wait again
                t0 = self.sim.now
                try:
                    yield from end.write(
                        self.cfg.event_bytes * len(batch),
                        ("EVENT", self.rank, batch),
                    )
                except (Disconnected, HostDown):
                    self.down(end)
                    continue  # batch not in ``unacked``: resend it here
                self.unacked.append(batch)
                self._inflight.append((t0, len(batch)))
                self.events_pushed += len(batch)
                break

    def _reader(self, end: StreamEnd):
        while True:
            try:
                msg = yield from self.session.read_record(end)
            except Disconnected:
                self.down(end)
                return
            kind, n = msg
            if kind == "ACK":
                if self.unacked:
                    self.unacked.popleft()
                self.outstanding = max(0, self.outstanding - n)
                self.tracer.emit(
                    self.sim.now, "v2.el_ack", rank=self.rank, n=n,
                    outstanding=self.outstanding,
                )
                if self._inflight:
                    t0, _batch = self._inflight.popleft()
                    self._m_roundtrips.inc()
                    self._m_rtt.observe(self.sim.now - t0)
                if self.outstanding == 0 and len(self._q) == 0:
                    self.gate.open()

    # ------------------------------------------------------------------
    # recovery downloads / pruning
    # ------------------------------------------------------------------
    def download(
        self, from_rclock: int
    ) -> Generator[Future, Any, list[EventRecord]]:
        """Phase-A event download (inline replies; no reader running)."""
        t_start = self.sim.now
        retries = 0
        while True:
            end = self.session.end
            try:
                yield from end.write(
                    16, ("DOWNLOAD", self.rank, from_rclock)
                )
                reply = yield from self.session.read_record(end)
            except Disconnected:
                # the EL crashed mid-download: reconnect (its event store
                # is durable across service restarts) and re-ask
                retries += 1
                yield from self.connect()
                continue
            kind, records = reply
            self.tracer.emit(
                self.sim.now, "v2.el_download", rank=self.rank,
                n=len(records), wait_s=self.sim.now - t_start,
                retries=retries, from_rclock=from_rclock,
            )
            return list(records)

    def prune(self, recv_seq: int) -> Generator[Future, Any, None]:
        """Ask the EL to drop events a checkpoint now covers (best-effort)."""
        end = self.session.end
        if end is None:
            return
        try:
            yield from end.write(16, ("PRUNE", self.rank, recv_seq))
        except Disconnected:
            # PRUNE is a best-effort space optimization: un-pruned
            # events only cost the (restarted) EL memory
            self.down(end)
