"""The daemon's event-logger client: quorum fan-out and the WAITLOGGED gate.

One :class:`EventLogClient` per daemon incarnation owns everything the
pessimistic protocol needs from the event logger side of the node:

* the **WAITLOGGED gate** — closed the instant a reception event is
  queued, reopened only when every outstanding event has a *quorum* of
  replica acknowledgements; :meth:`EventLogClient.wait_sendable` is
  where the transmit loops park (and where the stall is measured —
  V2's small-message latency);
* the **fan-out** — events batched up to ``el_batch_cap``, each batch
  pushed to every replica of the rank's EL shard; per-replica readers
  count acknowledgements into the shared quorum ledger, and a batch
  completes (``v2.el_ack``) once ``cfg.el_quorum`` distinct replicas
  acknowledged it — in batch order, because each replica acks in order
  and the q-th order statistic of monotone sequences is monotone;
* **failover survival** — batches written to a replica but not yet
  acknowledged by it sit in that replica's ``unacked`` ledger and are
  re-pushed, in order, after its reconnect (the server dedups by
  ``(rank, rclock)``, so the at-least-once re-push is idempotent); a
  single replica crash is a *failover* (``el.failovers``): the gate
  keeps clearing on the surviving quorum and no global stall occurs.
  Only when live replicas drop below quorum does the client enter the
  outage regime the single-EL deployment knows: the gate holds until a
  quorum is re-established, so no application message escapes while
  its reception event is in doubt — the pessimistic property holds by
  construction.

Each replica link is a :class:`~repro.runtime.session.Session`
(framing, epochs, integrated backoff); this module adds only the
protocol above.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional, Sequence, Union

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import Session
from ..simnet.kernel import Future, Gate, Queue, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .clocks import EventRecord

__all__ = ["EventLogClient"]


class _ReplicaLink:
    """Client-side state for one replica of the rank's EL shard."""

    def __init__(
        self, sim: Simulator, idx: int, name: str, session: Session, rank: int
    ) -> None:
        self.idx = idx
        self.name = name
        self.session = session
        # closed while this replica's link is down; its writer parks here
        self.up = Gate(sim, opened=False, name=f"d{rank}.el{idx}.up")
        # batches handed to this replica by the batcher, in batch order
        self.sendq: Queue = Queue(sim, name=f"d{rank}.el{idx}.q")
        # (batch id, batch) written on this link but not yet acked *by
        # this replica* — re-pushed after its reconnect
        self.unacked: deque[tuple[int, list[EventRecord]]] = deque()
        # write times of batches awaiting this replica's ack (RTT)
        self.inflight: deque[float] = deque()
        self.reconnecting = False


class EventLogClient:
    """One rank's fan-out to its event-logger shard (phase-A downloads,
    quorum-acked event pushes, acknowledgement-gated sending)."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        host: Host,
        rank: int,
        el_names: Union[str, Sequence[str]],
        *,
        spawn: Callable[[Any, str], Any],
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
        mutations: frozenset = frozenset(),
        key: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.rank = rank
        #: the identity this client stores events under on the (possibly
        #: shared) EL servers.  Single-job runs use the bare rank; under
        #: the control plane the job namespace supplies a job-qualified
        #: key so N jobs share one shard without cross-talk.  Traces and
        #: metrics keep the bare rank — they live in per-job registries.
        self.key = rank if key is None else key
        if isinstance(el_names, str):
            el_names = [el_names]
        self.el_names = list(el_names)
        self.el_name = self.el_names[0]  # the shard's primary name
        self.nreps = len(self.el_names)
        #: replica acks required before a batch clears the gate
        self.quorum = min(self.nreps, cfg.el_quorum)
        self._spawn = spawn
        self.mutations = mutations
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._policy = RetryPolicy.from_config(cfg)
        self._rng = rng
        self._on_retry = on_retry
        self.replicas = [
            _ReplicaLink(
                sim, i, name,
                Session(
                    sim, fabric, host, name,
                    policy=self._policy, rng=rng, on_retry=on_retry,
                    tracer=self.tracer, metrics=metrics, scope="el",
                    labels={"rank": rank},
                ),
                rank,
            )
            for i, name in enumerate(self.el_names)
        ]

        # the pessimistic gate: closed while any reception event lacks a
        # quorum of acks; no application message leaves the node then
        self.gate = Gate(sim, opened=True, name=f"d{rank}.elgate")
        self.outstanding = 0
        self._q: Queue = Queue(sim, name=f"d{rank}.elq")
        # quorum ledger: batch id -> {n, t0, ids, acked (replica set),
        # done}; entries retire once every replica acked (or never, for
        # a replica that stays dead — bounded by the job's event count)
        self._pend: dict[int, dict] = {}
        self._order: deque[int] = deque()  # pending batch ids, in order
        self._next_bid = 0
        # quorum-outage state: set while live replicas < quorum (for the
        # single-replica deployment this is exactly "the EL is down")
        self._down_since: Optional[float] = None
        self.events_pushed = 0

        m = metrics if metrics is not None else Metrics()
        self._m_roundtrips = m.counter("el.roundtrips", rank=rank)
        self._m_rtt = m.histogram("el.rtt_s", rank=rank)
        self._m_quorum_wait = m.histogram("el.quorum_wait_s", rank=rank)
        self._m_failovers = m.counter("el.failovers", rank=rank)
        self._m_gate_stalls = m.counter("gate.stalls", rank=rank)
        self._m_gate_stall_s = m.counter("gate.stall_s", rank=rank)
        self._m_outage_reconnects = m.counter("outage.reconnects", rank=rank)
        self._m_outage_el_down_s = m.counter("outage.el_down_s", rank=rank)
        self._m_outage_stalled = m.counter("outage.stalled_send_s", rank=rank)

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def _live(self) -> int:
        """Replicas with a live stream right now."""
        return sum(1 for rep in self.replicas if rep.session.up())

    def _connect_until(self, need: int) -> Generator[Future, Any, None]:
        """Round-robin (re)connect down replicas until ``need`` are live.

        Exhausting the budget means the shard never recovered a quorum
        within ~2 minutes of simulated backoff: that violates the
        deployment contract (the supervisor restarts crashed replicas),
        so fail the simulation loudly rather than deadlock silently.
        """
        for rep in self.replicas:
            if rep.session.up():
                continue
            try:
                rep.session.connect_now()
            except ConnectionRefused:
                pass
        attempt = 0
        while self._live() < need:
            if attempt >= self._policy.max_tries:
                raise RuntimeError(
                    f"rank {self.rank}: event logger shard "
                    f"{'/'.join(self.el_names)} below quorum "
                    f"({self._live()}/{need} live) after "
                    f"{self._policy.max_tries} attempts"
                )
            d = self._policy.delay(attempt, self._rng)
            if self._on_retry is not None:
                self._on_retry(attempt, d)
            yield self.sim.pause(d)
            attempt += 1
            for rep in self.replicas:
                if rep.session.up():
                    continue
                try:
                    rep.session.connect_now()
                except ConnectionRefused:
                    pass

    def connect(self) -> Generator[Future, Any, None]:
        """Connect to the shard's replicas, retrying with capped backoff
        until at least a quorum of them is live (replicas still down
        are picked up by :meth:`start_io`'s background reconnectors)."""
        yield from self._connect_until(self.quorum)

    def online(self) -> None:
        """Declare the freshly-connected links usable by the writers."""
        for rep in self.replicas:
            if rep.session.up():
                rep.up.open()

    def start_io(self) -> None:
        """Spawn the steady-state batcher plus per-replica writer/reader
        loops; replicas that missed the initial connect get a background
        reconnector instead of a reader."""
        self._spawn(self._batcher(), "el.tx")
        for rep in self.replicas:
            self._spawn(self._rep_writer(rep), f"el.tx{rep.idx}")
            if rep.session.up():
                self._spawn(
                    self._rep_reader(rep, rep.session.end), f"el.rx{rep.idx}"
                )
            elif not rep.reconnecting:
                rep.reconnecting = True
                self._spawn(self._rep_reconnect(rep), f"el.re{rep.idx}")

    def _rep_down(self, rep: _ReplicaLink, end: Optional[StreamEnd]) -> None:
        """Mark one replica link lost; start its reconnect process."""
        if end is None or not rep.session.drop(end):
            return  # a stale loop noticed an already-replaced stream
        rep.up.close()
        if self.nreps > 1:
            # one replica down, quorum (usually) alive: a failover, not
            # an outage — the gate keeps clearing on the survivors
            self._m_failovers.inc()
            self.tracer.emit(
                self.sim.now, "v2.el_failover", rank=self.rank,
                replica=rep.name, unacked=len(rep.unacked),
            )
        if self._live() < self.quorum and self._down_since is None:
            self._down_since = self.sim.now
            self.tracer.emit(
                self.sim.now, "v2.el_down", rank=self.rank,
                outstanding=self.outstanding,
                unacked=sum(
                    1 for e in self._pend.values() if not e["done"]
                ),
            )
        if not rep.reconnecting:
            rep.reconnecting = True
            self._spawn(self._rep_reconnect(rep), f"el.re{rep.idx}")

    def _rep_reconnect(self, rep: _ReplicaLink):
        """Re-establish one replica link and re-push its unacked batches.

        The quorum ledger keeps counting the lost acknowledgements
        against ``outstanding``, so the WAITLOGGED gate cannot clear a
        batch early; the server dedups re-pushed events by
        ``(rank, rclock)``, so the at-least-once re-push is idempotent
        — it still acknowledges every batch, which is what re-earns the
        lost acks.
        """
        end = yield from rep.session.connect()
        if end is None:
            rep.reconnecting = False
            if self._live() < self.quorum:
                raise RuntimeError(
                    f"rank {self.rank}: event logger {rep.name} unreachable "
                    f"after {rep.session.policy.max_tries} attempts with the "
                    f"shard below quorum"
                )
            return  # the replica never came back; the quorum carries on
        # acks of the old stream died with it: every batch unacked *by
        # this replica* is re-pushed, in order, ahead of anything its
        # writer sends next
        repush = list(rep.unacked)
        rep.inflight.clear()
        self._spawn(self._rep_reader(rep, end), f"el.rx{rep.idx}")
        for bid, batch in repush:
            t0 = self.sim.now
            try:
                yield from end.write(
                    self.cfg.event_bytes * len(batch),
                    ("EVENT", self.key, bid, batch),
                )
            except (Disconnected, HostDown):
                rep.reconnecting = False
                self._rep_down(rep, end)  # crashed again: next round re-pushes
                return
            rep.inflight.append(t0)
        rep.reconnecting = False
        if self._down_since is not None and self._live() >= self.quorum:
            outage_s = self.sim.now - self._down_since
            self._m_outage_reconnects.inc()
            self._m_outage_el_down_s.inc(outage_s)
            self._down_since = None
            self.tracer.emit(
                self.sim.now, "v2.el_reconnect", rank=self.rank,
                outage_s=outage_s, repushed=len(repush),
            )
        rep.up.open()

    # ------------------------------------------------------------------
    # the pessimistic protocol
    # ------------------------------------------------------------------
    def log_event(self, rec: EventRecord) -> None:
        """Queue a reception event for the event logger; closes the gate."""
        self.outstanding += 1
        self.gate.close()
        self._q.put(rec)
        if self.tracer.hot:
            self.tracer.emit(
                self.sim.now,
                "v2.log_event",
                rank=self.rank,
                rclock=rec.rclock,
                src=rec.src,
                sclock=rec.sclock,
            )

    def wait_sendable(self) -> Generator[Future, Any, None]:
        """Park until every logged event is quorum-acked (WAITLOGGED)."""
        if self.gate.is_open:
            yield self.gate.waitfor()  # gate open: free
        else:
            # the pessimistic gate — measure the stall
            self._m_gate_stalls.inc()
            t0 = self.sim.now
            down0 = self._down_since
            yield self.gate.waitfor()
            self._m_gate_stall_s.inc(self.sim.now - t0)
            if down0 is not None or self._down_since is not None:
                # the stall overlapped a below-quorum outage: the gate
                # held because a quorum of acks could not arrive at all
                self._m_outage_stalled.inc(self.sim.now - t0)

    def _batcher(self):
        """Drain the record queue into batches and fan them out."""
        while True:
            ok, first = self._q.try_get()
            if not ok:
                first = yield self._q.get()
            batch = [first]
            while len(batch) < self.cfg.el_batch_cap:
                ok, more = self._q.try_get()
                if not ok:
                    break
                batch.append(more)
            bid = self._next_bid
            self._next_bid += 1
            n = len(batch)
            self._pend[bid] = {
                "n": n,
                "t0": self.sim.now,
                "ids": (first.rclock,) if n == 1
                else tuple(rec.rclock for rec in batch),
                "acked": set(),
                "done": False,
            }
            self._order.append(bid)
            self.events_pushed += len(batch)
            if "bypass_quorum" in self.mutations:
                # test-only sabotage: clear the gate the moment the
                # batch is queued, before any replica stored it — the
                # el-quorum auditor rule must catch the resulting acks
                self._order.pop()
                self._complete(bid)
            for rep in self.replicas:
                rep.sendq.put((bid, batch))

    def _rep_writer(self, rep: _ReplicaLink):
        while True:
            ok, item = rep.sendq.try_get()
            if not ok:
                item = yield rep.sendq.get()
            bid, batch = item
            # exactly-once hand-off per stream generation: a batch joins
            # the replica's ``unacked`` only once written, so the
            # reconnector (which re-pushes ``unacked``) and this writer
            # never both send it
            while True:
                if not rep.up.is_open:
                    yield rep.up.waitfor()
                end = rep.session.end
                if end is None:
                    continue  # raced with another disconnect; wait again
                t0 = self.sim.now
                try:
                    yield from end.write(
                        self.cfg.event_bytes * len(batch),
                        ("EVENT", self.key, bid, batch),
                    )
                except (Disconnected, HostDown):
                    self._rep_down(rep, end)
                    continue  # batch not in ``unacked``: resend it here
                rep.unacked.append((bid, batch))
                rep.inflight.append(t0)
                break

    def _rep_reader(self, rep: _ReplicaLink, end: StreamEnd):
        while True:
            try:
                msg = yield from rep.session.read_record(end)
            except Disconnected:
                self._rep_down(rep, end)
                return
            if msg[0] == "ACK":
                # ("ACK", bid, n): cumulative — the server coalesces acks
                # for a burst of queued batches into one frame, and may
                # piggyback them on DOWNLOAD replies, so one ack can
                # cover several unacked entries
                self._ack_through(rep, msg[1])

    def _ack_through(self, rep: _ReplicaLink, bid: int) -> None:
        """Retire every unacked batch of ``rep`` up to and including
        ``bid`` (cumulative acks: ``unacked`` is in batch order)."""
        unacked = rep.unacked
        while unacked and unacked[0][0] <= bid:
            b, _batch = unacked.popleft()
            if rep.inflight:
                t0 = rep.inflight.popleft()
                self._m_roundtrips.inc()
                self._m_rtt.observe(self.sim.now - t0)
            self._on_ack(rep, b)

    def _on_ack(self, rep: _ReplicaLink, bid: int) -> None:
        """Fold one replica's ack into the quorum ledger.

        Batches complete strictly in batch order: each replica acks in
        order, so the head of ``_order`` always reaches quorum no later
        than anything behind it — draining from the head keeps the
        ``v2.el_ack`` stream ordered for the auditor.
        """
        ent = self._pend.get(bid)
        if ent is None:
            return  # a fully-retired batch's late duplicate ack
        ent["acked"].add(rep.idx)
        while self._order:
            head = self._pend[self._order[0]]
            if not head["done"] and len(head["acked"]) < self.quorum:
                break
            if not head["done"]:
                self._complete(self._order[0])
            self._order.popleft()
        if ent["done"] and len(ent["acked"]) >= self.nreps:
            del self._pend[bid]  # every replica holds it: retire the entry

    def _complete(self, bid: int) -> None:
        """A batch reached quorum: release its events from the gate."""
        ent = self._pend[bid]
        ent["done"] = True
        n = ent["n"]
        self.outstanding = max(0, self.outstanding - n)
        self._m_quorum_wait.observe(self.sim.now - ent["t0"])
        if self.tracer.hot:
            self.tracer.emit(
                self.sim.now, "v2.el_ack", rank=self.rank, n=n,
                outstanding=self.outstanding, ids=ent["ids"],
                quorum=self.quorum,
            )
        if self.outstanding == 0 and len(self._q) == 0:
            self.gate.open()

    # ------------------------------------------------------------------
    # recovery downloads / pruning
    # ------------------------------------------------------------------
    def download(
        self, from_rclock: int
    ) -> Generator[Future, Any, list[EventRecord]]:
        """Phase-A event download (inline replies; no readers running).

        Fans the request out to the live replicas and unions the
        replies by ``rclock``: any ``K - quorum + 1`` replicas together
        hold every quorum-acked event, so that is the read quorum (a
        freshly-restarted replica defers downloads until its peer
        catch-up completes, keeping the intersection argument sound).
        """
        t_start = self.sim.now
        retries = 0
        failovers = 0
        need = self.nreps - self.quorum + 1
        while True:
            merged: dict[int, EventRecord] = {}
            got = 0
            for rep in self.replicas:
                end = rep.session.end
                if end is None or end.broken is not None:
                    continue
                try:
                    yield from end.write(
                        16, ("DOWNLOAD", self.key, from_rclock)
                    )
                    reply = yield from rep.session.read_record(end)
                except (Disconnected, HostDown):
                    # this replica crashed mid-download: another quorum
                    # member serves it
                    rep.session.drop(end)
                    failovers += 1
                    continue
                records = reply[1]
                if len(reply) >= 3 and reply[2] is not None:
                    # quorum acks piggybacked on the serve traffic: the
                    # DOWNLOAD reply carries the highest batch id this
                    # replica has stored but not yet acked on a frame of
                    # its own — fold it in before processing the records
                    self._ack_through(rep, reply[2])
                for rec in records:
                    merged.setdefault(rec.rclock, rec)
                got += 1
            if got >= need:
                records = [merged[rc] for rc in sorted(merged)]
                self.tracer.emit(
                    self.sim.now, "v2.el_download", rank=self.rank,
                    n=len(records), wait_s=self.sim.now - t_start,
                    retries=retries, failovers=failovers,
                    from_rclock=from_rclock,
                )
                return records
            # below the read quorum: reconnect (the event store survives
            # service restarts — durably or via peer catch-up) and re-ask
            retries += 1
            yield from self._connect_until(need)

    def prune(self, recv_seq: int) -> Generator[Future, Any, None]:
        """Ask every live replica to drop events a checkpoint now covers
        (best-effort)."""
        for rep in self.replicas:
            end = rep.session.end
            if end is None:
                continue
            try:
                yield from end.write(16, ("PRUNE", self.key, recv_seq))
            except Disconnected:
                # PRUNE is a best-effort space optimization: un-pruned
                # events only cost the (restarted) replica memory
                self._rep_down(rep, end)
