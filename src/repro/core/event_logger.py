"""The Event Logger: quorum-replicated storage of reception events.

The paper runs "the event logger [as] a repository executed on a
reliable component of the system" (Section 4.5).  This implementation
drops that assumption: the logger is itself a fault domain.  Ranks shard
across ``cfg.el_servers`` logger groups and each group keeps
``cfg.el_replicas`` in-memory copies of its shard's event tuples
(ReStore-style peer replication).  Safety comes from the client side:
the WAITLOGGED gate clears only once a majority quorum of the shard's
replicas has acknowledged an event, so any surviving quorum can
reconstruct every dependency a sender was allowed to act on.

Each computing-node daemon holds one stream to every replica of its
shard and

* pushes reception events asynchronously (~20 bytes each on the wire)
  to all of them;
* receives acknowledgements — the daemon may not emit application
  messages while events lack a quorum of acks (the pessimistic gate).
  Acks are *cumulative* by batch id: a burst of queued batches is
  stored under one CPU charge and answered with a single frame, and a
  DOWNLOAD queued behind the burst carries the ack on its own reply
  (``cfg.el_piggyback_acks``);
* on restart, downloads every event with receiver-clock greater than
  its checkpoint clock (``DownloadEL`` of Appendix A) from the live
  replicas, unioned so any quorum member can serve it;
* after a completed checkpoint, asks the replicas to prune old events.

Replica roles:

* A **single-replica** logger (``el_replicas == 1``, the classic
  deployment) keeps its ``events`` store durable across service
  crashes — the pre-replication stop/start contract, still exercised
  by the supervisor tests.
* A **replicated** logger (peers configured) loses its in-memory copy
  when it crashes.  On supervised relaunch it re-fills by asking its
  peers for their full store (``SYNC``/``SYNCSET``) and reconciling
  high-water marks; client re-pushes arriving concurrently are merged
  by the same ``(rank, rclock)`` dedup, so catch-up and live traffic
  compose.

The service lifecycle (listen/accept/stop) comes from
:class:`~repro.runtime.session.ServiceBase`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import ServiceBase, Session, framed
from ..simnet.kernel import Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .clocks import EventRecord

__all__ = ["EventLoggerServer"]


class EventLoggerServer(ServiceBase):
    """One event-logger replica (a shard member of the replication group)."""

    metric_ns = "el"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        name: str = "el:0",
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        shard: int = 0,
        peer_names: tuple = (),
    ) -> None:
        super().__init__(sim, host, fabric, name, tracer=tracer, metrics=metrics)
        self.cfg = cfg
        self.shard = shard
        #: the other replicas of this shard (empty = unreplicated)
        self.peer_names = tuple(peer_names)
        self.replicated = bool(self.peer_names)
        m = self.metrics
        self._m_stored = m.counter("el.events_stored", server=name, shard=shard)
        self._m_acks = m.counter("el.acks", server=name, shard=shard)
        self._m_cpu_s = m.counter("el.cpu_s", server=name, shard=shard)
        self._m_dups = m.counter("el.dup_events", server=name, shard=shard)
        self._m_resyncs = m.counter("el.resyncs", server=name, shard=shard)
        self._m_resynced = m.counter(
            "el.events_resynced", server=name, shard=shard
        )
        # rank -> {rclock -> EventRecord}.  Unreplicated: survives daemon
        # incarnations *and* crashes of this service (durable storage).
        # Replicated: in-memory only — a crash loses it and the relaunch
        # re-fills from the shard's live peers (the quorum holds the data).
        self.events: dict[int, dict[int, EventRecord]] = {}
        self.acks_sent = 0
        self.events_stored = 0
        self.records_received = 0
        self.dup_events = 0
        self.events_resynced = 0
        self.resyncs = 0
        # rank -> highest rclock ever stored fresh; with no restarts the
        # invariant events_stored == sum(rclock_hw.values()) certifies that
        # reconnect re-pushes never double-store an event
        self.rclock_hw: dict[int, int] = {}
        self._cpu_free = 0.0  # host-CPU serialization across connections
        self._lost_store = False  # replicated crash: relaunch must resync
        self._resyncing = False  # defer DOWNLOADs until catch-up completes

    def stop(self, cause: Any = "el-crash") -> None:
        """Service-level crash: drop the listener and every connection.

        Unreplicated, the durable event store survives — only in-flight
        requests and unacknowledged pushes are lost, which clients must
        re-push.  Replicated, the in-memory copy dies with the crash;
        the shard's surviving quorum keeps every acknowledged event and
        the supervised relaunch resyncs from it.
        """
        super().stop(cause)

    def on_stop(self, cause: Any) -> None:
        self._cpu_free = 0.0
        if self.replicated:
            self.events.clear()
            self.rclock_hw.clear()
            self._lost_store = True

    def on_start(self) -> None:
        if self.replicated and self._lost_store:
            self._lost_store = False
            self._resyncing = True
            self._spawn(self._resync(), f"{self.name}.resync")

    def evict(self, ranks) -> None:
        """Forget the given rank keys' events (a finished job's reclaim).

        The control plane calls this per job at completion; co-resident
        jobs' keys are untouched, so a long-lived shared shard does not
        accumulate the history of every job it ever served.
        """
        for r in ranks:
            self.events.pop(r, None)
            self.rclock_hw.pop(r, None)

    # -- replica catch-up ----------------------------------------------------
    def _resync(self):
        """Re-fill a restarted replica's store from its live peers.

        Asks every peer for its full shard copy and unions the replies;
        client re-pushes racing the catch-up are merged by the same
        ``(rank, rclock)`` dedup.  A peer that is itself down is skipped
        — its own relaunch runs the symmetric catch-up later.
        """
        merged = 0
        peers_seen = 0
        for peer in self.peer_names:
            sess = Session(
                self.sim, self.fabric, self.host, peer,
                policy=RetryPolicy.from_config(self.cfg, max_tries=8),
                tracer=self.tracer, metrics=self.metrics,
                scope="el", labels={"server": self.name},
            )
            end = yield from sess.connect()
            if end is None:
                continue
            try:
                yield from sess.write(16, ("SYNC", {}))
                reply = yield from sess.read_record(end)
            except (Disconnected, HostDown):
                continue
            if not (isinstance(reply, tuple) and reply[0] == "SYNCSET"):
                self._protocol_error(f"resync got {reply!r}")
                continue
            merged += self._merge(reply[1])
            peers_seen += 1
            if end.broken is None:
                end.stream.break_both("el-sync-done")
        self._resyncing = False
        self.resyncs += 1
        self._m_resyncs.inc()
        self.tracer.emit(
            self.sim.now, "el.resync", server=self.name, shard=self.shard,
            n=merged, peers=peers_seen,
        )

    def _merge(self, by_rank: dict[int, list[EventRecord]]) -> int:
        """Union peer records into the store; returns the fresh count."""
        fresh = 0
        for rank, records in by_rank.items():
            store = self.events.setdefault(rank, {})
            hw = self.rclock_hw.get(rank, 0)
            for rec in records:
                if rec.rclock not in store:
                    store[rec.rclock] = rec
                    fresh += 1
                    hw = max(hw, rec.rclock)
            self.rclock_hw[rank] = hw
        self.events_resynced += fresh
        self._m_resynced.inc(fresh)
        return fresh

    # -- the serve loop ------------------------------------------------------
    def _drain_queued(self, end: StreamEnd, batches: list):
        """Non-blockingly drain records already queued on ``end``.

        A daemon under load (or re-pushing after a reconnect) often has
        several EVENT batches sitting in the receive queue by the time
        the logger finishes the previous one.  Acknowledging each with a
        dedicated frame puts one server→daemon round trip per batch on
        the WAITLOGGED critical path; draining them here lets the serve
        loop store the burst under one CPU charge and answer it with one
        *cumulative* ack.  Queued heartbeat PINGs are answered in place
        (liveness must not wait behind the burst); the first non-EVENT
        protocol record is returned for the main loop to handle after
        the ack — returning ``None`` means the queue ran dry.
        """
        while end.readable:
            ok, _, msg = end.try_read()
            if not ok:
                break
            if msg is None:
                continue  # an in-flight segment of a chunked transfer
            if type(msg) is tuple and len(msg) == 4 and msg[0] == "PING":
                self.on_ping(end, msg)
                yield from end.write(24, ("PONG", msg[1], msg[2], msg[3]))
                continue
            if not framed(msg, self.payload_types):
                self._protocol_error(
                    f"unframed record of type {type(msg).__name__}"
                )
                continue
            if msg[0] == "EVENT":
                batches.append((msg[1], msg[2], msg[3]))
                continue
            return msg
        return None

    def _store_batch(self, rank: Any, records: list) -> None:
        """Dedup-store one pushed batch and emit its ``el.store`` trace."""
        store = self.events.get(rank)
        if store is None:
            store = self.events[rank] = {}
        fresh = 0
        hw = self.rclock_hw.get(rank, 0)
        for rec in records:
            rc = rec.rclock
            if rc not in store:
                store[rc] = rec
                fresh += 1
                if rc > hw:
                    hw = rc
        self.rclock_hw[rank] = hw
        n = len(records)
        self.records_received += n
        dups = n - fresh
        if dups:
            self.dup_events += dups
            self._m_dups.inc(dups)
        self.events_stored += fresh
        self._m_stored.inc(fresh)
        if self.tracer.hot:
            self.tracer.emit(
                self.sim.now, "el.store", rank=rank, n=len(records),
                server=self.name, shard=self.shard,
                ids=tuple(
                    (rec.rclock, rec.src, rec.sclock) for rec in records
                ),
            )

    def _download(self, end: StreamEnd, rank: Any, after_clock: int,
                  piggy_bid: Optional[int]):
        """Serve one DOWNLOAD; the reply's third field piggybacks the
        cumulative ack for batches stored just before the request."""
        # a freshly-restarted replica must not answer downloads
        # from a store it has not finished re-filling: that would
        # break the read-quorum intersection argument
        while self._resyncing:
            yield self.sim.pause(0.01)
        store = self.events.get(rank, {})
        records = sorted(
            rec for rc, rec in store.items() if rc > after_clock
        )
        nbytes = self.cfg.event_bytes * max(1, len(records))
        self.tracer.emit(
            self.sim.now, "el.download", rank=rank, n=len(records),
            server=self.name,
        )
        yield from end.write(nbytes, ("EVENTS", records, piggy_bid))

    def _serve(self, end: StreamEnd, hello: Any):
        piggyback = self.cfg.el_piggyback_acks
        pending: Any = None
        while True:
            if pending is not None:
                msg, pending = pending, None
            else:
                try:
                    msg = yield from self._read_record(end)
                except Disconnected:
                    return  # daemon died; its replacement will reconnect
            kind = msg[0]
            if kind == "EVENT":
                _, rank, bid, records = msg
                batches = [(rank, bid, records)]
                if piggyback and end.readable:
                    # coalesce the burst already queued behind this batch
                    try:
                        pending = yield from self._drain_queued(end, batches)
                    except Disconnected:
                        return
                # the event logger runs on an auxiliary PIII: storing and
                # acknowledging events costs real CPU there, serialized
                # across every daemon it serves (the contention point that
                # sharding across el_servers groups dilutes)
                if len(batches) == 1:
                    total = len(records)
                else:
                    total = sum(len(b[2]) for b in batches)
                cost = self.cfg.el_cpu_per_event * total
                now = self.sim.now
                begin = now if now > self._cpu_free else self._cpu_free
                self._cpu_free = begin + cost
                yield self.sim.pause(self._cpu_free - self.sim.now)
                # store (and trace) every batch *before* any ack leaves:
                # the auditor's quorum rule orders el.store against the
                # client's v2.el_ack
                for brank, _bbid, brecords in batches:
                    self._store_batch(brank, brecords)
                self.acks_sent += 1
                self._m_acks.inc()
                self._m_cpu_s.inc(cost)
                last_bid = batches[-1][1]
                if (
                    pending is not None
                    and pending[0] == "DOWNLOAD"
                    and not self._resyncing
                ):
                    # a recovery download queued right behind the burst:
                    # ride the cumulative ack on its reply instead of
                    # spending a dedicated ack frame
                    msg, pending = pending, None
                    try:
                        yield from self._download(
                            end, msg[1], msg[2], last_bid
                        )
                    except Disconnected:
                        return  # the restarting daemon retries its download
                    continue
                try:
                    yield from end.write(
                        self.cfg.event_ack_bytes,
                        ("ACK", last_bid, total),
                    )
                except Disconnected:
                    return  # the daemon re-pushes the batch after reconnect
            elif kind == "DOWNLOAD":
                try:
                    yield from self._download(end, msg[1], msg[2], None)
                except Disconnected:
                    return  # the restarting daemon retries its download
            elif kind == "SYNC":
                # a restarted peer replica catching up: everything above
                # its per-rank high-water marks (empty dict = everything)
                _, hw_by_rank = msg
                out: dict[int, list[EventRecord]] = {}
                n = 0
                for rank, store in self.events.items():
                    after = hw_by_rank.get(rank, 0)
                    recs = sorted(
                        rec for rc, rec in store.items() if rc > after
                    )
                    if recs:
                        out[rank] = recs
                        n += len(recs)
                nbytes = self.cfg.event_bytes * max(1, n)
                try:
                    yield from end.write(nbytes, ("SYNCSET", out))
                except Disconnected:
                    return  # the peer retries its catch-up
            elif kind == "PRUNE":
                _, rank, upto_clock = msg
                store = self.events.get(rank, {})
                for rc in [rc for rc in store if rc <= upto_clock]:
                    del store[rc]
            else:  # pragma: no cover
                raise RuntimeError(f"event logger got {kind!r}")

    # -- test/diagnostic helpers ---------------------------------------------
    def records_for(self, rank: int) -> list[EventRecord]:
        """All stored events for ``rank``, in receive order."""
        return sorted(self.events.get(rank, {}).values())

    def high_water(self, rank: int) -> int:
        """Highest stored receive-sequence for ``rank`` (0 if none)."""
        store = self.events.get(rank, {})
        return max(store) if store else 0
