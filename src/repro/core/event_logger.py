"""The Event Logger: reliable storage of reception events.

"The event logger is a repository executed on a reliable component of the
system. It stores and delivers dependency information about messages
exchanged by the computing nodes." (Section 4.5)

Each computing-node daemon holds one stream to its event logger and

* pushes reception events asynchronously (~20 bytes each on the wire);
* receives acknowledgements — the daemon may not emit application
  messages while events are unacknowledged (the pessimistic gate);
* on restart, downloads every event with receiver-clock greater than its
  checkpoint clock (``DownloadEL`` of Appendix A);
* after a completed checkpoint, asks the logger to prune old events.

Several event loggers can serve one system (each daemon connects to
exactly one); they never communicate with each other.  The service
lifecycle (listen/accept/stop) comes from
:class:`~repro.runtime.session.ServiceBase`: a stopped logger drops its
listener and every connection, but the durable ``events`` store
survives for the supervised relaunch.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.session import ServiceBase
from ..simnet.kernel import Simulator
from ..simnet.node import Host
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .clocks import EventRecord

__all__ = ["EventLoggerServer"]


class EventLoggerServer(ServiceBase):
    """One event-logger service instance."""

    metric_ns = "el"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        name: str = "el:0",
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(sim, host, fabric, name, tracer=tracer, metrics=metrics)
        self.cfg = cfg
        m = self.metrics
        self._m_stored = m.counter("el.events_stored", server=name)
        self._m_acks = m.counter("el.acks", server=name)
        self._m_cpu_s = m.counter("el.cpu_s", server=name)
        self._m_dups = m.counter("el.dup_events", server=name)
        # rank -> {rclock -> EventRecord}; survives daemon incarnations
        # *and* crashes of this service (durable storage)
        self.events: dict[int, dict[int, EventRecord]] = {}
        self.acks_sent = 0
        self.events_stored = 0
        self.records_received = 0
        self.dup_events = 0
        # rank -> highest rclock ever stored fresh; with no restarts the
        # invariant events_stored == sum(rclock_hw.values()) certifies that
        # reconnect re-pushes never double-store an event
        self.rclock_hw: dict[int, int] = {}
        self._cpu_free = 0.0  # host-CPU serialization across connections

    def stop(self, cause: Any = "el-crash") -> None:
        """Service-level crash: drop the listener and every connection.

        The durable event store survives — only in-flight requests and
        unacknowledged pushes are lost, which clients must re-push.
        """
        super().stop(cause)

    def on_stop(self, cause: Any) -> None:
        self._cpu_free = 0.0

    # -- the serve loop ------------------------------------------------------
    def _serve(self, end: StreamEnd, hello: Any):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return  # daemon died; its replacement will reconnect
            kind = msg[0]
            if kind == "EVENT":
                _, rank, records = msg
                # the event logger runs on an auxiliary PIII: storing and
                # acknowledging events costs real CPU there, serialized
                # across every daemon it serves (a contention point that
                # grows with the computing-node count)
                cost = self.cfg.el_cpu_per_event * len(records)
                begin = max(self.sim.now, self._cpu_free)
                self._cpu_free = begin + cost
                yield self.sim.timeout(self._cpu_free - self.sim.now)
                store = self.events.setdefault(rank, {})
                fresh = 0
                hw = self.rclock_hw.get(rank, 0)
                for rec in records:
                    if rec.rclock not in store:
                        store[rec.rclock] = rec
                        fresh += 1
                        hw = max(hw, rec.rclock)
                self.rclock_hw[rank] = hw
                self.records_received += len(records)
                dups = len(records) - fresh
                self.dup_events += dups
                self.events_stored += fresh
                self.acks_sent += 1
                self._m_stored.inc(fresh)
                self._m_dups.inc(dups)
                self._m_acks.inc()
                self._m_cpu_s.inc(cost)
                self.tracer.emit(
                    self.sim.now, "el.store", rank=rank, n=len(records),
                    ids=tuple(
                        (rec.rclock, rec.src, rec.sclock) for rec in records
                    ),
                )
                try:
                    yield from end.write(
                        self.cfg.event_ack_bytes, ("ACK", len(records))
                    )
                except Disconnected:
                    return  # the daemon re-pushes the batch after reconnect
            elif kind == "DOWNLOAD":
                _, rank, after_clock = msg
                store = self.events.get(rank, {})
                records = sorted(
                    rec for rc, rec in store.items() if rc > after_clock
                )
                nbytes = self.cfg.event_bytes * max(1, len(records))
                self.tracer.emit(
                    self.sim.now, "el.download", rank=rank, n=len(records)
                )
                try:
                    yield from end.write(nbytes, ("EVENTS", records))
                except Disconnected:
                    return  # the restarting daemon retries its download
            elif kind == "PRUNE":
                _, rank, upto_clock = msg
                store = self.events.get(rank, {})
                for rc in [rc for rc in store if rc <= upto_clock]:
                    del store[rc]
            else:  # pragma: no cover
                raise RuntimeError(f"event logger got {kind!r}")

    # -- test/diagnostic helpers ---------------------------------------------
    def records_for(self, rank: int) -> list[EventRecord]:
        """All stored events for ``rank``, in receive order."""
        return sorted(self.events.get(rank, {}).values())

    def high_water(self, rank: int) -> int:
        """Highest stored receive-sequence for ``rank`` (0 if none)."""
        store = self.events.get(rank, {})
        return max(store) if store else 0
