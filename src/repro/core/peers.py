"""Peer-daemon links: adoption, epochs, reconnects, and the tx/rx loops.

One :class:`PeerManager` per daemon incarnation owns the mesh of
daemon-to-daemon connections.  Each link is a :class:`PeerLink` — a
:class:`~repro.runtime.session.Session` carrying raw
:class:`~repro.mpi.protocol.Packet` payloads and control tuples — plus
the rules that make a volatile mesh converge:

* **crossed-stream tie-break** — two daemons restarting simultaneously
  cross-connect; both sides settle on the stream initiated by the lower
  rank (:meth:`PeerManager.adopt`);
* **lower-rank reconnect rule** — a flapped link restarts no daemon, so
  nobody would ever re-connect; the canonical initiator (the lower
  rank) actively retries with backoff while the other side listens;
* **epoch discipline** — every adoption bumps the link epoch; tx/rx
  loops carry the epoch they were started under and exit the moment it
  goes stale, so a replaced stream's loops never touch the new one;
* **RESTART1 re-arming** — a link marked ``needs_restart1`` re-sends
  the handshake on every adoption until RESTART2 lands (a replaced
  stream may have swallowed an earlier RESTART1; handling is
  idempotent).

The protocol itself (control handling, duplicate discard, forwarding)
stays in the daemon core, reached through the ``core`` composition
interface documented on :class:`PeerManager`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..mpi.protocol import Packet
from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import ServiceBase, Session
from ..simnet.kernel import Queue, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer

__all__ = ["PeerLink", "PeerManager"]


class PeerLink(Session):
    """State of the connection to one peer daemon."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        host: Host,
        me: int,
        rank: int,
        *,
        hello: Any,
        cfg: TestbedConfig,
        rng: Optional[Any] = None,
        on_retry: Optional[Any] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(
            sim, fabric, host, f"daemon:{rank}",
            hello=hello, window=cfg.stream_window,
            policy=RetryPolicy.from_config(cfg, max_tries=cfg.peer_retry_tries),
            rng=rng, on_retry=on_retry, tracer=tracer, metrics=metrics,
            scope="peer", payload_types=(Packet,),
            labels={"rank": me, "peer": rank},
        )
        self.rank = rank
        self.tx: Queue = Queue(sim, name=f"d{me}->d{rank}.tx")
        self.initiator = -1  # rank that initiated the current stream


class PeerManager:
    """The daemon's mesh of peer links and their transmit/receive loops.

    Composes with the daemon core through an explicit interface: ``core``
    must provide ``rank``, ``incarnation``, ``cfg``, ``mutations``,
    ``clock`` (for the RESTART1 watermark), ``cpu_tax_owed``, ``device``
    (or None), ``el.wait_sendable()`` (the WAITLOGGED gate),
    ``_handle_ctrl(q, msg)`` / ``delivery.handle_app_packet(q, pkt)``
    (protocol dispatch), and ``_spawn(gen, label)`` (incarnation-named
    processes).
    """

    def __init__(
        self,
        core,
        sim: Simulator,
        fabric: Fabric,
        host: Host,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Any] = None,
    ) -> None:
        self.core = core
        self.sim = sim
        rank, size = core.rank, core.size
        hello = ("PEER", rank, core.incarnation)
        self.links: dict[int, PeerLink] = {
            q: PeerLink(
                sim, fabric, host, rank, q,
                hello=hello, cfg=core.cfg, rng=rng, on_retry=on_retry,
                tracer=tracer, metrics=metrics,
            )
            for q in range(size)
            if q != rank
        }
        self.needs_restart1: set[int] = set()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = metrics if metrics is not None else Metrics()
        self._m_outage_reconnects = m.counter("outage.reconnects", rank=rank)
        self.listener = _DaemonListener(
            self, sim, host, fabric, f"daemon:{rank}",
            tracer=tracer, metrics=metrics,
        )

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect_initial(self) -> None:
        """Dial the startup peer set: lower ranks only on a first launch
        (they listen first); a restarted daemon reconnects to everyone
        it can reach."""
        core = self.core
        targets = (
            list(self.links)
            if core.incarnation > 0
            else [q for q in self.links if q < core.rank]
        )
        for q in targets:
            link = self.links[q]
            try:
                end = link.connect_now(adopt=False)
            except ConnectionRefused:
                if core.incarnation > 0:
                    # the peer may be alive but partitioned away: unlike a
                    # crashed peer (which reconnects to us on restart), it
                    # will never initiate, so keep trying in the background
                    core._spawn(self._reconnect(q, link.epoch), f"re{q}")
                continue  # peer is down; it will connect to us when it returns
            self.adopt(q, end, initiator=core.rank)

    def adopt(self, q: int, end: StreamEnd, initiator: int) -> None:
        """Install (or replace) the connection to peer ``q``.

        Two daemons restarting simultaneously cross-connect; both sides
        must settle on the *same* stream or each would transmit on a
        stream the other is not reading.  Tie-break: the stream initiated
        by the lower rank is canonical.
        """
        core = self.core
        link = self.links[q]
        canonical = min(core.rank, q)
        if link.up() and link.initiator == canonical and initiator != canonical:
            return  # keep the canonical stream; ignore the crossed one
        link.adopt(end)
        link.initiator = initiator
        # drop whatever was queued for the old connection: every app packet
        # is in SAVED, and the RESTART handshake re-sends what is needed
        link.tx = Queue(self.sim, name=f"d{core.rank}->d{q}.tx.e{link.epoch}")
        core._spawn(self._tx_loop(q, link, link.epoch), f"tx{q}e{link.epoch}")
        core._spawn(self._rx_loop(q, link, link.epoch), f"rx{q}e{link.epoch}")
        if q in self.needs_restart1:
            # stays armed until RESTART2 arrives: a replaced stream may have
            # swallowed an earlier RESTART1 (handling is idempotent)
            self.enqueue_ctrl(q, ("RESTART1", core.clock.hr.get(q, 0)))

    def link_down(self, q: int, epoch: int) -> None:
        core = self.core
        link = self.links[q]
        if link.stale(epoch):
            return  # already replaced
        link.drop()
        if core.device is not None:
            core.device.notify_peer_restart_pending(q)
        # whatever stream comes next (the peer's restart connect, a link
        # re-establishment after a flap), both sides must resynchronize:
        # the symmetric RESTART1 exchange re-sends each direction's saved
        # messages past the other's delivery watermark and repairs pending
        # rendezvous state; duplicates die on the forwarded_hw discard
        self.needs_restart1.add(q)
        if core.rank < q:
            # one side must actively re-establish a flapped link (a mere
            # link break restarts no daemon, so nobody else would connect);
            # the canonical initiator retries, the other side listens.  If
            # the peer actually crashed, its restarted daemon's connect
            # simply wins the race (crossed-stream tie-break).
            core._spawn(self._reconnect(q, epoch), f"re{q}")

    def _reconnect(self, q: int, epoch0: int):
        """Re-establish the link to ``q`` with backoff (flap/partition)."""
        link = self.links[q]

        def settled() -> bool:
            return link.stale(epoch0) or link.up()

        end = yield from link.connect(giveup=settled, adopt=False)
        if end is None:
            return  # link already replaced, or a restarted peer will connect
        self._m_outage_reconnects.inc()
        self.tracer.emit(
            self.sim.now, "v2.peer_reconnect", rank=self.core.rank, peer=q
        )
        self.adopt(q, end, initiator=self.core.rank)

    # ------------------------------------------------------------------
    # transmit / receive loops
    # ------------------------------------------------------------------
    def enqueue_app(self, dst: int, pkt: Packet) -> None:
        """Queue one application packet on the per-peer transmit loop."""
        self.links[dst].tx.put(pkt)

    def enqueue_ctrl(self, dst: int, ctrl: tuple) -> None:
        self.links[dst].tx.put(ctrl)

    def _tx_loop(self, q: int, link: PeerLink, epoch: int):
        core = self.core
        cfg = core.cfg
        myq = link.tx
        while not link.stale(epoch):
            ok, item = myq.try_get()
            if not ok:
                try:
                    item = yield myq.get()
                except Disconnected:
                    return
            if isinstance(item, tuple):  # control message, not gated
                end = link.end
                if end is None or link.stale(epoch):
                    return
                try:
                    yield from end.write(24, item)
                except (Disconnected, HostDown):
                    self.link_down(q, epoch)
                    return
                continue
            pkt: Packet = item
            if "bypass_waitlogged" in core.mutations:
                pass  # test-only: skip the pessimistic gate entirely
            else:
                yield from core.el.wait_sendable()  # WAITLOGGED
            end = link.end
            if end is None or link.stale(epoch):
                return  # packet dropped; SAVED + handshake recover it
            total = pkt.payload_bytes + cfg.packet_header_bytes
            if self.tracer.hot:
                self.tracer.emit(
                    self.sim.now,
                    "v2.tx",
                    rank=core.rank,
                    dst=q,
                    pkt_kind=pkt.kind.value,
                    sclock=pkt.env.sclock,
                )
            try:
                yield from end.write_frame(total, pkt, mtu=cfg.chunk_bytes)
            except (Disconnected, HostDown):
                self.link_down(q, epoch)
                return
            core.cpu_tax_owed += (
                cfg.daemon_cpu_per_msg
                + cfg.daemon_cpu_per_byte * pkt.payload_bytes
            )

    def _rx_loop(self, q: int, link: PeerLink, epoch: int):
        core = self.core
        end = link.end
        while not link.stale(epoch):
            try:
                payload = yield from link.read_record(end)
            except Disconnected:
                self.link_down(q, epoch)
                return
            if isinstance(payload, tuple):
                core._handle_ctrl(q, payload)
            else:
                core.delivery.handle_app_packet(q, payload)


class _DaemonListener(ServiceBase):
    """The daemon's listening side, on the shared service lifecycle.

    The daemon listens *before* recovery (so its name is claimed) but
    accepts only once recovery is done — hence the split
    ``listen()`` / ``run_accept()`` phases instead of ``start()``.
    """

    metric_ns = "daemon"

    def __init__(self, mgr: PeerManager, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mgr = mgr

    def on_accept(self, end: StreamEnd, hello: Any) -> None:
        kind, peer_rank, peer_inc = hello
        self._mgr.adopt(peer_rank, end, initiator=peer_rank)
