"""Re-execution state: checkpoint images, fast-forward and forced replay.

Restart of a V2 computing node has three phases (Figure 2 of the paper):

A. retrieve the logged reception events from the event logger (and the
   latest checkpoint image from the checkpoint server, if any);
B. ask every other process to re-send old messages (RESTART1/RESTART2);
C. re-execute, delivering replayed receptions in the logged order and
   discarding duplicates, until the crash point is passed.

Because Python generator state cannot be snapshotted like a Condor
process image, a checkpoint here stores the *replay position* instead:
the API-operation index, the clock state, the SAVED set, and the log of
deliveries made so far (payload included).  Restoring an image re-runs
the program in **fast-forward**: pre-checkpoint receives are fed from the
recorded delivery log and pre-checkpoint compute segments cost zero
simulated time (the image-load substitution documented in DESIGN.md);
the image *transfer* from the checkpoint server is charged for real.
After the fast-forward boundary, re-execution proceeds through the real
protocol, driven by the event-logger records via :class:`ReplayState`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..mpi.datatypes import Envelope
from .clocks import ClockState, EventRecord

__all__ = ["DeliveryRecord", "CheckpointImage", "ReplayState"]


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One application-level delivery (mirror of the logged event + data).

    ``slots=True``: daemons keep the full delivery log between
    checkpoints for replay, one record per delivery — dropping the
    per-instance ``__dict__`` is a ~2x memory cut on large runs.
    """

    src: int
    sclock: int
    rclock: int
    probes: int
    nbytes: int
    tag: int
    context: int
    data: Any = None

    def to_envelope(self, dst: int) -> Envelope:
        """Rebuild the message envelope for re-delivery to ``dst``."""
        return Envelope(
            src=self.src,
            dst=dst,
            tag=self.tag,
            context=self.context,
            nbytes=self.nbytes,
            sclock=self.sclock,
            data=self.data,
        )


@dataclass
class CheckpointImage:
    """Everything a restarted node needs to resume from a checkpoint."""

    rank: int
    seq: int  # checkpoint ordinal for this rank
    op_count: int  # API-operation index at the capture point
    clock: ClockState
    saved: list[tuple[int, int, Any]]  # SenderLog.snapshot()
    delivery_log: list[DeliveryRecord]
    app_footprint: int
    #: per-region write versions of the deterministic dirty model: region
    #: ``i`` covers bytes ``[i*chunk, (i+1)*chunk)`` of the application
    #: footprint, and a version bump means the content changed since the
    #: previous checkpoint (drives chunk-level dedup in ``repro.store``)
    regions: tuple[int, ...] = ()

    @property
    def image_bytes(self) -> int:
        """Transfer size: process image + serialized daemon message data."""
        saved_bytes = sum(env.nbytes for _, _, env in self.saved)
        return self.app_footprint + saved_bytes + 4096


class ReplayState:
    """Drives one re-execution (phases A-C) for a restarted node."""

    def __init__(
        self,
        image: Optional[CheckpointImage],
        events: list[EventRecord],
    ) -> None:
        self.image = image
        self.ff_target_ops = image.op_count if image else 0
        self.ff_deliveries: deque[DeliveryRecord] = deque(
            image.delivery_log if image else ()
        )
        base_clock = image.clock.recv_seq if image else 0
        self.events: deque[EventRecord] = deque(
            sorted(e for e in events if e.rclock > base_clock)
        )
        # deliveries at or below this receiver clock are already logged on
        # the EL: do not re-log (and do not gate sends on) them
        self.log_resume_clock = max(
            [base_clock] + [e.rclock for e in self.events]
        )
        # packets that arrived but are not yet due for delivery
        self.holdback: dict[int, deque[Any]] = {}
        self._ff_probe_budget: Optional[int] = None
        self._replay_probe_budget: Optional[int] = None

    # -- phase boundaries ---------------------------------------------------
    def fast_forward(self, op_index: int) -> bool:
        """Is the re-execution still inside the checkpointed prefix?"""
        return op_index < self.ff_target_ops

    def replaying(self) -> bool:
        """Are logged events still waiting to be replayed?"""
        return bool(self.events)

    def active(self, op_index: int) -> bool:
        """Is any phase of the re-execution still in progress?"""
        return self.fast_forward(op_index) or self.replaying()

    # -- fast-forward deliveries ------------------------------------------------
    def next_ff_delivery(self) -> Optional[DeliveryRecord]:
        """Pop the next recorded delivery of the fast-forward phase."""
        if not self.ff_deliveries:
            return None
        self._ff_probe_budget = None
        return self.ff_deliveries.popleft()

    def ff_probe(self) -> bool:
        """Forced iprobe result during fast-forward: False exactly as often
        as the original execution saw unsuccessful probes."""
        if not self.ff_deliveries:
            return False
        if self._ff_probe_budget is None:
            self._ff_probe_budget = self.ff_deliveries[0].probes
        if self._ff_probe_budget > 0:
            self._ff_probe_budget -= 1
            return False
        return True

    # -- event-driven replay --------------------------------------------------
    def expected(self) -> Optional[EventRecord]:
        """The next event the replay is waiting for, if any."""
        return self.events[0] if self.events else None

    def offer_packet(self, pkt: Any) -> list[Any]:
        """An application packet arrived during replay.

        Returns the (possibly empty) list of packets now releasable to the
        MPI process, in forced order.  Packets not yet due are held back;
        the caller must drop duplicates before offering.
        """
        q = self.holdback.setdefault(pkt.env.src, deque())
        if any(p.env.sclock == pkt.env.sclock for p in q):
            return self.drain_releasable()  # duplicate already held
        q.append(pkt)
        return self.drain_releasable()

    def drain_releasable(self) -> list[Any]:
        """Release every held packet now admitted by the event order."""
        released: list[Any] = []
        while self.events:
            head = self.events[0]
            q = self.holdback.get(head.src)
            due = None
            if q:
                # normally the due message is at the queue head (per-sender
                # FIFO), but scan defensively: recovery races could park a
                # later message in front
                for i, p in enumerate(q):
                    if p.env.sclock == head.sclock:
                        due = i
                        break
            if due is None:
                break  # the due message has not arrived yet
            released.append(q[due])
            del q[due]
            self.events.popleft()
            self._replay_probe_budget = None
        if not self.events:
            # replay finished: everything still held is post-crash traffic
            for q in self.holdback.values():
                released.extend(q)
                q.clear()
        return released

    def replay_probe(self) -> Optional[bool]:
        """Forced iprobe result during event replay (None = no opinion)."""
        if not self.events:
            return None
        if self._replay_probe_budget is None:
            self._replay_probe_budget = self.events[0].probes
        if self._replay_probe_budget > 0:
            self._replay_probe_budget -= 1
            return False
        return None  # due probe should succeed: let the normal path run
