"""The sender-based message payload log (the SAVED sets of Appendix A).

Every outgoing application message is copied on the (volatile) sender
before transmission.  The log accounts for storage exactly as the paper
describes its testbed limits: payload copies live in main memory until
the budget — what is left of 1 GB after the application's footprint — is
exhausted, then spill to the IDE disk (slowing the send path to disk
bandwidth), and the run aborts once RAM+swap (2 GB total) is exceeded:
"We use a maximum storage size of 2 GB (1 GB on memory + 1 GB on disk)
per node for message logging.  This value is exceeded when executing FT
Class B" — the reason the paper cannot report FT-B without checkpointing.

Garbage collection: "Once a checkpoint has been done at a particular
logical clock, all the messages received before will never be requested
again. Thus all these messages can be removed on their respective sender."
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["SavedMessage", "SenderLog", "LogOverflow"]


class LogOverflow(Exception):
    """RAM + swap exhausted by the payload log (the FT-class-B failure)."""


class SavedMessage:
    """One retained payload copy: (m, H_p, q) of the SAVED set."""

    __slots__ = ("dst", "sclock", "env", "charged")

    def __init__(self, dst: int, sclock: int, env: Any, charged: int) -> None:
        self.dst = dst
        self.sclock = sclock
        self.env = env  # the full envelope (payload reference included)
        self.charged = charged  # slab-rounded storage footprint


class SenderLog:
    """SAVED set with RAM/disk accounting for one computing node."""

    def __init__(self, ram_budget: int, disk_budget: int, slab: int = 1) -> None:
        self.ram_budget = max(0, ram_budget)
        self.disk_budget = max(0, disk_budget)
        #: storage is slab-allocated: a message occupies at least ``slab``
        #: bytes — a torrent of tiny messages (the LU wavefront) wastes
        #: the log many times over, which is how a 40 MB payload stream
        #: pushes a 1 GB node into swap
        self.slab = max(1, slab)
        self._by_dst: dict[int, list[SavedMessage]] = {}
        #: highest sclock garbage-collected per destination: re-sends below
        #: this are impossible (the copies are gone)
        self.gc_floor: dict[int, int] = {}
        self.bytes_total = 0
        self.bytes_on_disk = 0
        self.appended_msgs = 0
        self.gc_freed_bytes = 0

    # -- appends -------------------------------------------------------------
    def append(self, dst: int, sclock: int, env: Any) -> int:
        """Log one message copy; returns bytes that went to *disk* (0 if RAM).

        Raises :class:`LogOverflow` when RAM+disk budgets are exceeded.
        """
        charged = max(env.nbytes, self.slab)
        if self.bytes_total + charged > self.ram_budget + self.disk_budget:
            raise LogOverflow(
                f"message log needs {self.bytes_total + charged} bytes, "
                f"budget is {self.ram_budget + self.disk_budget}"
            )
        disk_bytes = 0
        if self.bytes_total + charged > self.ram_budget:
            disk_bytes = min(charged, self.bytes_total + charged - self.ram_budget)
            self.bytes_on_disk += disk_bytes
        self.bytes_total += charged
        self.appended_msgs += 1
        self._by_dst.setdefault(dst, []).append(
            SavedMessage(dst, sclock, env, charged)
        )
        return disk_bytes

    # -- lookups -------------------------------------------------------------
    def messages_for(self, dst: int, after_sclock: int = 0) -> list[SavedMessage]:
        """Saved messages to ``dst`` with sclock > ``after_sclock``, in order."""
        return [m for m in self._by_dst.get(dst, ()) if m.sclock > after_sclock]

    def has(self, dst: int, sclock: int) -> bool:
        """Is the copy of (dst, sclock) still retrievable?"""
        return any(m.sclock == sclock for m in self._by_dst.get(dst, ()))

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_dst.values())

    def __iter__(self) -> Iterator[SavedMessage]:
        for msgs in self._by_dst.values():
            yield from msgs

    # -- garbage collection ------------------------------------------------------
    def collect(self, dst: int, upto_sclock: int) -> int:
        """Drop copies to ``dst`` with sclock <= ``upto_sclock``; bytes freed."""
        self.gc_floor[dst] = max(self.gc_floor.get(dst, 0), upto_sclock)
        msgs = self._by_dst.get(dst)
        if not msgs:
            return 0
        keep, freed = [], 0
        for m in msgs:
            if m.sclock <= upto_sclock:
                freed += m.charged
            else:
                keep.append(m)
        self._by_dst[dst] = keep
        self.bytes_total -= freed
        # disk fills last, drains first (most recent spill is reclaimed)
        reclaim_disk = min(freed, self.bytes_on_disk)
        self.bytes_on_disk -= reclaim_disk
        self.gc_freed_bytes += freed
        return freed

    # -- checkpoint support ----------------------------------------------------
    def snapshot(self) -> list[tuple[int, int, Any]]:
        """Serializable copy (dst, sclock, env) — part of the daemon image."""
        return [(m.dst, m.sclock, m.env) for m in self]

    @classmethod
    def restore(
        cls,
        ram_budget: int,
        disk_budget: int,
        entries: list[tuple[int, int, Any]],
        slab: int = 1,
    ) -> "SenderLog":
        log = cls(ram_budget, disk_budget, slab=slab)
        for dst, sclock, env in entries:
            log.append(dst, sclock, env)
        return log
