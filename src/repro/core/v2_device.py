"""MPICH-V2: the pessimistic sender-based message-logging channel.

Each computing node runs two cooperating entities (Section 4.4 of the
paper): the **MPI process** (our application generator, driving the
MPICH stack over :class:`V2Device`) and the **communication daemon**
(:class:`V2Daemon`), connected by a synchronous UNIX socket whose
granularity is the whole protocol message.  The daemon owns every network
socket — to peer daemons, to the event logger, to the checkpoint server
and scheduler, and to the dispatcher — and runs fully asynchronously,
which is why MPICH-V2 keeps both directions of a link flowing while P4
serializes them (Figure 9), and why an MPI_Isend costs only a local copy
(Table 1).

Protocol responsibilities implemented here:

* logical clock ticks on every application send and delivery;
* SAVED: a copy of every outgoing payload retained on the sender (RAM,
  spilling to disk past the budget — the LU effect);
* reception events pushed to the event logger; **no application message
  leaves the node while any event is unacknowledged** (WAITLOGGED — the
  pessimistic gate, and the source of V2's small-message latency);
* checkpointing at API-boundary safe points, image push overlapped with
  execution, garbage collection of peers' SAVED entries afterwards;
* the restart protocol of Appendix A: RESTART1/RESTART2 handshakes,
  re-sending of saved messages, duplicate discarding by HR, forced
  delivery order during replay, fast-forward from a checkpoint image.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from ..devices.base import ChannelDevice, segment_sizes
from ..obs.registry import Metrics
from ..mpi.datatypes import Envelope
from ..mpi.protocol import Packet, PacketKind
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy, connect_with_retry
from ..store.chunks import chunk_image, stable_digest
from ..store.client import StoreClient
from ..simnet.kernel import Future, Gate, Queue, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .clocks import ClockState, EventRecord
from .replay import CheckpointImage, DeliveryRecord, ReplayState
from .sender_log import SenderLog

__all__ = ["V2Daemon", "V2Device", "PeerLink"]

_APP_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.RTS, PacketKind.DATA)
_PAYLOAD_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.DATA)
_FIRST_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.RTS)


class PeerLink:
    """State of the connection to one peer daemon."""

    def __init__(self, sim: Simulator, me: int, rank: int) -> None:
        self.sim = sim
        self.rank = rank
        self.end: Optional[StreamEnd] = None
        self.tx: Queue = Queue(sim, name=f"d{me}->d{rank}.tx")
        self.epoch = 0  # bumps on every (re)connection
        self.initiator = -1  # rank that initiated the current stream

    def up(self) -> bool:
        """Is the current stream alive?"""
        return self.end is not None and self.end.broken is None


class V2Daemon:
    """One incarnation of the communication daemon for one rank."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        rank: int,
        size: int,
        host: Host,
        incarnation: int = 0,
        el_name: str = "el:0",
        cs_names: Any = ("cs:0",),
        sched_name: Optional[str] = None,
        dispatcher_name: Optional[str] = "dispatcher",
        app_footprint: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        mutations: Optional[frozenset] = None,
        rng: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.fabric = fabric
        self.rank = rank
        self.size = size
        self.host = host
        self.incarnation = incarnation
        self.el_name = el_name
        if isinstance(cs_names, str):
            cs_names = (cs_names,)
        self.cs_names: tuple[str, ...] = tuple(cs_names) if cs_names else ()
        self.sched_name = sched_name
        self.dispatcher_name = dispatcher_name
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: test-only protocol sabotage (``bypass_waitlogged``,
        #: ``reorder_replay``, ``premature_gc``): each seeds one safety
        #: violation the online auditor must catch — never set in production
        self.mutations = frozenset(mutations or ())
        self._mut_prev_replay: Optional[tuple[int, int]] = None
        #: jitter source for reconnect backoff (a named sim RNG stream in
        #: production runs; ``None`` disables jitter — still deterministic)
        self._rng = rng

        # protocol state (restored from a checkpoint image at restart)
        self.clock = ClockState()
        self.app_footprint = app_footprint
        self.saved = SenderLog(
            ram_budget=self._log_ram_budget(),
            disk_budget=cfg.cn_swap,
            slab=cfg.log_slab_bytes,
        )
        self.delivery_log: list[DeliveryRecord] = []
        # deterministic dirty-region model: one write-version counter per
        # ckpt_chunk_bytes region of the application footprint.  Each
        # API operation past the fast-forward boundary dirties the region
        # picked by its op phase — a pure function of op_index, so a
        # replayed execution reconverges to the same versions and
        # successive checkpoints share every untouched region's chunks
        self.region_versions: list[int] = []
        self._resize_regions()
        self.replay: Optional[ReplayState] = None
        self.op_index = 0
        # sequence values at the restored checkpoint (0,0 without an image)
        self.restart_base_send = 0
        self.restart_base_recv = 0
        self.needs_restart1: set[int] = set()
        # highest sclock passed up to the MPI process, per sender: the
        # duplicate-discard watermark of replay phase C
        self.forwarded_hw: dict[int, int] = {}

        # links
        self.links: dict[int, PeerLink] = {
            q: PeerLink(sim, rank, q) for q in range(size) if q != rank
        }
        self._el_end: Optional[StreamEnd] = None
        self._disp_end: Optional[StreamEnd] = None
        self._sched_end: Optional[StreamEnd] = None

        # event-logger gating
        self.el_gate = Gate(sim, opened=True, name=f"d{rank}.elgate")
        self._el_outstanding = 0
        self._el_q: Queue = Queue(sim, name=f"d{rank}.elq")
        # EL outage state: batches written but not yet acknowledged (re-pushed
        # idempotently after a reconnect; the server dedups by rclock), and
        # the connection-up gate the writer parks on during an outage
        self._el_unacked: deque[list[EventRecord]] = deque()
        self._el_up = Gate(sim, opened=False, name=f"d{rank}.elup")
        self._el_down_since: Optional[float] = None

        # daemon -> MPI process forwarding (the UNIX socket, ordered)
        self._fwd_q: Queue = Queue(sim, name=f"d{rank}.fwd")
        self.device: Optional["V2Device"] = None

        # checkpointing
        self.ckpt_requested = False
        self.ckpt_seq = 0
        self.checkpoints_done = 0
        self.finalized = False
        self.ready = Gate(sim, opened=False, name=f"d{rank}.ready")

        # accounting
        self.cpu_tax_owed = 0.0
        self.events_pushed = 0
        self.dups_dropped = 0
        self.ckpt_aborts = 0

        # metric handles, bound once (get-or-create by (name, rank): a
        # restarted daemon's counters continue across incarnations)
        m = self.metrics = metrics if metrics is not None else Metrics()
        self._m_el_roundtrips = m.counter("el.roundtrips", rank=rank)
        self._m_el_rtt = m.histogram("el.rtt_s", rank=rank)
        self._m_gate_stalls = m.counter("gate.stalls", rank=rank)
        self._m_gate_stall_s = m.counter("gate.stall_s", rank=rank)
        self._m_log_bytes = m.counter("senderlog.bytes", rank=rank)
        self._m_log_spill = m.counter("senderlog.spill_bytes", rank=rank)
        self._m_log_gc = m.counter("senderlog.gc_bytes", rank=rank)
        self._m_log_ram = m.gauge("senderlog.ram_bytes", rank=rank)
        self._m_log_disk = m.gauge("senderlog.disk_bytes", rank=rank)
        self._m_log_msgs = m.gauge("senderlog.msgs", rank=rank)
        self._m_ckpt_bytes = m.counter("ckpt.bytes", rank=rank)
        self._m_ckpt_images = m.counter("ckpt.images", rank=rank)
        self._m_ckpt_push = m.histogram("ckpt.push_s", rank=rank)
        self._m_del_replayed = m.counter("deliveries.replayed", rank=rank)
        self._m_del_fresh = m.counter("deliveries.fresh", rank=rank)
        self._m_replay_s = m.histogram("ft.replay_s", rank=rank)
        # infrastructure-outage accounting (EL/CS/peer reconnects)
        self._m_outage_retries = m.counter("outage.retries", rank=rank)
        self._m_outage_backoff = m.counter("outage.backoff_s", rank=rank)
        self._m_outage_reconnects = m.counter("outage.reconnects", rank=rank)
        self._m_outage_el_down_s = m.counter("outage.el_down_s", rank=rank)
        self._m_outage_stalled = m.counter("outage.stalled_send_s", rank=rank)
        self._m_ckpt_aborted = m.counter("ckpt.aborted", rank=rank)
        # (send time, batch size) of EL batches awaiting acknowledgement
        self._el_inflight: deque[tuple[float, int]] = deque()
        self._start_t = 0.0
        self._caught_up = False

        # the replicated checkpoint store (quorum push, failover fetch)
        self._store: Optional[StoreClient] = None
        if self.cs_names:
            self._store = StoreClient(
                sim, cfg, fabric, host, self.cs_names, rank,
                tracer=self.tracer, metrics=m, rng=rng,
                on_retry=self._note_outage_retry,
            )

    # ------------------------------------------------------------------
    # startup / recovery (phases A and B)
    # ------------------------------------------------------------------
    def start(self) -> Generator[Future, Any, None]:
        """Bring the daemon up; on restart, run recovery first."""
        self._start_t = self.sim.now
        self._acceptor = self.fabric.listen(f"daemon:{self.rank}", self.host)
        # connect to the event logger and (phase A) download logged events;
        # the EL may itself be crashed or partitioned away right now, so
        # this (like every infrastructure connection) retries with backoff
        self._el_end = yield from self._el_connect()
        self._el_up.open()
        image: Optional[CheckpointImage] = None
        if self.incarnation > 0:
            # overlap the two recovery downloads: the event-log prefetch
            # (from clock 0 — ReplayState drops what the image covers)
            # runs while the streamed image fetch is still arriving
            prefetch: Future = Future(self.sim, name=f"d{self.rank}.elprefetch")
            self._spawn(self._prefetch_events(prefetch), "el.prefetch")
            if self._store is not None:
                image = yield from self._store.fetch()
            if image is not None:
                self._restore(image)
            events = yield prefetch
            self.replay = ReplayState(image, events)
            self.needs_restart1 = set(self.links)
            self.tracer.emit(
                self.sim.now,
                "v2.restart",
                rank=self.rank,
                incarnation=self.incarnation,
                from_send_seq=self.restart_base_send,
                from_recv_seq=self.restart_base_recv,
                replay_events=len(self.replay.events),
            )
        # control-plane connections (best-effort under partitions: a daemon
        # that cannot reach the dispatcher still computes, it just cannot
        # report UNRECOVERABLE states)
        if self.dispatcher_name is not None:
            self._disp_end = yield from connect_with_retry(
                self.sim, self.fabric, self.host, self.dispatcher_name,
                hello=("HELLO", self.rank, self.incarnation),
                policy=RetryPolicy.from_config(
                    self.cfg, max_tries=self.cfg.peer_retry_tries
                ),
                rng=self._rng, on_retry=self._note_outage_retry,
            )
        if (
            self.replay is not None
            and self.replay.image is None
            and self.replay.events
            and min(e.rclock for e in self.replay.events) > 1
        ):
            # a checkpoint pruned the event prefix (and its GC destroyed the
            # senders' copies), but the image itself is gone with the
            # checkpoint server: this node cannot be replayed.  The paper's
            # "restart from scratch, at worst" can only mean the whole
            # application: tell the dispatcher.
            if self._disp_end is not None:
                yield from self._disp_end.write(16, ("UNRECOVERABLE", self.rank))
            return  # never open the ready gate; the global restart reaps us
        if self.sched_name is not None:
            try:
                self._sched_end = self._connect(
                    self.sched_name, hello=("HELLO", self.rank, self.incarnation)
                )
            except ConnectionRefused:
                self._sched_end = None
        # peer connections: initially to lower ranks only (they listen
        # first); a restarted daemon reconnects to everyone it can reach
        targets = (
            list(self.links)
            if self.incarnation > 0
            else [q for q in self.links if q < self.rank]
        )
        for q in targets:
            try:
                end = self.fabric.connect(
                    self.host,
                    f"daemon:{q}",
                    hello=("PEER", self.rank, self.incarnation),
                    window=self.cfg.stream_window,
                )
            except ConnectionRefused:
                if self.incarnation > 0:
                    # the peer may be alive but partitioned away: unlike a
                    # crashed peer (which reconnects to us on restart), it
                    # will never initiate, so keep trying in the background
                    link = self.links[q]
                    self._spawn(
                        self._peer_reconnect(q, link.epoch), f"re{q}"
                    )
                continue  # peer is down; it will connect to us when it returns
            self._adopt_link(q, end, initiator=self.rank)
        self._spawn(self._accept_loop(), "accept")
        self._spawn(self._forward_loop(), "fwd")
        self._spawn(self._el_writer(), "el.tx")
        self._spawn(self._el_reader(self._el_end), "el.rx")
        if self._sched_end is not None:
            self._spawn(self._sched_loop(), "sched")
        self.ready.open()
        self._maybe_caught_up()

    def _connect(self, name: str, hello: Any = None) -> StreamEnd:
        return self.fabric.connect(self.host, name, hello=hello)

    def _spawn(self, gen, label: str) -> None:
        # not supervised: daemon loops handle expected failures
        # (Disconnected, HostDown) themselves; anything else is a bug and
        # must crash the simulation loudly
        p = self.sim.spawn(
            gen, name=f"d{self.rank}.{label}.i{self.incarnation}", supervised=False
        )
        self.host.register(p)

    def _note_outage_retry(self, attempt: int, delay: float) -> None:
        self._m_outage_retries.inc()
        self._m_outage_backoff.inc(delay)

    def _prefetch_events(self, fut: Future):
        """Phase-A event download, overlapped with the image fetch."""
        events = yield from self._download_events(from_rclock=0)
        fut.resolve(events)

    def _restore(self, image: CheckpointImage) -> None:
        # the sequences restart at 0: fast-forwarding the recorded history
        # re-accumulates them deterministically and must land exactly on
        # the image values at the boundary (asserted in ckpt_poll); the
        # HR/HS vectors carry over for the RESTART handshake
        self.clock = ClockState(
            hr=dict(image.clock.hr), hs=dict(image.clock.hs)
        )
        self.app_footprint = image.app_footprint
        self.saved = SenderLog.restore(
            self._log_ram_budget(),
            self.cfg.cn_swap,
            image.saved,
            slab=self.cfg.log_slab_bytes,
        )
        self.delivery_log = list(image.delivery_log)
        self.forwarded_hw = dict(image.clock.hr)
        self.op_index = 0
        self.ckpt_seq = image.seq
        self.app_footprint = image.app_footprint
        self.region_versions = list(image.regions)
        self._resize_regions()
        self.restart_base_send = image.clock.send_seq
        self.restart_base_recv = image.clock.recv_seq
        # local cost of jumping to the checkpoint (Condor restart)
        # charged by the dispatcher via restart_spawn_delay; nothing here

    def _download_events(
        self, from_rclock: Optional[int] = None
    ) -> Generator[Future, Any, list[EventRecord]]:
        base = self.restart_base_recv if from_rclock is None else from_rclock
        while True:
            end = self._el_end
            try:
                yield from end.write(
                    16, ("DOWNLOAD", self.rank, base)
                )
                _, reply = yield end.read()
            except Disconnected:
                # the EL crashed mid-download: reconnect (its event store
                # is durable across service restarts) and re-ask
                self._el_end = yield from self._el_connect()
                continue
            kind, records = reply
            return list(records)

    # ------------------------------------------------------------------
    # link management
    # ------------------------------------------------------------------
    def _accept_loop(self):
        while True:
            end, hello = yield self._acceptor.accept()
            kind, peer_rank, peer_inc = hello
            self._adopt_link(peer_rank, end, initiator=peer_rank)

    def _adopt_link(self, q: int, end: StreamEnd, initiator: int) -> None:
        """Install (or replace) the connection to peer ``q``.

        Two daemons restarting simultaneously cross-connect; both sides
        must settle on the *same* stream or each would transmit on a
        stream the other is not reading.  Tie-break: the stream initiated
        by the lower rank is canonical.
        """
        link = self.links[q]
        canonical = min(self.rank, q)
        if link.up() and link.initiator == canonical and initiator != canonical:
            return  # keep the canonical stream; ignore the crossed one
        link.end = end
        link.initiator = initiator
        link.epoch += 1
        # drop whatever was queued for the old connection: every app packet
        # is in SAVED, and the RESTART handshake re-sends what is needed
        link.tx = Queue(self.sim, name=f"d{self.rank}->d{q}.tx.e{link.epoch}")
        self._spawn(self._tx_loop(q, link, link.epoch), f"tx{q}e{link.epoch}")
        self._spawn(self._rx_loop(q, link, link.epoch), f"rx{q}e{link.epoch}")
        if q in self.needs_restart1:
            # stays armed until RESTART2 arrives: a replaced stream may have
            # swallowed an earlier RESTART1 (handling is idempotent)
            self._enqueue_ctrl(q, ("RESTART1", self.clock.hr.get(q, 0)))

    def _link_down(self, q: int, epoch: int) -> None:
        link = self.links[q]
        if link.epoch != epoch:
            return  # already replaced
        link.end = None
        if self.device is not None:
            self.device.notify_peer_restart_pending(q)
        # whatever stream comes next (the peer's restart connect, a link
        # re-establishment after a flap), both sides must resynchronize:
        # the symmetric RESTART1 exchange re-sends each direction's saved
        # messages past the other's delivery watermark and repairs pending
        # rendezvous state; duplicates die on the forwarded_hw discard
        self.needs_restart1.add(q)
        if self.rank < q:
            # one side must actively re-establish a flapped link (a mere
            # link break restarts no daemon, so nobody else would connect);
            # the canonical initiator retries, the other side listens.  If
            # the peer actually crashed, its restarted daemon's connect
            # simply wins the race (crossed-stream tie-break).
            self._spawn(self._peer_reconnect(q, epoch), f"re{q}")

    def _peer_reconnect(self, q: int, epoch0: int):
        """Re-establish the link to ``q`` with backoff (flap/partition)."""
        link = self.links[q]

        def settled() -> bool:
            return link.epoch != epoch0 or link.up()

        end = yield from connect_with_retry(
            self.sim, self.fabric, self.host, f"daemon:{q}",
            hello=("PEER", self.rank, self.incarnation),
            window=self.cfg.stream_window,
            policy=RetryPolicy.from_config(
                self.cfg, max_tries=self.cfg.peer_retry_tries
            ),
            rng=self._rng, on_retry=self._note_outage_retry,
            giveup=settled,
        )
        if end is None:
            return  # link already replaced, or a restarted peer will connect
        self._m_outage_reconnects.inc()
        self.tracer.emit(
            self.sim.now, "v2.peer_reconnect", rank=self.rank, peer=q
        )
        self._adopt_link(q, end, initiator=self.rank)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def enqueue_app_packet(self, dst: int, pkt: Packet) -> None:
        """Queue one application packet on the per-peer transmit loop."""
        self.links[dst].tx.put(pkt)

    def _enqueue_ctrl(self, dst: int, ctrl: tuple) -> None:
        self.links[dst].tx.put(ctrl)

    def _tx_loop(self, q: int, link: PeerLink, epoch: int):
        myq = link.tx
        while link.epoch == epoch:
            try:
                item = yield myq.get()
            except Disconnected:
                return
            if isinstance(item, tuple):  # control message, not gated
                end = link.end
                if end is None or link.epoch != epoch:
                    return
                try:
                    yield from end.write(24, item)
                except (Disconnected, HostDown):
                    self._link_down(q, epoch)
                    return
                continue
            pkt: Packet = item
            if "bypass_waitlogged" in self.mutations:
                pass  # test-only: skip the pessimistic gate entirely
            elif self.el_gate.is_open:
                yield self.el_gate.waitfor()  # WAITLOGGED (gate open: free)
            else:
                # WAITLOGGED: the pessimistic gate — measure the stall
                self._m_gate_stalls.inc()
                t0 = self.sim.now
                down0 = self._el_down_since
                yield self.el_gate.waitfor()
                self._m_gate_stall_s.inc(self.sim.now - t0)
                if down0 is not None or self._el_down_since is not None:
                    # the stall overlapped an EL outage: the gate held
                    # because acknowledgements could not arrive at all
                    self._m_outage_stalled.inc(self.sim.now - t0)
            end = link.end
            if end is None or link.epoch != epoch:
                return  # packet dropped; SAVED + handshake recover it
            total = pkt.payload_bytes + self.cfg.packet_header_bytes
            sizes = segment_sizes(total, self.cfg.chunk_bytes)
            self.tracer.emit(
                self.sim.now,
                "v2.tx",
                rank=self.rank,
                dst=q,
                pkt_kind=pkt.kind.value,
                sclock=pkt.env.sclock,
            )
            try:
                for nbytes in sizes[:-1]:
                    yield from end.write(nbytes, None)
                yield from end.write(sizes[-1], pkt)
            except (Disconnected, HostDown):
                self._link_down(q, epoch)
                return
            self.cpu_tax_owed += (
                self.cfg.daemon_cpu_per_msg
                + self.cfg.daemon_cpu_per_byte * pkt.payload_bytes
            )

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _rx_loop(self, q: int, link: PeerLink, epoch: int):
        end = link.end
        while link.epoch == epoch:
            try:
                _, payload = yield end.read()
            except Disconnected:
                self._link_down(q, epoch)
                return
            if payload is None:
                continue  # mid-packet chunk
            if isinstance(payload, tuple):
                self._handle_ctrl(q, payload)
            else:
                self._handle_app_packet(q, payload)

    def _handle_ctrl(self, q: int, msg: tuple) -> None:
        kind = msg[0]
        if kind == "RESTART1":
            # q restarted: it has everything up to hp from us
            hp = msg[1]
            if hp < self.saved.gc_floor.get(q, 0):
                # q lost its checkpoint: it asks for messages our garbage
                # collector already destroyed -- unrecoverable locally
                self._spawn(self._report_unrecoverable(q), "unrec")
                return
            self.clock.hs[q] = hp
            self._enqueue_ctrl(q, ("RESTART2", self.clock.hr.get(q, 0)))
            for m in self.saved.messages_for(q, after_sclock=hp):
                self._enqueue_replay_packet(q, m.env)
            if self.device is not None:
                self.device.notify_peer_restarted(q)
            self.tracer.emit(
                self.sim.now, "v2.restart1", at=self.rank, peer=q, hp=hp
            )
        elif kind == "RESTART2":
            # we restarted: q has everything up to hq from us; re-send the
            # pre-checkpoint saved messages it lacks (in-transit at crash)
            hq = msg[1]
            self.needs_restart1.discard(q)
            self.clock.hs[q] = max(self.clock.hs.get(q, 0), hq)
            for m in self.saved.messages_for(q, after_sclock=hq):
                if m.sclock <= self.restart_base_send:
                    self._enqueue_replay_packet(q, m.env)
        elif kind == "RTSDUP":
            # the receiver already delivered our rendezvous message: the
            # payload stays in SAVED; complete the pending send locally
            if self.device is not None:
                self.device.resolve_duplicate_rts(msg[1])
        elif kind == "GC":
            # audited before collecting: the *threshold* is the safety
            # fact (a too-high value discards payloads an un-checkpointed
            # receiver may still ask to be re-sent)
            self.tracer.emit(
                self.sim.now, "v2.gc", rank=self.rank, peer=q, upto=msg[1]
            )
            freed = self.saved.collect(q, msg[1])
            if freed:
                self._m_log_gc.inc(freed)
                self._note_log_occupancy()
        else:  # pragma: no cover
            raise RuntimeError(f"daemon got control {kind!r}")

    def _enqueue_replay_packet(self, dst: int, env: Envelope) -> None:
        """Old saved messages are re-sent with the payload inline."""
        kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
        self.enqueue_app_packet(dst, Packet(kind, env, payload_bytes=env.nbytes))

    def _handle_app_packet(self, src: int, pkt: Packet) -> None:
        env = pkt.env
        if pkt.kind in _FIRST_KINDS:
            # duplicate discard (phase C): the RESTART handshake may re-send
            # messages we already passed up to the MPI process
            if env.sclock <= self.forwarded_hw.get(src, 0):
                self.dups_dropped += 1
                if pkt.kind is PacketKind.RTS:
                    # a discarded rendezvous request still needs an answer,
                    # or the (restarted) sender waits forever for a CTS:
                    # tell it we already have the message
                    self._enqueue_ctrl(src, ("RTSDUP", env.sclock))
                return
        if (
            self.replay is not None
            and self.replay.replaying()
            and pkt.kind in _FIRST_KINDS
        ):
            # the forced-order holdback applies to the packets that *start*
            # a delivery; CTS and rendezvous DATA complete an exchange the
            # event order already admitted and must pass through, or the
            # handshake deadlocks behind its own consumed event
            if "reorder_replay" in self.mutations:
                self._release(pkt)  # test-only: arrival order, not logged order
                return
            for released in self.replay.offer_packet(pkt):
                self._release(released)
            self._maybe_caught_up()
            return
        self._release(pkt)

    def _release(self, pkt: Packet) -> None:
        # the duplicate-discard watermark advances only when the *payload*
        # goes up: an RTS must not bump it, or a sender that crashes
        # between its RTS and its DATA would have the re-executed RTS
        # swallowed as a duplicate and the message would be lost
        if pkt.kind in _PAYLOAD_KINDS:
            src = pkt.env.src
            self.forwarded_hw[src] = max(
                self.forwarded_hw.get(src, 0), pkt.env.sclock
            )
        self._forward(pkt.env.src if pkt.kind is not PacketKind.CTS else pkt.env.dst, pkt)

    def _forward(self, src: int, pkt: Packet) -> None:
        """Ship a packet across the UNIX socket to the MPI process."""
        self._fwd_q.put((src, pkt))
        self.cpu_tax_owed += self.cfg.daemon_cpu_per_msg

    def _forward_loop(self):
        device = self.device
        while True:
            src, pkt = yield self._fwd_q.get()
            delay = self.cfg.unix_socket_latency + (
                (pkt.payload_bytes + self.cfg.packet_header_bytes)
                / self.cfg.unix_socket_bw
            )
            yield self.sim.timeout(delay)
            device.inbox.put((src, pkt))
            device.stats.bytes_received += pkt.payload_bytes
            device.stats.msgs_received += 1

    # ------------------------------------------------------------------
    # event logging
    # ------------------------------------------------------------------
    def log_event(self, rec: EventRecord) -> None:
        """Queue a reception event for the event logger; closes the gate."""
        self._el_outstanding += 1
        self.el_gate.close()
        self._el_q.put(rec)
        self.tracer.emit(
            self.sim.now,
            "v2.log_event",
            rank=self.rank,
            rclock=rec.rclock,
            src=rec.src,
            sclock=rec.sclock,
        )

    def _el_connect(self) -> Generator[Future, Any, StreamEnd]:
        """Connect to the event logger, retrying with capped backoff.

        Exhausting the budget means the EL never came back within ~2
        minutes of simulated backoff: that violates the deployment
        contract (the supervisor restarts crashed services), so fail the
        simulation loudly rather than deadlock silently.
        """
        policy = RetryPolicy.from_config(self.cfg)
        end = yield from connect_with_retry(
            self.sim, self.fabric, self.host, self.el_name,
            policy=policy, rng=self._rng, on_retry=self._note_outage_retry,
        )
        if end is None:
            raise RuntimeError(
                f"rank {self.rank}: event logger {self.el_name} unreachable "
                f"after {policy.max_tries} attempts"
            )
        return end

    def _el_down(self, end: Optional[StreamEnd]) -> None:
        """Mark the EL connection lost and start the reconnect process."""
        if end is None or self._el_end is not end:
            return  # a stale loop noticed an already-replaced stream
        self._el_end = None
        self._el_up.close()
        self._el_down_since = self.sim.now
        self.tracer.emit(
            self.sim.now, "v2.el_down", rank=self.rank,
            outstanding=self._el_outstanding, unacked=len(self._el_unacked),
        )
        self._spawn(self._el_reconnect(), "el.re")

    def _el_reconnect(self):
        """Re-establish the EL link and re-push written-but-unacked batches.

        The WAITLOGGED gate stays closed throughout (``_el_outstanding``
        still counts the lost acknowledgements), so no application
        message escapes while its reception event is in doubt — the
        pessimistic property holds across the outage by construction.
        The server dedups re-pushed events by ``(rank, rclock)``, so the
        at-least-once re-push is idempotent; it still acknowledges every
        batch, which is what re-earns the lost acks.
        """
        down_since = self._el_down_since
        end = yield from self._el_connect()
        # acks of the old stream died with it: every unacked batch is
        # re-pushed, in order, ahead of anything the writer sends next
        repush = list(self._el_unacked)
        self._el_inflight.clear()
        self._el_end = end
        self._spawn(self._el_reader(end), "el.rx")
        for batch in repush:
            t0 = self.sim.now
            try:
                yield from end.write(
                    self.cfg.event_bytes * len(batch), ("EVENT", self.rank, batch)
                )
            except (Disconnected, HostDown):
                self._el_down(end)  # crashed again: the next round re-pushes
                return
            self._el_inflight.append((t0, len(batch)))
        outage_s = self.sim.now - down_since if down_since is not None else 0.0
        self._m_outage_reconnects.inc()
        self._m_outage_el_down_s.inc(outage_s)
        self._el_down_since = None
        self.tracer.emit(
            self.sim.now, "v2.el_reconnect", rank=self.rank,
            outage_s=outage_s, repushed=len(repush),
        )
        self._el_up.open()

    def _el_writer(self):
        while True:
            first = yield self._el_q.get()
            batch = [first]
            while len(batch) < self.cfg.el_batch_cap:
                ok, more = self._el_q.try_get()
                if not ok:
                    break
                batch.append(more)
            # exactly-once hand-off per stream generation: a batch joins
            # _el_unacked only once written, so the reconnector (which
            # re-pushes _el_unacked) and this writer never both send it
            while True:
                if not self._el_up.is_open:
                    yield self._el_up.waitfor()
                end = self._el_end
                if end is None:
                    continue  # raced with another disconnect; wait again
                t0 = self.sim.now
                try:
                    yield from end.write(
                        self.cfg.event_bytes * len(batch),
                        ("EVENT", self.rank, batch),
                    )
                except (Disconnected, HostDown):
                    self._el_down(end)
                    continue  # batch not in _el_unacked: resend it here
                self._el_unacked.append(batch)
                self._el_inflight.append((t0, len(batch)))
                self.events_pushed += len(batch)
                break

    def _el_reader(self, end: StreamEnd):
        while True:
            try:
                _, msg = yield end.read()
            except Disconnected:
                self._el_down(end)
                return
            kind, n = msg
            if kind == "ACK":
                if self._el_unacked:
                    self._el_unacked.popleft()
                self._el_outstanding = max(0, self._el_outstanding - n)
                self.tracer.emit(
                    self.sim.now, "v2.el_ack", rank=self.rank, n=n,
                    outstanding=self._el_outstanding,
                )
                if self._el_inflight:
                    t0, _batch = self._el_inflight.popleft()
                    self._m_el_roundtrips.inc()
                    self._m_el_rtt.observe(self.sim.now - t0)
                if self._el_outstanding == 0 and len(self._el_q) == 0:
                    self.el_gate.open()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def order_checkpoint(self) -> None:
        """Request a checkpoint at the next API-boundary safe point."""
        self.ckpt_requested = True

    def _resize_regions(self) -> None:
        """Fit the dirty-region vector to the application footprint."""
        n = -(-self.app_footprint // max(1, self.cfg.ckpt_chunk_bytes))
        if len(self.region_versions) < n:
            self.region_versions.extend([0] * (n - len(self.region_versions)))
        elif len(self.region_versions) > n:
            del self.region_versions[n:]

    def touch_region(self) -> None:
        """Dirty the memory region this operation phase writes.

        Which region an op dirties depends only on ``op_index`` (hashed
        per phase of ``ckpt_dirty_ops`` operations), never on wall time
        or arrival order, so a replayed execution dirties exactly the
        regions the original did and reconverges to the same versions.
        """
        if not self.region_versions:
            return
        phase = self.op_index // max(1, self.cfg.ckpt_dirty_ops)
        idx = stable_digest("dirty", phase) % len(self.region_versions)
        self.region_versions[idx] += 1

    def capture_image(self) -> CheckpointImage:
        """Snapshot the node's logical state as a checkpoint image."""
        self.ckpt_seq += 1
        return CheckpointImage(
            rank=self.rank,
            seq=self.ckpt_seq,
            op_count=self.op_index,
            clock=self.clock.snapshot(),
            saved=self.saved.snapshot(),
            delivery_log=list(self.delivery_log),
            app_footprint=self.app_footprint,
            regions=tuple(self.region_versions),
        )

    def start_image_push(self, image: CheckpointImage) -> None:
        """Stream the image to the checkpoint server in the background."""
        self._spawn(self._push_image(image), f"ckpt{image.seq}")

    def _push_image(self, image: CheckpointImage):
        t0 = self.sim.now
        # decompose into content-addressed chunks and push to the replica
        # set; durable once the write quorum committed.  A briefly-down
        # replica (supervisor restart, partition) comes back within the
        # client's retry budget; losing the quorum entirely degrades to a
        # scheduler-retried abort exactly as a lost single server did
        manifest, chunks = chunk_image(image, self.cfg.ckpt_chunk_bytes)
        ok = yield from self._store.push(
            manifest, chunks, self.cfg.ckpt_incremental
        )
        if not ok:
            yield from self._ckpt_failed(image, self._store.last_push_why)
            return
        total = image.image_bytes
        self.checkpoints_done += 1
        self._m_ckpt_images.inc()
        self._m_ckpt_bytes.inc(total)
        self._m_ckpt_push.observe(self.sim.now - t0)
        # the completion record (with the image's HR vector) must precede
        # the GC orders it authorizes, so an online observer always sees
        # the checkpoint's coverage before any sender acts on it
        self.tracer.emit(
            self.sim.now,
            "v2.ckpt",
            rank=self.rank,
            seq=image.seq,
            clock=image.clock.h,
            nbytes=total,
            hr=dict(image.clock.hr),
        )
        # garbage collection: peers drop copies we will never ask for again.
        # Thresholds come from the *image's* HR vector — the live clock has
        # already advanced past deliveries the image does not cover.
        for q, link in self.links.items():
            thr = image.clock.hr.get(q, 0)
            if "premature_gc" in self.mutations:
                thr += 5  # test-only: GC past the checkpoint's coverage
            self._enqueue_ctrl(q, ("GC", thr))
        el_end = self._el_end
        if el_end is not None:
            try:
                yield from el_end.write(
                    16, ("PRUNE", self.rank, image.clock.recv_seq)
                )
            except Disconnected:
                # PRUNE is a best-effort space optimization: un-pruned
                # events only cost the (restarted) EL memory
                self._el_down(el_end)
        if self._sched_end is not None:
            try:
                yield from self._sched_end.write(
                    16, ("CKPT_DONE", self.rank, image.clock.h, image.seq)
                )
            except Disconnected:
                pass

    def _ckpt_failed(self, image: CheckpointImage, why: str):
        """Account an aborted push and ask the scheduler to retry it."""
        self.ckpt_aborts += 1
        self._m_ckpt_aborted.inc()
        self.tracer.emit(
            self.sim.now, "v2.ckpt_abort", rank=self.rank, seq=image.seq,
            why=why,
        )
        if self._sched_end is not None:
            try:
                yield from self._sched_end.write(16, ("CKPT_FAIL", self.rank))
            except Disconnected:
                pass
        else:
            yield self.sim.timeout(0.0)

    # ------------------------------------------------------------------
    # scheduler protocol
    # ------------------------------------------------------------------
    def _sched_loop(self):
        while True:
            end = self._sched_end
            if end is None:
                return
            try:
                _, msg = yield end.read()
            except Disconnected:
                # a flapped control link: reconnect so checkpoint orders
                # keep flowing (the scheduler re-registers us on accept)
                self._sched_end = yield from connect_with_retry(
                    self.sim, self.fabric, self.host, self.sched_name,
                    hello=("HELLO", self.rank, self.incarnation),
                    policy=RetryPolicy.from_config(
                        self.cfg, max_tries=self.cfg.peer_retry_tries
                    ),
                    rng=self._rng, on_retry=self._note_outage_retry,
                )
                continue
            if msg[0] == "STATUS_REQ":
                status = (
                    "STATUS",
                    self.rank,
                    {
                        "logged_bytes": self.saved.bytes_total,
                        "logged_msgs": len(self.saved),
                        "bytes_sent": self.device.stats.bytes_sent if self.device else 0,
                        "bytes_received": self.device.stats.bytes_received
                        if self.device
                        else 0,
                        "finalized": self.finalized,
                    },
                )
                try:
                    yield from end.write(32, status)
                except Disconnected:
                    continue  # the next read notices and reconnects
            elif msg[0] == "CKPT_ORDER":
                self.order_checkpoint()

    # ------------------------------------------------------------------
    # lifecycle notifications
    # ------------------------------------------------------------------
    def _report_unrecoverable(self, q: int):
        if self._disp_end is not None:
            try:
                yield from self._disp_end.write(16, ("UNRECOVERABLE", q))
            except Disconnected:  # pragma: no cover
                pass

    def notify_finalized(self) -> Generator[Future, Any, None]:
        """Tell the dispatcher this rank's MPI process completed."""
        self.finalized = True
        if self._disp_end is not None:
            try:
                yield from self._disp_end.write(16, ("FINALIZED", self.rank))
            except Disconnected:
                pass
        else:
            yield self.sim.timeout(0.0)

    def take_cpu_tax(self) -> float:
        """Drain the daemon's accumulated CPU competition (LU effect)."""
        tax, self.cpu_tax_owed = self.cpu_tax_owed, 0.0
        return tax

    def _note_log_occupancy(self) -> None:
        """Refresh the sender-log occupancy gauges (time-weighted)."""
        now = self.sim.now
        on_disk = self.saved.bytes_on_disk
        self._m_log_ram.set(self.saved.bytes_total - on_disk, now)
        self._m_log_disk.set(on_disk, now)
        self._m_log_msgs.set(len(self.saved), now)

    def _maybe_caught_up(self) -> None:
        """Emit ``v2.caught_up`` once this incarnation's replay drains."""
        if self._caught_up or self.replay is None:
            return
        if self.replay.active(self.op_index):
            return
        self._caught_up = True
        replay_s = self.sim.now - self._start_t
        self._m_replay_s.observe(replay_s)
        self.tracer.emit(
            self.sim.now,
            "v2.caught_up",
            rank=self.rank,
            incarnation=self.incarnation,
            replay_s=replay_s,
        )

    def _log_ram_budget(self) -> int:
        """Main memory left for the message log after the application."""
        return max(
            64 << 20,
            self.cfg.cn_ram - self.app_footprint - self.cfg.os_reserved_ram,
        )

    def set_app_footprint(self, nbytes: int) -> None:
        """Declare the MPI process's memory; shrinks the log's RAM budget."""
        self.app_footprint = int(nbytes)
        self.saved.ram_budget = self._log_ram_budget()
        self._resize_regions()


def src_of(pkt: Packet) -> int:
    """The original sender of an application packet."""
    return pkt.env.src


class V2Device(ChannelDevice):
    """The channel device the MPI process drives (the six PI primitives)."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        rank: int,
        size: int,
        host: Host,
        daemon: V2Daemon,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(sim, cfg, rank, size, host, tracer=tracer)
        self.daemon = daemon
        daemon.device = self
        self._peer_restart_pending: set[int] = set()
        self._adi = None  # bound by the MPI object

    def bind_adi(self, adi) -> None:
        """Attach the progress engine (for recovery repairs)."""
        self._adi = adi

    # -- restart notifications (daemon -> ADI) -------------------------------
    def notify_peer_restart_pending(self, q: int) -> None:
        """A peer's connection dropped; repairs wait for its return."""
        self._peer_restart_pending.add(q)

    def resolve_duplicate_rts(self, sclock: int) -> None:
        """The receiver discarded our re-executed RTS as a duplicate."""
        if self._adi is None:
            return
        entry = self._adi._rndv_out.pop((self.rank, sclock), None)
        if entry is not None:
            _env, sreq = entry
            sreq.done.resolve_if_pending(None)
            self._wake_app(_env.dst)

    def _wake_app(self, src: int) -> None:
        """Unblock an MPI process waiting in pibrecv after external state
        changes (a no-op control packet re-runs its progress check)."""
        wake = Packet(
            PacketKind.CONTROL,
            Envelope(src=src, dst=self.rank, tag=-1, context=-1, nbytes=0),
            payload_bytes=0,
        )
        self.inbox.put((src, wake))

    def notify_peer_restarted(self, q: int) -> None:
        """A peer completed its RESTART handshake: repair ADI state."""
        self._peer_restart_pending.discard(q)
        if self._adi is not None:
            self._adi.peer_restarted(q)
            # repairing rendezvous state may complete requests the MPI
            # process is blocked waiting on inside pibrecv: wake it so the
            # progress loop re-checks its condition
            self._wake_app(q)

    # -- channel primitives ------------------------------------------------
    def piinit(self) -> Generator[Future, Any, None]:
        """Wait for the daemon's recovery/connections to complete."""
        yield self.daemon.ready.waitfor()

    def pifinish(self) -> Generator[Future, Any, None]:
        """Report completion to the dispatcher (daemon stays up)."""
        yield from self.daemon.notify_finalized()

    def pibsend(self, dst: int, pkt: Packet) -> Generator[Future, Any, bool]:
        """Hand one protocol packet to the daemon over the UNIX socket.

        Returns False when the packet was absorbed locally (fast-forward,
        or suppressed because the receiver already delivered it).
        """
        d = self.daemon
        env = pkt.env
        ff = self.fast_forward()
        if pkt.kind in _FIRST_KINDS and env.sclock == 0:
            env.sclock = d.clock.tick_send()
            if not ff:
                # the sender-based copy (and its RAM/disk cost)
                disk_bytes = d.saved.append(dst, env.sclock, env)
                d._m_log_bytes.inc(env.nbytes)
                if disk_bytes:
                    d._m_log_spill.inc(disk_bytes)
                d._note_log_occupancy()
                copy_time = env.nbytes / self.cfg.log_copy_bw
                if disk_bytes:
                    copy_time += disk_bytes / self.host.disk_bw
                handoff = (
                    self.cfg.unix_socket_latency
                    + (pkt.payload_bytes + self.cfg.packet_header_bytes)
                    / self.cfg.unix_socket_bw
                )
                yield self.sim.timeout(handoff + copy_time)
        elif not ff:
            handoff = (
                self.cfg.unix_socket_latency
                + (pkt.payload_bytes + self.cfg.packet_header_bytes)
                / self.cfg.unix_socket_bw
            )
            yield self.sim.timeout(handoff)
        if ff:
            return False
        suppressible = pkt.kind in _FIRST_KINDS
        if suppressible and d.clock.suppressed(dst, env.sclock):
            return False  # receiver already delivered it (re-execution)
        d.enqueue_app_packet(dst, pkt)
        self.stats.bytes_sent += pkt.payload_bytes
        self.stats.msgs_sent += 1
        return True

    def try_send_now(self, dst: int, pkt: Packet) -> bool:
        """Nonblocking control-packet send (daemon handoff)."""
        # small control packets (CTS): hand to the daemon, never blocks
        self.daemon.enqueue_app_packet(dst, pkt)
        return True

    def pibrecv(self) -> Generator[Future, Any, tuple[int, Packet]]:
        """Next packet: synthesized during fast-forward, else from the
        daemon-fed inbox."""
        if self.fast_forward():
            rec = self.daemon.replay.next_ff_delivery()
            if rec is None:
                raise RuntimeError(
                    f"rank {self.rank}: fast-forward starved of deliveries "
                    f"(op {self.daemon.op_index} < {self.daemon.replay.ff_target_ops})"
                )
            yield self.sim.timeout(0.0)
            env = rec.to_envelope(self.rank)
            kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
            return env.src, Packet(kind, env, payload_bytes=env.nbytes)
        return (yield from super().pibrecv())

    def _pump_ready(self) -> None:
        pass  # the daemon pushes directly into the inbox

    def _wait_for_traffic(self) -> Generator[Future, Any, None]:
        yield self.inbox.when_nonempty()

    # -- hooks ----------------------------------------------------------------
    def on_app_deliver(self, env: Envelope, probes: int) -> None:
        """Tick the receive sequence, record the delivery, log the event."""
        d = self.daemon
        rclock = d.clock.tick_recv(env.src, env.sclock)
        if self.fast_forward():
            # fed from the recorded delivery log: already on the EL
            d._m_del_replayed.inc()
            self.stats.deliveries_replayed += 1
            self.tracer.emit(
                self.sim.now, "v2.deliver", rank=self.rank, src=env.src,
                sclock=env.sclock, rclock=rclock, mode="ff",
            )
            return
        rec = DeliveryRecord(
            src=env.src,
            sclock=env.sclock,
            rclock=rclock,
            probes=probes,
            nbytes=env.nbytes,
            tag=env.tag,
            context=env.context,
            data=env.data,
        )
        d.delivery_log.append(rec)
        resume = d.replay.log_resume_clock if d.replay is not None else 0
        src_seen, sclock_seen = env.src, env.sclock
        if rclock > resume:
            d.log_event(EventRecord(rclock, env.src, env.sclock, probes))
            d._m_del_fresh.inc()
            self.stats.deliveries_fresh += 1
            mode = "fresh"
        else:
            # an event the EL already holds: a forced-order re-delivery
            d._m_del_replayed.inc()
            self.stats.deliveries_replayed += 1
            mode = "replay"
            if "reorder_replay" in d.mutations:
                # test-only: a replay that ran in arrival order is one
                # step out of phase with the logged order — record the
                # previous replayed event's identity at this clock
                prev = d._mut_prev_replay
                d._mut_prev_replay = (env.src, env.sclock)
                if prev is not None:
                    src_seen, sclock_seen = prev
        self.stats.events_logged += 1
        self.tracer.emit(
            self.sim.now, "v2.deliver", rank=self.rank, src=src_seen,
            sclock=sclock_seen, rclock=rclock, mode=mode,
        )

    def force_probe(self) -> Optional[bool]:
        """Replay-forced iprobe outcome (None: no override)."""
        d = self.daemon
        if d.replay is None:
            return None
        if self.fast_forward():
            if d.replay.ff_probe():
                # the logged successful probe: materialize the delivery so
                # the normal matching path can see it
                rec = d.replay.next_ff_delivery()
                if rec is not None:
                    env = rec.to_envelope(self.rank)
                    kind = (
                        PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
                    )
                    self.inbox.put((env.src, Packet(kind, env, payload_bytes=env.nbytes)))
                return None
            return False
        return d.replay.replay_probe()

    def fast_forward(self) -> bool:
        """True while re-running the pre-checkpoint prefix."""
        d = self.daemon
        return d.replay is not None and d.replay.fast_forward(d.op_index)

    def app_compute(self, seconds: float) -> Generator[Future, Any, None]:
        """Advance time for a compute segment (+ daemon CPU tax)."""
        if self.fast_forward():
            return
        yield self.sim.timeout(seconds + self.daemon.take_cpu_tax())

    def ckpt_poll(self) -> Generator[Future, Any, None]:
        """API-boundary safe point: take an ordered checkpoint here."""
        d = self.daemon
        d.op_index += 1
        if d.replay is None or d.op_index > d.replay.ff_target_ops:
            # ops inside the fast-forward prefix already had their dirty
            # effect captured by the restored image's region versions
            d.touch_region()
        if d.replay is not None:
            d._maybe_caught_up()
        if (
            d.replay is not None
            and d.op_index == d.replay.ff_target_ops
            and (d.clock.send_seq, d.clock.recv_seq)
            != (d.restart_base_send, d.restart_base_recv)
        ):
            raise RuntimeError(
                f"rank {self.rank}: fast-forward diverged: sequences "
                f"({d.clock.send_seq},{d.clock.recv_seq}) != checkpoint "
                f"({d.restart_base_send},{d.restart_base_recv})"
            )
        if (
            d.ckpt_requested
            and not (d.replay is not None and d.replay.active(d.op_index))
        ):
            d.ckpt_requested = False
            image = d.capture_image()
            yield self.sim.timeout(self.cfg.ckpt_fork_cost)
            d.start_image_push(image)
