"""MPICH-V2: the pessimistic sender-based message-logging channel.

Each computing node runs two cooperating entities (Section 4.4 of the
paper): the **MPI process** (our application generator, driving the
MPICH stack over :class:`V2Device`) and the **communication daemon**
(:class:`V2Daemon`), connected by a synchronous UNIX socket.  The
daemon owns every network socket and runs fully asynchronously, which
is why MPICH-V2 keeps both directions of a link flowing while P4
serializes them (Figure 9), and why an MPI_Isend costs only a local
copy (Table 1).

This module is the *protocol core*: logical clocks, the sender log
(SAVED), the RESTART1/RESTART2 control handling of Appendix A, and the
:class:`V2Device` channel facade.  The daemon's I/O machinery lives in
focused modules composed here — :class:`~repro.core.peers.PeerManager`
(the peer mesh), :class:`~repro.core.el_client.EventLogClient` (the
WAITLOGGED gate, cleared by cumulative quorum acks the logger
piggybacks on its serve traffic), :class:`~repro.core.ckpt_client.CheckpointClient`
(capture and quorum push),
:class:`~repro.core.ctrl_client.ControlPlaneClient` (dispatcher and
scheduler links), and :class:`~repro.core.delivery.DeliveryPipeline`
(duplicate discard, replay holdback, process forwarding) — all over
the shared :class:`~repro.runtime.session.Session` /
:class:`~repro.runtime.session.ServiceBase` connection layer.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..devices.base import ChannelDevice
from ..mpi.datatypes import Envelope
from ..mpi.protocol import Packet, PacketKind
from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..simnet.kernel import Future, Gate, Simulator
from ..simnet.node import Host
from ..simnet.trace import Tracer
from .ckpt_client import CheckpointClient
from .clocks import ClockState, EventRecord
from .ctrl_client import ControlPlaneClient
from .delivery import DeliveryPipeline
from .el_client import EventLogClient
from .peers import PeerManager
from .replay import CheckpointImage, DeliveryRecord, ReplayState
from .sender_log import SenderLog

__all__ = ["V2Daemon", "V2Device"]

_FIRST_KINDS = (PacketKind.SHORT, PacketKind.EAGER, PacketKind.RTS)


class V2Daemon:
    """One incarnation of the communication daemon for one rank."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        rank: int,
        size: int,
        host: Host,
        incarnation: int = 0,
        el_names: Any = ("el:0",),
        cs_names: Any = ("cs:0",),
        sched_name: Optional[str] = None,
        dispatcher_name: Optional[str] = "dispatcher",
        app_footprint: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        mutations: Optional[frozenset] = None,
        rng: Optional[Any] = None,
        job_key: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.fabric = fabric
        self.rank = rank
        self.size = size
        self.host = host
        self.incarnation = incarnation
        #: identity on *shared* infrastructure (EL shards, store
        #: replicas): ``None`` means the bare rank — the single-job
        #: deployment.  The control plane passes a job-qualified key so
        #: N jobs' daemons share those services without cross-talk.
        self.job_key = job_key
        if isinstance(el_names, str):
            el_names = (el_names,)
        #: every replica of this rank's EL shard (one = the classic EL)
        self.el_names: tuple[str, ...] = tuple(el_names)
        if isinstance(cs_names, str):
            cs_names = (cs_names,)
        self.cs_names: tuple[str, ...] = tuple(cs_names) if cs_names else ()
        self.sched_name = sched_name
        self.dispatcher_name = dispatcher_name
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: test-only protocol sabotage (``bypass_waitlogged``,
        #: ``reorder_replay``, ``premature_gc``, ``bypass_quorum``): each
        #: seeds one safety violation the online auditor must catch —
        #: never set in production
        self.mutations = frozenset(mutations or ())
        self._mut_prev_replay: Optional[tuple[int, int]] = None
        #: jitter source for reconnect backoff (a named sim RNG stream in
        #: production runs; ``None`` disables jitter — still deterministic)
        self._rng = rng

        # protocol state (restored from a checkpoint image at restart)
        self.clock = ClockState()
        self.app_footprint = app_footprint
        self.saved = SenderLog(
            ram_budget=self._log_ram_budget(),
            disk_budget=cfg.cn_swap,
            slab=cfg.log_slab_bytes,
        )
        self.delivery_log: list[DeliveryRecord] = []
        self.replay: Optional[ReplayState] = None
        self.op_index = 0
        # sequence values at the restored checkpoint (0,0 without an image)
        self.restart_base_send = 0
        self.restart_base_recv = 0
        self.device: Optional["V2Device"] = None

        self.finalized = False
        self.ready = Gate(sim, opened=False, name=f"d{rank}.ready")

        # accounting
        self.cpu_tax_owed = 0.0

        # metric handles, bound once (get-or-create by (name, rank): a
        # restarted daemon's counters continue across incarnations)
        m = self.metrics = metrics if metrics is not None else Metrics()
        self._m_log_bytes = m.counter("senderlog.bytes", rank=rank)
        self._m_log_spill = m.counter("senderlog.spill_bytes", rank=rank)
        self._m_log_gc = m.counter("senderlog.gc_bytes", rank=rank)
        self._m_log_ram = m.gauge("senderlog.ram_bytes", rank=rank)
        self._m_log_disk = m.gauge("senderlog.disk_bytes", rank=rank)
        self._m_log_msgs = m.gauge("senderlog.msgs", rank=rank)
        self._m_del_replayed = m.counter("deliveries.replayed", rank=rank)
        self._m_del_fresh = m.counter("deliveries.fresh", rank=rank)
        # infrastructure-outage accounting (EL/CS/peer reconnects)
        self._m_outage_retries = m.counter("outage.retries", rank=rank)
        self._m_outage_backoff = m.counter("outage.backoff_s", rank=rank)

        # the daemon's I/O components, over the shared session layer
        self.el = EventLogClient(
            sim, cfg, fabric, host, rank, self.el_names,
            spawn=self._spawn, tracer=self.tracer, metrics=m,
            rng=rng, on_retry=self._note_outage_retry,
            mutations=self.mutations, key=job_key,
        )
        self.peers = PeerManager(
            self, sim, fabric, host,
            tracer=self.tracer, metrics=m,
            rng=rng, on_retry=self._note_outage_retry,
        )
        self.ckpt = CheckpointClient(
            self, sim, cfg, fabric, host, self.cs_names,
            tracer=self.tracer, metrics=m,
            rng=rng, on_retry=self._note_outage_retry,
            key=job_key,
        )
        self.ckpt.resize_regions(self.app_footprint)
        self.ctrl = ControlPlaneClient(
            self, sim, cfg, fabric, host, dispatcher_name, sched_name,
            tracer=self.tracer, metrics=m,
            rng=rng, on_retry=self._note_outage_retry,
        )
        self.delivery = DeliveryPipeline(self, sim, tracer=self.tracer, metrics=m)

    # ------------------------------------------------------------------
    # startup / recovery (phases A and B)
    # ------------------------------------------------------------------
    def start(self) -> Generator[Future, Any, None]:
        """Bring the daemon up; on restart, run recovery first."""
        self.delivery.start_t = self.sim.now
        self.peers.listener.listen()
        # connect to the event logger and (phase A) download logged events;
        # the EL may itself be crashed or partitioned away right now, so
        # this (like every infrastructure connection) retries with backoff
        yield from self.el.connect()
        self.el.online()
        image: Optional[CheckpointImage] = None
        if self.incarnation > 0:
            # overlap the two recovery downloads: the event-log prefetch
            # (from clock 0 — ReplayState drops what the image covers)
            # runs while the streamed image fetch is still arriving
            prefetch: Future = Future(self.sim, name=f"d{self.rank}.elprefetch")
            self._spawn(self._prefetch_events(prefetch), "el.prefetch")
            if self.ckpt.store is not None:
                image = yield from self.ckpt.store.fetch()
            if image is not None:
                self._restore(image)
            events = yield prefetch
            self.replay = ReplayState(image, events)
            self.peers.needs_restart1 = set(self.peers.links)
            self.tracer.emit(
                self.sim.now,
                "v2.restart",
                rank=self.rank,
                incarnation=self.incarnation,
                from_send_seq=self.restart_base_send,
                from_recv_seq=self.restart_base_recv,
                replay_events=len(self.replay.events),
            )
        # control-plane connections (best-effort under partitions: a daemon
        # that cannot reach the dispatcher still computes, it just cannot
        # report UNRECOVERABLE states)
        yield from self.ctrl.connect_dispatcher()
        if (
            self.replay is not None
            and self.replay.image is None
            and self.replay.events
            and min(e.rclock for e in self.replay.events) > 1
        ):
            # a checkpoint pruned the event prefix (and its GC destroyed the
            # senders' copies), but the image itself is gone with the
            # checkpoint server: this node cannot be replayed.  The paper's
            # "restart from scratch, at worst" can only mean the whole
            # application: tell the dispatcher.
            if self.ctrl.disp_end is not None:
                yield from self.ctrl.disp_end.write(
                    16, ("UNRECOVERABLE", self.rank)
                )
            return  # never open the ready gate; the global restart reaps us
        self.ctrl.connect_scheduler()
        # peer connections: initially to lower ranks only (they listen
        # first); a restarted daemon reconnects to everyone it can reach
        self.peers.connect_initial()
        self.peers.listener.run_accept()
        self._spawn(self.delivery.forward_loop(), "fwd")
        self.el.start_io()
        self.ctrl.start_sched_loop()
        if self.cfg.hb_interval > 0:
            self.ctrl.start_heartbeat(self.cfg.hb_interval, self.cfg.hb_timeout)
        self.ready.open()
        self.delivery.maybe_caught_up()

    def _spawn(self, gen, label: str) -> None:
        # not supervised: daemon loops handle expected failures
        # (Disconnected, HostDown) themselves; anything else is a bug and
        # must crash the simulation loudly
        p = self.sim.spawn(
            gen, name=f"d{self.rank}.{label}.i{self.incarnation}", supervised=False
        )
        self.host.register(p)

    def _note_outage_retry(self, attempt: int, delay: float) -> None:
        self._m_outage_retries.inc()
        self._m_outage_backoff.inc(delay)

    def _prefetch_events(self, fut: Future):
        """Phase-A event download, overlapped with the image fetch."""
        events = yield from self.el.download(from_rclock=0)
        fut.resolve(events)

    def _restore(self, image: CheckpointImage) -> None:
        # the sequences restart at 0: fast-forwarding the recorded history
        # re-accumulates them deterministically and must land exactly on
        # the image values at the boundary (asserted in ckpt_poll); the
        # HR/HS vectors carry over for the RESTART handshake
        self.clock = ClockState(hr=dict(image.clock.hr), hs=dict(image.clock.hs))
        self.app_footprint = image.app_footprint
        self.saved = SenderLog.restore(
            self._log_ram_budget(),
            self.cfg.cn_swap,
            image.saved,
            slab=self.cfg.log_slab_bytes,
        )
        self.delivery_log = list(image.delivery_log)
        self.delivery.forwarded_hw = dict(image.clock.hr)
        self.op_index = 0
        self.ckpt.restore(image)
        self.restart_base_send = image.clock.send_seq
        self.restart_base_recv = image.clock.recv_seq
        # local cost of jumping to the checkpoint (Condor restart)
        # charged by the dispatcher via restart_spawn_delay; nothing here

    # ------------------------------------------------------------------
    # transmit / protocol dispatch
    # ------------------------------------------------------------------
    def _handle_ctrl(self, q: int, msg: tuple) -> None:
        kind = msg[0]
        if kind == "RESTART1":
            # q restarted: it has everything up to hp from us
            hp = msg[1]
            if hp < self.saved.gc_floor.get(q, 0):
                # q lost its checkpoint: it asks for messages our garbage
                # collector already destroyed -- unrecoverable locally
                self._spawn(self.ctrl.report_unrecoverable(q), "unrec")
                return
            self.clock.hs[q] = hp
            self.peers.enqueue_ctrl(q, ("RESTART2", self.clock.hr.get(q, 0)))
            for m in self.saved.messages_for(q, after_sclock=hp):
                self.delivery.enqueue_replay(q, m.env)
            if self.device is not None:
                self.device.notify_peer_restarted(q)
            self.tracer.emit(
                self.sim.now, "v2.restart1", at=self.rank, peer=q, hp=hp
            )
        elif kind == "RESTART2":
            # we restarted: q has everything up to hq from us; re-send the
            # pre-checkpoint saved messages it lacks (in-transit at crash)
            hq = msg[1]
            self.peers.needs_restart1.discard(q)
            self.tracer.emit(
                self.sim.now, "v2.restart2", rank=self.rank, peer=q,
                remaining=len(self.peers.needs_restart1),
            )
            self.clock.hs[q] = max(self.clock.hs.get(q, 0), hq)
            for m in self.saved.messages_for(q, after_sclock=hq):
                if m.sclock <= self.restart_base_send:
                    self.delivery.enqueue_replay(q, m.env)
        elif kind == "RTSDUP":
            # the receiver already delivered our rendezvous message: the
            # payload stays in SAVED; complete the pending send locally
            if self.device is not None:
                self.device.resolve_duplicate_rts(msg[1])
        elif kind == "GC":
            # audited before collecting: the *threshold* is the safety
            # fact (a too-high value discards payloads an un-checkpointed
            # receiver may still ask to be re-sent)
            self.tracer.emit(
                self.sim.now, "v2.gc", rank=self.rank, peer=q, upto=msg[1]
            )
            freed = self.saved.collect(q, msg[1])
            if freed:
                self._m_log_gc.inc(freed)
                self._note_log_occupancy()
        else:  # pragma: no cover
            raise RuntimeError(f"daemon got control {kind!r}")

    # ------------------------------------------------------------------
    # lifecycle notifications
    # ------------------------------------------------------------------
    def notify_finalized(self) -> Generator[Future, Any, None]:
        """Tell the dispatcher this rank's MPI process completed."""
        self.finalized = True
        yield from self.ctrl.report_finalized()

    def take_cpu_tax(self) -> float:
        """Drain the daemon's accumulated CPU competition (LU effect)."""
        tax, self.cpu_tax_owed = self.cpu_tax_owed, 0.0
        return tax

    def _note_log_occupancy(self) -> None:
        """Refresh the sender-log occupancy gauges (time-weighted)."""
        now = self.sim.now
        on_disk = self.saved.bytes_on_disk
        self._m_log_ram.set(self.saved.bytes_total - on_disk, now)
        self._m_log_disk.set(on_disk, now)
        self._m_log_msgs.set(len(self.saved), now)

    def _log_ram_budget(self) -> int:
        """Main memory left for the message log after the application."""
        return max(
            64 << 20,
            self.cfg.cn_ram - self.app_footprint - self.cfg.os_reserved_ram,
        )

    def set_app_footprint(self, nbytes: int) -> None:
        """Declare the MPI process's memory; shrinks the log's RAM budget."""
        self.app_footprint = int(nbytes)
        self.saved.ram_budget = self._log_ram_budget()
        self.ckpt.resize_regions(self.app_footprint)


class V2Device(ChannelDevice):
    """The channel device the MPI process drives (the six PI primitives)."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        rank: int,
        size: int,
        host: Host,
        daemon: V2Daemon,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(sim, cfg, rank, size, host, tracer=tracer)
        self.daemon = daemon
        daemon.device = self
        self._peer_restart_pending: set[int] = set()
        self._adi = None  # bound by the MPI object

    def bind_adi(self, adi) -> None:
        """Attach the progress engine (for recovery repairs)."""
        self._adi = adi

    # -- restart notifications (daemon -> ADI) -------------------------------
    def notify_peer_restart_pending(self, q: int) -> None:
        """A peer's connection dropped; repairs wait for its return."""
        self._peer_restart_pending.add(q)

    def resolve_duplicate_rts(self, sclock: int) -> None:
        """The receiver discarded our re-executed RTS as a duplicate."""
        if self._adi is None:
            return
        entry = self._adi._rndv_out.pop((self.rank, sclock), None)
        if entry is not None:
            _env, sreq = entry
            sreq.done.resolve_if_pending(None)
            self._wake_app(_env.dst)

    def _wake_app(self, src: int) -> None:
        """Unblock an MPI process waiting in pibrecv after external state
        changes (a no-op control packet re-runs its progress check)."""
        wake = Packet(
            PacketKind.CONTROL,
            Envelope(src=src, dst=self.rank, tag=-1, context=-1, nbytes=0),
            payload_bytes=0,
        )
        self.inbox.put((src, wake))

    def notify_peer_restarted(self, q: int) -> None:
        """A peer completed its RESTART handshake: repair ADI state."""
        self._peer_restart_pending.discard(q)
        if self._adi is not None:
            self._adi.peer_restarted(q)
            # repairing rendezvous state may complete requests the MPI
            # process is blocked waiting on inside pibrecv: wake it so the
            # progress loop re-checks its condition
            self._wake_app(q)

    # -- channel primitives ------------------------------------------------
    def piinit(self) -> Generator[Future, Any, None]:
        """Wait for the daemon's recovery/connections to complete."""
        yield self.daemon.ready.waitfor()

    def pifinish(self) -> Generator[Future, Any, None]:
        """Report completion to the dispatcher (daemon stays up)."""
        yield from self.daemon.notify_finalized()

    def pibsend(self, dst: int, pkt: Packet) -> Generator[Future, Any, bool]:
        """Hand one protocol packet to the daemon over the UNIX socket.

        Returns False when the packet was absorbed locally (fast-forward,
        or suppressed because the receiver already delivered it).
        """
        d = self.daemon
        env = pkt.env
        ff = self.fast_forward()
        if pkt.kind in _FIRST_KINDS and env.sclock == 0:
            env.sclock = d.clock.tick_send()
            if not ff:
                # the sender-based copy (and its RAM/disk cost)
                disk_bytes = d.saved.append(dst, env.sclock, env)
                d._m_log_bytes.inc(env.nbytes)
                if disk_bytes:
                    d._m_log_spill.inc(disk_bytes)
                d._note_log_occupancy()
                copy_time = env.nbytes / self.cfg.log_copy_bw
                if disk_bytes:
                    copy_time += disk_bytes / self.host.disk_bw
                handoff = (
                    self.cfg.unix_socket_latency
                    + (pkt.payload_bytes + self.cfg.packet_header_bytes)
                    / self.cfg.unix_socket_bw
                )
                yield self.sim.pause(handoff + copy_time)
        elif not ff:
            handoff = (
                self.cfg.unix_socket_latency
                + (pkt.payload_bytes + self.cfg.packet_header_bytes)
                / self.cfg.unix_socket_bw
            )
            yield self.sim.pause(handoff)
        if ff:
            return False
        suppressible = pkt.kind in _FIRST_KINDS
        if suppressible and d.clock.suppressed(dst, env.sclock):
            return False  # receiver already delivered it (re-execution)
        d.peers.enqueue_app(dst, pkt)
        self.stats.bytes_sent += pkt.payload_bytes
        self.stats.msgs_sent += 1
        return True

    def try_send_now(self, dst: int, pkt: Packet) -> bool:
        """Nonblocking control-packet send (daemon handoff)."""
        # small control packets (CTS): hand to the daemon, never blocks
        self.daemon.peers.enqueue_app(dst, pkt)
        return True

    def pibrecv(self) -> Generator[Future, Any, tuple[int, Packet]]:
        """Next packet: synthesized during fast-forward, else from the
        daemon-fed inbox."""
        if self.fast_forward():
            rec = self.daemon.replay.next_ff_delivery()
            if rec is None:
                raise RuntimeError(
                    f"rank {self.rank}: fast-forward starved of deliveries "
                    f"(op {self.daemon.op_index} < {self.daemon.replay.ff_target_ops})"
                )
            yield self.sim.pause(0.0)
            env = rec.to_envelope(self.rank)
            kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
            return env.src, Packet(kind, env, payload_bytes=env.nbytes)
        return (yield from super().pibrecv())

    def _pump_ready(self) -> None:
        pass  # the daemon pushes directly into the inbox

    def _wait_for_traffic(self) -> Generator[Future, Any, None]:
        yield self.inbox.when_nonempty()

    # -- hooks ----------------------------------------------------------------
    def on_app_deliver(self, env: Envelope, probes: int) -> None:
        """Tick the receive sequence, record the delivery, log the event."""
        d = self.daemon
        rclock = d.clock.tick_recv(env.src, env.sclock)
        if self.fast_forward():
            # fed from the recorded delivery log: already on the EL
            d._m_del_replayed.inc()
            self.stats.deliveries_replayed += 1
            if self.tracer.hot:
                self.tracer.emit(
                    self.sim.now, "v2.deliver", rank=self.rank, src=env.src,
                    sclock=env.sclock, rclock=rclock, mode="ff",
                )
            return
        rec = DeliveryRecord(
            src=env.src,
            sclock=env.sclock,
            rclock=rclock,
            probes=probes,
            nbytes=env.nbytes,
            tag=env.tag,
            context=env.context,
            data=env.data,
        )
        d.delivery_log.append(rec)
        resume = d.replay.log_resume_clock if d.replay is not None else 0
        src_seen, sclock_seen = env.src, env.sclock
        if rclock > resume:
            d.el.log_event(EventRecord(rclock, env.src, env.sclock, probes))
            d._m_del_fresh.inc()
            self.stats.deliveries_fresh += 1
            mode = "fresh"
        else:
            # an event the EL already holds: a forced-order re-delivery
            d._m_del_replayed.inc()
            self.stats.deliveries_replayed += 1
            mode = "replay"
            if "reorder_replay" in d.mutations:
                # test-only: a replay that ran in arrival order is one
                # step out of phase with the logged order — record the
                # previous replayed event's identity at this clock
                prev = d._mut_prev_replay
                d._mut_prev_replay = (env.src, env.sclock)
                if prev is not None:
                    src_seen, sclock_seen = prev
        self.stats.events_logged += 1
        if self.tracer.hot:
            self.tracer.emit(
                self.sim.now, "v2.deliver", rank=self.rank, src=src_seen,
                sclock=sclock_seen, rclock=rclock, mode=mode,
            )

    def force_probe(self) -> Optional[bool]:
        """Replay-forced iprobe outcome (None: no override)."""
        d = self.daemon
        if d.replay is None:
            return None
        if self.fast_forward():
            if d.replay.ff_probe():
                # the logged successful probe: materialize the delivery so
                # the normal matching path can see it
                rec = d.replay.next_ff_delivery()
                if rec is not None:
                    env = rec.to_envelope(self.rank)
                    kind = (
                        PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
                    )
                    self.inbox.put((env.src, Packet(kind, env, payload_bytes=env.nbytes)))
                return None
            return False
        return d.replay.replay_probe()

    def fast_forward(self) -> bool:
        """True while re-running the pre-checkpoint prefix."""
        d = self.daemon
        return d.replay is not None and d.replay.fast_forward(d.op_index)

    def app_compute(self, seconds: float) -> Generator[Future, Any, None]:
        """Advance time for a compute segment (+ daemon CPU tax)."""
        if self.fast_forward():
            return
        yield self.sim.pause(seconds + self.daemon.take_cpu_tax())

    def ckpt_poll(self) -> Generator[Future, Any, None]:
        """API-boundary safe point: take an ordered checkpoint here."""
        d = self.daemon
        d.op_index += 1
        if d.replay is None or d.op_index > d.replay.ff_target_ops:
            # ops inside the fast-forward prefix already had their dirty
            # effect captured by the restored image's region versions
            d.ckpt.touch_region(d.op_index)
        if d.replay is not None:
            d.delivery.maybe_caught_up()
        if (
            d.replay is not None
            and d.op_index == d.replay.ff_target_ops
            and (d.clock.send_seq, d.clock.recv_seq)
            != (d.restart_base_send, d.restart_base_recv)
        ):
            raise RuntimeError(
                f"rank {self.rank}: fast-forward diverged: sequences "
                f"({d.clock.send_seq},{d.clock.recv_seq}) != checkpoint "
                f"({d.restart_base_send},{d.restart_base_recv})"
            )
        if (
            d.ckpt.requested
            and not (d.replay is not None and d.replay.active(d.op_index))
        ):
            d.ckpt.requested = False
            image = d.ckpt.capture()
            yield self.sim.pause(self.cfg.ckpt_fork_cost)
            d.ckpt.start_push(image)
