"""Channel devices: the MPICH-P4 baseline and the MPICH-V1
Channel-Memory logger.  (The MPICH-V2 device lives in ``repro.core``.)

``V1Device``/``ChannelMemory`` are exposed lazily: the V1 module also
hosts its job launcher, which pulls in the runtime.
"""

from .base import ChannelDevice, DeviceStats, segment_sizes
from .p4 import P4Device

__all__ = [
    "ChannelDevice",
    "DeviceStats",
    "segment_sizes",
    "P4Device",
    "ChannelMemory",
    "V1Device",
]


def __getattr__(name):
    if name in ("ChannelMemory", "V1Device"):
        from . import v1

        return getattr(v1, name)
    raise AttributeError(name)
