"""The MPICH channel interface and shared device machinery.

MPICH-V2 "is implemented as a channel for MPICH: it implements a set of
six primitives used by the protocol layer" (Section 4.4): ``PIbsend``,
``PIbrecv``, ``PInprobe``, ``PIfrom``, ``PIiInit``, ``PIiFinish``.  Every
device here (P4, V1, V2) implements exactly that interface; the MPI stack
above the channel is identical across devices — which is the paper's
"MPI implementation independence" requirement.

Shared machinery: packet chunking over streams (segments of
``chunk_bytes``), reassembly, an inbox of received packets, and
per-peer traffic statistics used by the checkpoint scheduler's adaptive
policy.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..mpi.datatypes import Envelope
from ..mpi.protocol import Packet
from ..runtime.config import TestbedConfig
from ..simnet.kernel import Future, Queue, Simulator
from ..simnet.node import Host
from ..simnet.streams import StreamEnd
from ..simnet.trace import Tracer

__all__ = ["ChannelDevice", "DeviceStats", "segment_sizes"]


def segment_sizes(total_bytes: int, chunk: int) -> list[int]:
    """Split a packet of ``total_bytes`` into driver chunks."""
    if total_bytes <= 0:
        return [1]
    sizes = []
    left = total_bytes
    while left > chunk:
        sizes.append(chunk)
        left -= chunk
    sizes.append(left)
    return sizes


class DeviceStats:
    """Per-device traffic counters (feeds the adaptive ckpt scheduler)."""

    def __init__(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.msgs_sent = 0
        self.msgs_received = 0
        self.events_logged = 0
        # replay classification (V2 only; zero elsewhere): deliveries fed
        # from logged history vs. first-time deliveries
        self.deliveries_replayed = 0
        self.deliveries_fresh = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters."""
        return dict(self.__dict__)


class ChannelDevice:
    """Abstract channel device: the six PI primitives plus runtime hooks.

    Hooks beyond the MPICH channel interface exist because the paper's
    devices also do work outside the channel calls (the V2 daemon logs
    events, gates sends on event-logger acknowledgements, takes
    checkpoints, and steals CPU from the MPI process); the base class
    gives them all neutral default behaviour.
    """

    #: V1 routes everything through Channel Memories and therefore never
    #: needs the rendezvous protocol; devices set this to bypass it.
    eager_override = False

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        rank: int,
        size: int,
        host: Host,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.rank = rank
        self.size = size
        self.host = host
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.inbox: Queue = Queue(sim, name=f"dev{rank}.inbox")
        self.stats = DeviceStats()
        self._last_from: int = -1
        self._send_seq = 0

    def stamp(self, env: Envelope) -> None:
        """Assign the message id (sender sequence) if not stamped yet.

        The V2 device overrides message stamping with its logical clock;
        the other devices use a plain per-sender sequence, which also
        gives every in-flight message a unique (src, sclock) id.
        """
        if env.sclock == 0:
            self._send_seq += 1
            env.sclock = self._send_seq

    # -- the six channel primitives ---------------------------------------
    def piinit(self) -> Generator[Future, Any, None]:
        """Bring the channel up (connect streams, start daemons)."""
        return
        yield  # pragma: no cover - makes this a generator function

    def pifinish(self) -> Generator[Future, Any, None]:
        """Drain and close the channel."""
        return
        yield  # pragma: no cover

    def pibsend(self, dst: int, pkt: Packet) -> Generator[Future, Any, None]:
        """Blocking send of one protocol packet to rank ``dst``."""
        raise NotImplementedError

    def pibrecv(self) -> Generator[Future, Any, tuple[int, Packet]]:
        """Blocking receive of the next packet (any source)."""
        if not len(self.inbox):
            self._pump_ready()
        while not len(self.inbox):
            yield from self._wait_for_traffic()
            self._pump_ready()
        ok, item = self.inbox.try_get()
        assert ok
        src, pkt = item
        self._last_from = src
        return src, pkt

    def pinprobe(self) -> bool:
        """Is a packet pending? (non-blocking)"""
        self._pump_ready()
        return len(self.inbox) > 0

    def pifrom(self) -> int:
        """Rank of the last packet's sender (after pibrecv/poll)."""
        return self._last_from

    # -- non-blocking drain (used by the ADI for iprobe/progress) ----------
    def poll(self) -> list[tuple[int, Packet]]:
        """Drain everything already arrived; returns packets in order."""
        self._pump_ready()
        out = []
        while True:
            ok, item = self.inbox.try_get()
            if not ok:
                break
            self._last_from = item[0]
            out.append(item)
        return out

    def try_send_now(self, dst: int, pkt: Packet) -> bool:
        """Best-effort non-blocking send of a small control packet."""
        raise NotImplementedError

    # -- internal plumbing overridden by devices ----------------------------
    def _pump_ready(self) -> None:
        """Move already-arrived traffic into the inbox (non-blocking)."""

    def _wait_for_traffic(self) -> Generator[Future, Any, None]:
        """Block until something arrives that _pump_ready can consume."""
        raise NotImplementedError

    # -- runtime hooks -------------------------------------------------------
    def bind_adi(self, adi) -> None:
        """Give the device a handle on the progress engine (V2 recovery)."""

    def on_app_deliver(self, env: Envelope, probes: int) -> None:
        """Called by the ADI on every application-level delivery."""

    def force_probe(self) -> Optional[bool]:
        """Replay override for iprobe; None means 'no override'."""
        return None

    def fast_forward(self) -> bool:
        """True while replaying the pre-checkpoint prefix (compute is free)."""
        return False

    def app_compute(self, seconds: float) -> Generator[Future, Any, None]:
        """Advance time for an application compute segment.

        Devices add their CPU tax here (the V2 logging daemon competes
        with the MPI process for the CPU — the LU effect in Figure 7).
        """
        if seconds > 0 and not self.fast_forward():
            yield self.sim.pause(seconds)

    def ckpt_poll(self) -> Generator[Future, Any, None]:
        """Checkpoint-at-a-safe-point hook, called at API boundaries."""
        return
        yield  # pragma: no cover

    # -- segmented packet transmission over one stream ----------------------
    def _write_packet(
        self, end: StreamEnd, pkt: Packet
    ) -> Generator[Future, Any, None]:
        """Send one packet as a coalesced frame over ``end`` (blocking)."""
        total = pkt.payload_bytes + self.cfg.packet_header_bytes
        yield from end.write_frame(total, pkt, mtu=self.cfg.chunk_bytes)
        self.stats.bytes_sent += pkt.payload_bytes
        self.stats.msgs_sent += 1

    def _note_received(self, pkt: Packet) -> None:
        self.stats.bytes_received += pkt.payload_bytes
        self.stats.msgs_received += 1
