"""The MPICH-P4 baseline device.

The reference TCP/IP channel: every computing node holds a direct stream
to every other node and the MPI process performs its own socket I/O.  Two
behaviours matter for the paper's results and are modelled explicitly:

* the payload of an eager message is pushed *inside* the MPI_(I)send call
  (the MPI process blocks on the socket) — this is where P4's 44.9 s of
  `MPI_(I)send` time in Table 1 comes from;
* the driver does not service incoming traffic while pushing a message:
  P4 computing nodes are built with half-duplex endpoints, so
  simultaneous bidirectional transfers serialize — the reason MPICH-V2
  reaches twice P4's bandwidth on the Figure 9 pattern.  To preserve
  liveness, a window-blocked send drains arrived segments before waiting
  (the select() fallback of the real implementation).

P4 has no fault tolerance: a broken stream surfaces as an exception in
the MPI process.
"""

from __future__ import annotations

from typing import Any, Generator

from ..mpi.protocol import Packet, PacketKind
from ..simnet.kernel import Future, any_of
from ..simnet.streams import StreamEnd
from .base import ChannelDevice, segment_sizes

__all__ = ["P4Device"]


class P4Device(ChannelDevice):
    """Direct-stream device; the non-fault-tolerant baseline."""

    def __init__(self, *args: Any, **kw: Any) -> None:
        super().__init__(*args, **kw)
        self.ends: dict[int, StreamEnd] = {}

    def wire(self, ends: dict[int, StreamEnd]) -> None:
        """Attach the pre-established streams (rank -> local endpoint)."""
        self.ends = dict(ends)
        self._by_end = {id(e): r for r, e in self.ends.items()}

    # -- sending -----------------------------------------------------------
    def pibsend(self, dst: int, pkt: Packet) -> Generator[Future, Any, bool]:
        """Push the packet straight into the peer's stream (may block)."""
        self.stamp(pkt.env)
        # the MPI process performs the socket write itself: the syscall and
        # kernel copy are charged to the calling MPI function (this is the
        # MPI_(I)send cost of Table 1, absent on V2 where a daemon writes)
        yield self.sim.pause(self.cfg.p4_send_cpu)
        end = self.ends[dst]
        total = pkt.payload_bytes + self.cfg.packet_header_bytes
        sizes = segment_sizes(total, self.cfg.chunk_bytes)
        last = len(sizes) - 1
        # eager payload pushes happen inside MPI_(I)send, where the P4
        # driver does not service its receive side: mark them bulk so a
        # half-duplex endpoint serializes them against reception.
        # Rendezvous DATA is pumped inside a wait, where the driver's
        # select loop interleaves both directions.
        bulk = pkt.kind in (PacketKind.SHORT, PacketKind.EAGER)
        for i, nbytes in enumerate(sizes):
            payload = pkt if i == last else None
            while not end.write_nowait(nbytes, payload, bulk=bulk):
                # window full: fall back to the select loop — drain what has
                # arrived, then sleep until credit or traffic shows up
                self._pump_ready()
                if end.write_nowait(nbytes, payload):
                    break
                waits = [end.when_writable(nbytes)]
                waits += [e.when_readable() for e in self.ends.values() if not e.readable]
                yield any_of(self.sim, waits)
        self.stats.bytes_sent += pkt.payload_bytes
        self.stats.msgs_sent += 1
        return True

    def try_send_now(self, dst: int, pkt: Packet) -> bool:
        """Single-chunk nonblocking write if the window allows."""
        total = pkt.payload_bytes + self.cfg.packet_header_bytes
        if total > self.cfg.chunk_bytes:
            return False
        return self.ends[dst].write_nowait(total, pkt)

    # -- receiving ----------------------------------------------------------
    def _pump_ready(self) -> None:
        for rank, end in self.ends.items():
            while True:
                ok, _nbytes, payload = end.try_read()
                if not ok:
                    break
                if payload is not None:
                    self._note_received(payload)
                    self.inbox.put((rank, payload))

    def _wait_for_traffic(self) -> Generator[Future, Any, None]:
        waits = [e.when_readable() for e in self.ends.values()]
        if not waits:
            raise RuntimeError("P4 device has no peers wired")
        yield any_of(self.sim, waits)
