"""The MPICH-V1 baseline: Channel-Memory-based pessimistic logging.

MPICH-V1 (the paper's first protocol, SC'02) associates every computing
node with a reliable **Channel Memory** (CM): "Every communication sent
to a process is stored and ordered on its associated Channel Memory. To
receive a message, a process sends a request to its associated Channel
Memory."  Every payload therefore crosses the network twice through the
CM's NIC, store-and-forward at message granularity — which is why V1's
bandwidth is about half of P4's and why it needs many reliable nodes
(the paper uses one CM per 4 computing nodes: 9 reliable nodes for 32
CNs, versus 1 for MPICH-V2).

Recovery is trivially uncoordinated: the CM keeps the full ordered
reception log, so a restarted process simply replays its receive stream
from the CM (no sender cooperation needed).  This module implements the
CM server, the V1 channel device, and a V1 job launcher with optional
fault injection.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..mpi.api import MPI
from ..mpi.protocol import Packet
from ..obs.collect import finalize_job
from ..obs.registry import Metrics
from ..runtime.cluster import Cluster
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.mpirun import rank_main
from ..runtime.results import JobResult
from ..runtime.retry import RetryPolicy
from ..runtime.session import ServiceBase, Session
from ..simnet.kernel import Future, Killed, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .base import ChannelDevice, segment_sizes

__all__ = ["ChannelMemory", "V1Device", "run_v1_job"]


class ChannelMemory(ServiceBase):
    """One reliable Channel Memory node serving a group of computing nodes.

    Stores every message addressed to its associated receivers, in
    arrival order, and serves them one per GET request.  The permanent
    log survives receiver crashes; a restarted receiver's GET cursor
    restarts from zero (or from its checkpoint position) and replays the
    stored stream in the original order.  On the shared service
    lifecycle a CM can be stopped and restarted without losing its log
    (the lost in-flight GET is re-issued by the receiver's next
    ``pibrecv``).
    """

    metric_ns = "cm"
    payload_types = (Packet,)

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        name: str,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        super().__init__(sim, host, fabric, name, tracer=tracer, metrics=metrics)
        self.cfg = cfg
        # per destination rank: the full ordered reception log
        self.log: dict[int, list[Packet]] = {}
        # per destination rank: message ids already stored (re-executed
        # senders re-emit their history; the CM is the dedup point)
        self.seen: dict[int, set] = {}
        # per destination rank: cursor of the next message to serve
        self.cursor: dict[int, int] = {}
        # pending GET requests per rank (stream to answer on)
        self._waiting: dict[int, StreamEnd] = {}
        self.stores = 0
        self.serves = 0

    def on_stop(self, cause: Any) -> None:
        # pending GETs died with their streams (the receivers re-issue
        # them after reconnecting); the log, the msgid dedup set and the
        # serve cursors are the durable state the relaunch serves from
        self._waiting.clear()

    def _serve(self, end: StreamEnd, hello: Any = None):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return
            if isinstance(msg, Packet):
                # STORE: a message for one of our receivers
                dst = msg.env.dst
                yield self.sim.pause(self.cfg.cm_store_cpu)
                ids = self.seen.setdefault(dst, set())
                if msg.env.msgid in ids:
                    yield from self._maybe_serve(dst)
                    continue  # duplicate from a re-executing sender
                ids.add(msg.env.msgid)
                self.log.setdefault(dst, []).append(msg)
                self.stores += 1
                yield from self._maybe_serve(dst)
            elif msg[0] == "GET":
                # replies go back on the same stream the request came in on
                self._waiting[msg[1]] = end
                yield from self._maybe_serve(msg[1])
            elif msg[0] == "RESET":
                # a restarted receiver replays from its checkpoint cursor
                self.cursor[msg[1]] = msg[2]
            elif msg[0] == "PROBE":
                rank = msg[1]
                pending = self.cursor.get(rank, 0) < len(self.log.get(rank, ()))
                yield from end.write(16, ("PROBE_R", pending))
            else:  # pragma: no cover
                raise RuntimeError(f"channel memory got {msg[0]!r}")

    def _maybe_serve(self, rank: int) -> Generator[Future, Any, None]:
        end = self._waiting.get(rank)
        if end is None:
            return
        cur = self.cursor.get(rank, 0)
        msgs = self.log.get(rank, ())
        if cur >= len(msgs):
            return
        pkt = msgs[cur]
        self.cursor[rank] = cur + 1
        del self._waiting[rank]
        self.serves += 1
        total = pkt.payload_bytes + self.cfg.packet_header_bytes
        sizes = segment_sizes(total, self.cfg.chunk_bytes)
        try:
            for nbytes in sizes[:-1]:
                yield from end.write(nbytes, None)
            yield from end.write(sizes[-1], pkt)
        except Disconnected:
            # the receiver crashed mid-delivery: rewind so its replacement
            # replays this message too
            self.cursor[rank] = cur
            self._waiting.pop(rank, None)


class V1Device(ChannelDevice):
    """The V1 channel: all traffic through the receiver's Channel Memory."""

    #: the CM buffers everything reliably, so the rendezvous protocol is
    #: pointless: every message ships eagerly to the CM
    eager_override = True

    def __init__(
        self,
        *args: Any,
        cm_of=None,
        incarnation: int = 0,
        metrics: Optional[Metrics] = None,
        **kw: Any,
    ) -> None:
        super().__init__(*args, **kw)
        self.cm_of = cm_of or {}  # rank -> CM service name
        self.incarnation = incarnation
        self._metrics = metrics if metrics is not None else Metrics()
        self._sessions: dict[str, Session] = {}  # CM name -> session
        self._own: Optional[Session] = None  # session to our own CM
        self._get_outstanding = False
        self.fabric: Optional[Fabric] = None
        self.replay_cursor = 0  # messages consumed (checkpointing hook)
        # per CM: every packet stored there by this incarnation.  A CM
        # service crash drops in-flight segments without telling the
        # writer (STOREs carry no acknowledgement), so after a reconnect
        # the whole history is re-emitted — exactly what a re-executed V1
        # sender does — and the CM's durable msgid set discards the bulk
        # of it as duplicates.
        self._sent_history: dict[str, list[Packet]] = {}
        self._dialed: set[str] = set()  # CMs connected at least once
        self.cm_reconnects = 0

    def wire(self, fabric: Fabric) -> None:
        """Attach the connection fabric (done by the launcher)."""
        self.fabric = fabric

    def _session_for_cm(self, cm: str) -> Session:
        """The session object for one Channel Memory (not yet dialled)."""
        sess = self._sessions.get(cm)
        if sess is None:
            sess = Session(
                self.sim, self.fabric, self.host, cm,
                hello=("CN", self.rank), tracer=self.tracer,
                metrics=self._metrics, scope="v1",
                policy=RetryPolicy.from_config(self.cfg),
                payload_types=(Packet,), labels={"rank": self.rank},
            )
            self._sessions[cm] = sess
        return sess

    def _cm_up(self, cm: str) -> Generator[Future, Any, Session]:
        """The live session to ``cm``, reconnecting with backoff.

        The fast path (CM up, or first dial of a running CM) is a single
        synchronous connect, as before.  A CM that is down — a supervised
        service crash — is retried under the session's backoff policy;
        exhausting the budget breaks the deployment contract (the
        supervisor restarts crashed CMs) and fails the run loudly."""
        sess = self._session_for_cm(cm)
        if sess.up():
            return sess
        redial = cm in self._dialed
        try:
            sess.connect_now()
        except ConnectionRefused:
            end = yield from sess.connect()
            if end is None:
                raise RuntimeError(
                    f"rank {self.rank}: channel memory {cm} unreachable "
                    f"after {sess.policy.max_tries} attempts"
                )
        self._dialed.add(cm)
        if redial:
            self.cm_reconnects += 1
            yield from self._after_reconnect(cm, sess)
        return sess

    def _after_reconnect(
        self, cm: str, sess: Session
    ) -> Generator[Future, Any, None]:
        """Restore the state a broken CM stream carried.

        Our own CM's serve cursor may sit past a message whose delivery
        died in flight: rewind it to what we actually consumed, and
        forget the lost GET.  Then re-emit our store history (the CM
        dedups by msgid), covering any STORE dropped mid-transfer."""
        if cm == self.cm_of.get(self.rank):
            yield from sess.write(16, ("RESET", self.rank, self.replay_cursor))
            self._get_outstanding = False
        for pkt in self._sent_history.get(cm, ()):
            total = pkt.payload_bytes + self.cfg.packet_header_bytes
            sizes = segment_sizes(total, self.cfg.chunk_bytes)
            last = len(sizes) - 1
            for i, nbytes in enumerate(sizes):
                yield from sess.end.write(nbytes, pkt if i == last else None)

    def piinit(self) -> Generator[Future, Any, None]:
        self._own = yield from self._cm_up(self.cm_of[self.rank])
        if self.incarnation > 0:
            # uncoordinated restart: replay the reception stream from the
            # beginning -- "a process re-execution is independent of the
            # other processes of the system" (Section 3.2)
            yield from self._own.write(16, ("RESET", self.rank, 0))
        yield self.sim.pause(0.0)

    @property
    def _own_end(self) -> StreamEnd:
        return self._own.end

    # -- sending: store on the receiver's CM ------------------------------------
    def pibsend(self, dst: int, pkt: Packet) -> Generator[Future, Any, bool]:
        """Store the message on the *receiver's* Channel Memory."""
        self.stamp(pkt.env)
        cm = self.cm_of[dst]
        total = pkt.payload_bytes + self.cfg.packet_header_bytes
        sizes = segment_sizes(total, self.cfg.chunk_bytes)
        last = len(sizes) - 1
        while True:
            sess = self._session_for_cm(cm)
            end = sess.end
            try:
                sess = yield from self._cm_up(cm)
                end = sess.end
                for i, nbytes in enumerate(sizes):
                    yield from end.write(nbytes, pkt if i == last else None)
            except (Disconnected, HostDown):
                # the CM went down mid-store: drop the link and redo the
                # whole STORE on the relaunched CM (msgid-deduped there)
                if end is not None:
                    sess.drop(end)
                continue
            break
        self._sent_history.setdefault(cm, []).append(pkt)
        self.stats.bytes_sent += pkt.payload_bytes
        self.stats.msgs_sent += 1
        return True

    def try_send_now(self, dst: int, pkt: Packet) -> bool:
        """V1 has no small control replies to push."""
        # V1 never sends CTS (eager_override): nothing small to push
        return False

    # -- receiving: pull from our own CM ------------------------------------------
    def pibrecv(self) -> Generator[Future, Any, tuple[int, Packet]]:
        """Pull the next stored message from our Channel Memory."""
        own_cm = self.cm_of[self.rank]
        while True:
            sess = self._sessions.get(own_cm)
            end = sess.end if sess is not None else None
            try:
                sess = yield from self._cm_up(own_cm)
                self._own = sess
                end = sess.end
                if not self._get_outstanding:
                    yield from sess.write(
                        self.cfg.cm_request_bytes, ("GET", self.rank)
                    )
                    self._get_outstanding = True
                payload = yield from sess.read_record(end)
            except (Disconnected, HostDown):
                # the CM crashed holding our GET; reconnect rewinds the
                # serve cursor to ``replay_cursor`` and we ask again
                self._get_outstanding = False
                if end is not None:
                    sess.drop(end)
                continue
            if isinstance(payload, Packet):
                self._get_outstanding = False
                self.replay_cursor += 1
                self._note_received(payload)
                self._last_from = payload.env.src
                return payload.env.src, payload
            if payload[0] == "PROBE_R":
                # a PROBE_R landing outside a probe is a stale reply the
                # protocol must drop — but never silently: it is counted
                # (``v1.protocol_errors``) and traced like every other
                # wire violation
                self._own.protocol_error("unexpected PROBE_R reply")
                continue
            raise RuntimeError(  # pragma: no cover
                f"unexpected CM reply {payload[0]!r}"
            )

    def poll(self) -> list[tuple[int, Packet]]:
        """Drain already-arrived CM replies without blocking."""
        out = []
        if self._own is None or not self._own.up():
            return out  # CM link down: pibrecv will reconnect and replay
        while True:
            ok, _n, payload = self._own_end.try_read()
            if not ok:
                break
            if isinstance(payload, Packet):
                self._get_outstanding = False
                self.replay_cursor += 1
                self._note_received(payload)
                self._last_from = payload.env.src
                out.append((payload.env.src, payload))
            elif payload is not None and payload[0] == "PROBE_R":
                self._own.protocol_error("unexpected PROBE_R reply")
        return out

    def pinprobe(self) -> bool:
        # a non-blocking probe cannot see messages still parked on the CM;
        # blocking probes work (they pump pibrecv).  The paper's V1 numbers
        # (Figures 5, 6, 8) never exercise MPI_Iprobe.
        return False

    def _wait_for_traffic(self) -> Generator[Future, Any, None]:
        if self._own is None or not self._own.up():
            # CM link down: poll until the supervised relaunch lets the
            # next pibrecv reconnect
            yield self.sim.pause(0.001)
            return
        try:
            yield self._own_end.when_readable()
        except Disconnected:
            pass  # link broke while we slept; the recv path reconnects


def run_v1_job(
    program,
    nprocs: int,
    cfg: TestbedConfig,
    params: dict[str, Any],
    trace: bool,
    seed: int,
    limit: Optional[float],
    *,
    cns_per_cm: int = 4,
    faults: Optional[Any] = None,
    audit: bool = False,
    profile: bool = False,
    timeseries: Any = False,
) -> JobResult:
    """Run a job on MPICH-V1: one reliable CM per ``cns_per_cm`` nodes.

    Fault tolerance is V1's own: a crashed rank restarts from the
    beginning and replays its reception stream from its Channel Memory,
    with no cooperation from any other process (uncoordinated restart).
    Checkpoint images are not modelled for V1 (restart is always from
    scratch, the paper's Figure 10-style configuration).
    """
    cluster = Cluster(cfg, seed=seed, trace=trace)
    sim = cluster.sim
    fabric = Fabric(cluster)
    profiler = None
    if profile:
        from ..obs.profile import KernelProfiler

        profiler = KernelProfiler()
        profiler.install(sim)
    sampler = None
    if timeseries:
        from ..obs.timeseries import TimeseriesSampler

        sampler = TimeseriesSampler.from_flag(cluster.metrics, timeseries)
        sampler.install(sim)
    auditor = None
    if audit:
        from ..obs.audit import ProtocolAuditor

        auditor = ProtocolAuditor().attach(cluster.tracer)

    from ..ft.services import ServiceSupervisor

    supervisor = ServiceSupervisor(
        sim, cfg, tracer=cluster.tracer, metrics=cluster.metrics
    )
    n_cm = max(1, (nprocs + cns_per_cm - 1) // cns_per_cm)
    cms = []
    cm_of: dict[int, str] = {}
    for i in range(n_cm):
        host = cluster.add_aux(f"cm{i}")
        cm = ChannelMemory(
            sim, host, fabric, cfg, name=f"cm:{i}",
            tracer=cluster.tracer, metrics=cluster.metrics,
        )
        cm.start()
        supervisor.register(cm.name, cm)
        cms.append(cm)
    for r in range(nprocs):
        cm_of[r] = f"cm:{r // cns_per_cm}"

    hosts = [cluster.add_cn(f"cn{r}") for r in range(nprocs)]

    class RankSlot:
        def __init__(self, rank: int) -> None:
            self.rank = rank
            self.incarnation = -1
            self.device: Optional[V1Device] = None
            self.mpi: Optional[MPI] = None
            self.finished = False
            self.result: Any = None
            self.finish_time = 0.0
            self.restarts = 0

    slots = [RankSlot(r) for r in range(nprocs)]
    done = sim.future("v1.job.done")
    total_restarts = [0]

    def spawn_rank(rank: int) -> None:
        slot = slots[rank]
        slot.incarnation += 1
        inc = slot.incarnation
        host = hosts[rank]
        dev = V1Device(
            sim, cfg, rank, nprocs, host, tracer=cluster.tracer,
            cm_of=cm_of, incarnation=inc, metrics=cluster.metrics,
        )
        dev.wire(fabric)
        mpi = MPI(sim, rank, nprocs, dev, tracer=cluster.tracer)
        slot.device, slot.mpi = dev, mpi
        p = sim.spawn(
            rank_main(mpi, program, params), name=f"rank{rank}.i{inc}",
            supervised=True,
        )
        host.register(p)

        def finished(fut, r=rank, i=inc):
            slot2 = slots[r]
            if slot2.incarnation != i:
                return
            exc = fut.exception
            if exc is None:
                slot2.finish_time, slot2.result = fut.value
                slot2.finished = True
                if all(sl.finished for sl in slots):
                    done.resolve_if_pending([sl.result for sl in slots])
                return
            if isinstance(exc, Killed):
                return  # host crash: restart below
            done.fail_if_pending(exc)

        p.done.add_done_callback(finished)

        def crashed(h, r=rank, i=inc):
            slot2 = slots[r]
            if slot2.incarnation != i or done.done:
                return

            def restart():
                yield sim.pause(
                    cfg.restart_detect_delay + cfg.restart_spawn_delay
                )
                if done.done or slots[r].incarnation != i:
                    return
                if hosts[r].failed:
                    hosts[r].restart()
                slots[r].restarts += 1
                total_restarts[0] += 1
                spawn_rank(r)

            sim.spawn(restart(), name=f"v1.restart{r}")

        host.on_crash.append(crashed)

    for r in range(nprocs):
        spawn_rank(r)

    if faults is not None:
        from ..ft.failure import ComposedFaults, FaultContext

        if isinstance(faults, (list, tuple)):
            faults = ComposedFaults(tuple(faults))

        def spawn_proc(gen, label: str):
            p = sim.spawn(gen, name=label)
            # fault-driver helpers live on the first CM's (reliable) host
            cms[0].host.register(p)
            return p

        ctx = FaultContext(
            sim=sim,
            alive_unfinished=lambda: [
                s_.rank for s_ in slots
                if not s_.finished and not hosts[s_.rank].failed
            ],
            kill=lambda r: (
                False if hosts[r].failed or done.done or slots[r].finished
                else (hosts[r].crash() or True)
            ),
            job_running=lambda: not done.done,
            crash_service=supervisor.crash,
            restart_service=supervisor.restart,
            spawn=spawn_proc,
            service_names=tuple(sorted(supervisor.services)),
        )
        sim.spawn(faults.driver(ctx), name="v1.fault-injector")

    results = sim.run_until(done, limit=limit)
    if sampler is not None:
        sampler.sample(sim.now)
    for cm in cms:
        if cm.stores:
            cluster.metrics.counter("v1.cm_stores", cm=cm.name).inc(cm.stores)
        if cm.serves:
            cluster.metrics.counter("v1.cm_serves", cm=cm.name).inc(cm.serves)
    reconnects = sum(
        s_.device.cm_reconnects for s_ in slots if s_.device is not None
    )
    if reconnects:
        cluster.metrics.counter("v1.cm_reconnects").inc(reconnects)
    stats = finalize_job(
        cluster, {r: slots[r].device.stats for r in range(nprocs)}, "v1"
    )
    report = auditor.finish() if auditor is not None else None
    prof = profiler.finish() if profiler is not None else None
    return JobResult(
        nprocs=nprocs,
        device="v1",
        elapsed=max(s_.finish_time for s_ in slots),
        results=results,
        timers={r: slots[r].mpi.timer for r in range(nprocs)},
        tracer=cluster.tracer,
        stats=stats,
        restarts=total_restarts[0],
        metrics=cluster.metrics,
        audit=report,
        profile=prof,
        timeseries=sampler,
        extras={"channel_memories": cms},
    )
