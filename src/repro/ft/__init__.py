"""The fault-tolerance runtime: dispatcher, checkpoint server and
scheduler, failure injection, service supervision."""

from .ckpt_scheduler import POLICIES, CheckpointScheduler
from .ckpt_server import CheckpointServer
from .dispatcher import Dispatcher, run_v2_job
from .failure import (
    ChurnFaults,
    ComposedFaults,
    ExplicitFaults,
    FaultContext,
    LinkFlapFaults,
    PartitionFaults,
    RandomFaults,
    ServiceFaults,
)
from .services import ServiceSupervisor

__all__ = [
    "POLICIES",
    "CheckpointScheduler",
    "CheckpointServer",
    "Dispatcher",
    "run_v2_job",
    "ChurnFaults",
    "ComposedFaults",
    "ExplicitFaults",
    "FaultContext",
    "LinkFlapFaults",
    "PartitionFaults",
    "RandomFaults",
    "ServiceFaults",
    "ServiceSupervisor",
]
