"""The fault-tolerance runtime: dispatcher, checkpoint server and
scheduler, failure injection."""

from .ckpt_scheduler import POLICIES, CheckpointScheduler
from .ckpt_server import CheckpointServer
from .dispatcher import Dispatcher, run_v2_job
from .failure import ExplicitFaults, FaultContext, RandomFaults

__all__ = [
    "POLICIES",
    "CheckpointScheduler",
    "CheckpointServer",
    "Dispatcher",
    "run_v2_job",
    "ExplicitFaults",
    "FaultContext",
    "RandomFaults",
]
