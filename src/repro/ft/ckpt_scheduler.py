"""The Checkpoint Scheduler (Section 4.6.2).

"The role of the checkpoint scheduler is to evaluate the cost and the
benefit of a checkpoint, at any specific time, and to order the
checkpoints accordingly."  Checkpoints need no coordination — scheduling
exists purely to bound the memory held by the sender-based logs and the
bandwidth consumed by image transfers.

Three policies are implemented:

* **round_robin** — the paper's baseline: no status traffic, fair only
  for symmetric communication schemes;
* **adaptive** — orders nodes by decreasing ratio of received-over-sent
  bytes ("considering the ratio amount of received messages over amount
  of sent messages for each computing node"); asymmetric schemes get
  their heavy loggers checkpointed (and garbage-collected) first;
* **random** — the policy used in the Figure 11 fault experiment ("We
  use a scheduling policy randomly selecting the node to checkpoint").

The scheduler runs in two modes: *periodic* (order one checkpoint every
``interval``) and *continuous* ("the checkpoint of a node immediately
follows the one of another node", the Figure 11 setup).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

import numpy as np

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import ServiceBase, Session
from ..simnet.kernel import Queue, Simulator, any_of
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer

__all__ = ["CheckpointScheduler", "POLICIES"]

POLICIES = ("round_robin", "adaptive", "random")


class CheckpointScheduler(ServiceBase):
    """The checkpoint-ordering service."""

    metric_ns = "sched"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        nprocs: int,
        policy: str = "round_robin",
        interval: float = 30.0,
        continuous: bool = False,
        name: str = "sched:0",
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        cs_names: tuple[str, ...] = (),
        metrics: Optional[Metrics] = None,
        key_of: Optional[Any] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; pick from {POLICIES}")
        super().__init__(sim, host, fabric, name, tracer=tracer, metrics=metrics)
        self.cfg = cfg
        self.nprocs = nprocs
        self.policy = policy
        self.interval = interval
        self.continuous = continuous
        self.rng = rng or np.random.default_rng(0)
        self.links: dict[int, StreamEnd] = {}
        self.status: dict[int, dict[str, Any]] = {}
        self._rr_next = 0
        self._done_q: Queue = Queue(sim, name="sched.done")
        self.orders_issued = 0
        # ranks whose checkpoint push failed (checkpoint-server outage);
        # they are re-ordered ahead of the policy's regular pick
        self._retry_q: deque[int] = deque()
        self.ckpt_retries = 0
        # manifest-aware GC: the scheduler is the only component that
        # knows which checkpoint sequence of each rank is quorum-complete
        # (CKPT_DONE only arrives once the write quorum committed), so it
        # owns the GC epochs broadcast to the store replicas
        self.cs_names = tuple(cs_names)
        #: rank -> store key translation for the GC broadcast.  Daemons
        #: report CKPT_DONE with their bare rank (the scheduler is per
        #: job), but on a *shared* store the floors must name the
        #: job-qualified keys the manifests were committed under.
        self._key_of = key_of if key_of is not None else (lambda r: r)
        self.quorum_seq: dict[int, int] = {}
        self._gc_q: Queue = Queue(sim, name="sched.gcq")
        # persistent session per store replica (framed records, epochs,
        # backpressure metrics) instead of ad-hoc fabric.connect streams
        policy = RetryPolicy.from_config(cfg, max_tries=cfg.peer_retry_tries)
        self._gc_sessions: dict[str, Session] = {
            cs: Session(
                sim, fabric, host, cs, scope="sched.gc", policy=policy,
                tracer=tracer, metrics=self.metrics, labels={"server": cs},
            )
            for cs in self.cs_names
        }

    def on_accept(self, end: StreamEnd, hello: object) -> None:
        _, rank, inc = hello
        self.links[rank] = end
        self._spawn(self._reader(rank, end), f"sched.rx{rank}", supervised=True)

    def on_start(self) -> None:
        """Run the scheduling loop (and the store-GC broadcaster)."""
        self._spawn(self._drive(), "sched.drive")
        if self.cs_names:
            self._spawn(self._gc_drive(), "sched.gc")

    def on_stop(self, cause: object) -> None:
        self.links.clear()
        # a scheduler crash severs its outgoing GC links too
        for sess in self._gc_sessions.values():
            end = sess.end
            if end is not None and not end.stream.dead:
                end.stream.break_both(cause)
            sess.drop()

    def _reader(self, rank: int, end: StreamEnd):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                if self.links.get(rank) is end:
                    del self.links[rank]
                return
            if msg[0] == "STATUS":
                self.status[msg[1]] = msg[2]
            elif msg[0] == "CKPT_DONE":
                if len(msg) > 3:
                    self._note_quorum(msg[1], msg[3])
                self._done_q.put((msg[1], msg[2]))
            elif msg[0] == "CKPT_FAIL":
                # the push aborted (checkpoint-server outage); queue a retry
                # and unblock the continuous-mode wait
                failed = msg[1]
                self.ckpt_retries += 1
                self._retry_q.append(failed)
                self.tracer.emit(self.sim.now, "sched.ckpt_retry", rank=failed)
                self._done_q.put((failed, None))

    # -- store garbage collection ---------------------------------------------
    def _note_quorum(self, rank: int, seq: int) -> None:
        """A quorum-complete checkpoint advanced a rank's GC floor."""
        if seq is None or seq <= self.quorum_seq.get(rank, 0):
            return
        self.quorum_seq[rank] = seq
        self.tracer.emit(
            self.sim.now, "sched.gc_epoch", rank=rank, seq=seq,
            floors=dict(self.quorum_seq),
        )
        self._gc_q.put(True)

    def reset_store_state(self) -> None:
        """A global restart wiped the store: forget every GC floor."""
        self.quorum_seq.clear()

    def _gc_drive(self):
        """Broadcast GC epochs to every replica, coalescing bursts.

        A replica that is down simply misses an epoch; the floors are
        cumulative (the whole dict is re-sent each time), so the next
        broadcast after it returns covers everything it missed.
        """
        while True:
            yield self._gc_q.get()
            while True:
                ok, _ = self._gc_q.try_get()
                if not ok:
                    break
            epoch = {self._key_of(r): s for r, s in self.quorum_seq.items()}
            if not epoch:
                continue
            for cs, sess in self._gc_sessions.items():
                if not sess.up():
                    sess.drop()
                    try:
                        # single non-blocking dial: a replica that is down
                        # just misses this epoch, the cumulative floors in
                        # the next broadcast cover it
                        sess.connect_now()
                    except ConnectionRefused:
                        continue
                try:
                    yield from sess.write(16 + 16 * len(epoch), ("GC", epoch))
                except (Disconnected, HostDown):
                    sess.drop()

    # -- the scheduling loop -------------------------------------------------
    def _drive(self):
        # give daemons a moment to connect
        yield self.sim.pause(0.05)
        while True:
            if not self.continuous:
                yield self.sim.pause(self.interval)
            target = yield from self._pick()
            if target is None:
                yield self.sim.pause(self.interval if not self.continuous else 1.0)
                continue
            end = self.links.get(target)
            if end is None:
                continue
            try:
                yield from end.write(16, ("CKPT_ORDER",))
            except Disconnected:
                continue
            self.orders_issued += 1
            self.tracer.emit(self.sim.now, "sched.order", rank=target)
            if self.continuous:
                # wait for completion (or give up if the node crashed)
                done = self._done_q.get()
                patience = self.sim.timeout(self.interval * 10)
                yield any_of(self.sim, [done, patience])

    def _pick(self):
        """Choose the next node to checkpoint, per policy."""
        while self._retry_q:
            cand = self._retry_q.popleft()
            if cand in self.links:
                # give the checkpoint server its supervised restart delay
                # before re-ordering the failed push
                yield self.sim.pause(self.cfg.svc_restart_delay)
                return cand
        live = sorted(self.links)
        if not live:
            yield self.sim.pause(0.0)
            return None
        if self.policy == "round_robin":
            yield self.sim.pause(0.0)
            for _ in range(self.nprocs):
                cand = self._rr_next % self.nprocs
                self._rr_next += 1
                if cand in self.links:
                    return cand
            return None
        if self.policy == "random":
            yield self.sim.pause(0.0)
            return int(self.rng.choice(live))
        # adaptive: poll status, rank by received/sent ratio (descending)
        yield from self._poll_status(live)
        best, best_ratio = None, -1.0
        for r in live:
            st = self.status.get(r)
            if st is None or st.get("finalized"):
                continue
            ratio = st["bytes_received"] / max(1.0, st["bytes_sent"])
            if ratio > best_ratio:
                best, best_ratio = r, ratio
        return best

    def _poll_status(self, live):
        for r in live:
            end = self.links.get(r)
            if end is None:
                continue
            try:
                yield from end.write(16, ("STATUS_REQ",))
            except Disconnected:
                continue
        # replies arrive through _reader; give them a beat
        yield self.sim.pause(0.01)
