"""The Checkpoint Server: one replica of the checkpoint store.

"The checkpoint server is a reliable repository storing the checkpoint
images of the MPI processes and of the communication daemons."
(Section 4.6.1.)  The paper's server held one monolithic image per rank;
here it is a thin name over :class:`repro.store.StoreReplica` — the
content-addressed, replicated store — so the historic surface
(``images``, ``stores``, ``latest``, ``start``/``stop``) keeps working
for tests, examples and diagnostics while the wire protocol is the
typed chunk/manifest one documented in :mod:`repro.store.replica`.
Transfers still ride the chunked stream fabric, so an image push
competes with application communication for NIC bandwidth — exactly the
contention the checkpoint scheduler tries to limit — and a manifest only
commits once every chunk it references arrived, so a node crashing
mid-push leaves the previous image intact.
"""

from __future__ import annotations

from ..store.replica import StoreReplica

__all__ = ["CheckpointServer"]


class CheckpointServer(StoreReplica):
    """One checkpoint-server instance (a store replica by another name)."""
