"""The Checkpoint Server: reliable storage of process images.

"The checkpoint server is a reliable repository storing the checkpoint
images of the MPI processes and of the communication daemons."
(Section 4.6.1.)  Images arrive as chunked stream traffic (the transfer
competes with application communication for NIC bandwidth, exactly the
contention the checkpoint scheduler tries to limit); an image is stored
only when fully received, so a node crashing mid-push leaves the previous
image intact.  Fetching serves the most recent complete image.
"""

from __future__ import annotations

from typing import Optional

from ..core.replay import CheckpointImage
from ..devices.base import segment_sizes
from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..simnet.kernel import Simulator
from ..simnet.node import Host
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer

__all__ = ["CheckpointServer"]


class CheckpointServer:
    """One checkpoint-server instance."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        name: str = "cs:0",
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.fabric = fabric
        self.cfg = cfg
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = metrics if metrics is not None else Metrics()
        self._m_stores = m.counter("cs.stores", server=name)
        self._m_fetches = m.counter("cs.fetches", server=name)
        self._m_bytes = m.counter("cs.bytes_stored", server=name)
        self.images: dict[int, CheckpointImage] = {}  # rank -> latest image
        self.stores = 0
        self.fetches = 0
        self._acceptor = None
        self._procs: list = []
        self._conns: list[StreamEnd] = []

    def start(self) -> None:
        """Register the listener and start serving store/fetch requests.

        Callable again after :meth:`stop`: durable images survive the
        outage; only pushes that were in flight are lost (and retried by
        the checkpoint scheduler).
        """
        acceptor = self.fabric.listen(self.name, self.host)
        self._acceptor = acceptor

        def accept_loop():
            while True:
                end, hello = yield acceptor.accept()
                self._conns.append(end)
                p = self.sim.spawn(
                    self._serve(end), name=f"{self.name}.serve", supervised=True
                )
                self.host.register(p)
                self._procs.append(p)

        p = self.sim.spawn(accept_loop(), name=f"{self.name}.accept")
        self.host.register(p)
        self._procs.append(p)

    def stop(self, cause: object = "cs-crash") -> None:
        """Service-level crash: drop the listener and every connection.

        Partially received images vanish with the connection — an image is
        only durable once its final STORE chunk arrived — so the previous
        complete image for each rank remains intact.
        """
        if self._acceptor is not None:
            self.fabric.unlisten(self.name, self._acceptor)
            self._acceptor = None
        procs, self._procs = self._procs, []
        for p in procs:
            p.kill()
        conns, self._conns = self._conns, []
        for end in conns:
            if not end.stream.dead:
                end.stream.break_both(cause)

    def _serve(self, end: StreamEnd):
        while True:
            try:
                _, msg = yield end.read()
            except Disconnected:
                return
            if msg is None:
                continue  # chunk of an image in flight
            kind = msg[0]
            if kind == "STORE":
                image: CheckpointImage = msg[1]
                prev = self.images.get(image.rank)
                if prev is None or image.seq > prev.seq:
                    self.images[image.rank] = image
                self.stores += 1
                self._m_stores.inc()
                self._m_bytes.inc(image.image_bytes)
                self.tracer.emit(
                    self.sim.now,
                    "cs.store",
                    rank=image.rank,
                    seq=image.seq,
                    nbytes=image.image_bytes,
                )
                try:
                    yield from end.write(16, ("STORED", image.rank, image.seq))
                except Disconnected:
                    return
            elif kind == "FETCH":
                rank = msg[1]
                image = self.images.get(rank)
                self.fetches += 1
                self._m_fetches.inc()
                try:
                    if image is None:
                        yield from end.write(16, ("IMAGE", None))
                    else:
                        sizes = segment_sizes(image.image_bytes, self.cfg.chunk_bytes)
                        for nbytes in sizes[:-1]:
                            yield from end.write(nbytes, None)
                        yield from end.write(sizes[-1], ("IMAGE", image))
                except Disconnected:
                    return
            else:  # pragma: no cover
                raise RuntimeError(f"checkpoint server got {kind!r}")

    # -- diagnostics --------------------------------------------------------
    def latest(self, rank: int) -> Optional[CheckpointImage]:
        """The most recent complete image for ``rank``, if any."""
        return self.images.get(rank)
