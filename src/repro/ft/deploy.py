"""Shared service deployment: EL replication groups and store replicas.

:func:`run_v2_job` deploys these once per job on a private cluster; the
control plane (``repro.serve``) deploys them once per *cluster* and
shares them between every job it admits.  Both call the same helpers so
there is exactly one encoding of the paper's service topology — shard
names (``el:<s>`` / ``el:<s>.<r>``), replica placement on independent
hosts, supervisor registration.

``ns`` prefixes both the service names and the names of any hosts the
helpers create, so two concurrent deployments on one shared cluster can
coexist: without it they would collide on the network's host table (a
hard error) and silently steal each other's fabric listeners.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.event_logger import EventLoggerServer
from ..runtime.cluster import Cluster
from ..runtime.config import TestbedConfig
from .ckpt_server import CheckpointServer

__all__ = ["deploy_el_groups", "deploy_store"]


def deploy_el_groups(
    cluster: Cluster,
    fabric: Any,
    cfg: TestbedConfig,
    el_hosts: list,
    *,
    n_shards: int,
    supervisor: Optional[Any] = None,
    ns: str = "",
    tracer: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> tuple[list[list[str]], list[EventLoggerServer]]:
    """Deploy the EL replication group: ``n_shards`` × ``el_replicas``.

    Ranks shard by ``rank % n_shards``; each shard keeps
    ``cfg.el_replicas`` service instances.  Replica 0 keeps the classic
    ``el:<shard>`` name on the caller-provided host (single-replica
    deployments and their fault plans are unchanged); extra replicas
    are ``el:<shard>.<r>`` and each get their own machine — colocated
    replicas would share a NIC (and fate, under host faults), defeating
    the independence the replication group exists to buy.  Each replica
    registers with the supervisor individually, so service faults can
    crash one replica of a shard.
    """
    sim = cluster.sim
    tracer = tracer if tracer is not None else cluster.tracer
    metrics = metrics if metrics is not None else cluster.metrics
    n_rep = max(1, cfg.el_replicas)
    el_groups: list[list[str]] = []
    loggers: list[EventLoggerServer] = []
    for s in range(n_shards):
        names = [
            f"{ns}el:{s}" if r == 0 else f"{ns}el:{s}.{r}"
            for r in range(n_rep)
        ]
        for r, el_name in enumerate(names):
            host = (
                el_hosts[s]
                if r == 0
                else cluster.add_aux(
                    f"el-host{s}.{r}", site=el_hosts[s].site, namespace=ns
                )
            )
            el = EventLoggerServer(
                sim, host, fabric, cfg, name=el_name,
                tracer=tracer, metrics=metrics,
                shard=s,
                peer_names=tuple(n for n in names if n != el_name),
            )
            el.start()
            loggers.append(el)
            if supervisor is not None:
                supervisor.register(el.name, el)
        el_groups.append(names)
    return el_groups, loggers


def deploy_store(
    cluster: Cluster,
    fabric: Any,
    cfg: TestbedConfig,
    cs_hosts: list,
    *,
    supervisor: Optional[Any] = None,
    ns: str = "",
    mutations: Optional[frozenset] = None,
    tracer: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> tuple[list[str], list[CheckpointServer]]:
    """Deploy the checkpoint-store replica set, one replica per host."""
    sim = cluster.sim
    tracer = tracer if tracer is not None else cluster.tracer
    metrics = metrics if metrics is not None else cluster.metrics
    servers: list[CheckpointServer] = []
    for i, host in enumerate(cs_hosts):
        cs = CheckpointServer(
            sim, host, fabric, cfg, name=f"{ns}cs:{i}",
            tracer=tracer, metrics=metrics,
            mutations=mutations,
        )
        cs.start()
        servers.append(cs)
        if supervisor is not None:
            supervisor.register(cs.name, cs)
    return [s.name for s in servers], servers
