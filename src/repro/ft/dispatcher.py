"""The Dispatcher: launch, monitor, and restart (the mpirun of Section 4.7).

"The execution monitor first launches the execution of the different
programs (CS, EL, SC, CN), and then monitors the execution potentially
re-launching the crashed programs. ... a socket disconnection is
considered as a trusty fault detector."

:func:`run_v2_job` is the MPICH-V2 entry point used by ``run_job``:
it assembles the paper's typical deployment — volatile computing nodes,
one reliable node hosting dispatcher + event logger(s) + checkpoint
scheduler, one reliable node for the checkpoint server — wires the fault
injector, and runs to completion, restarting every crashed rank through
the recovery protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.v2_device import V2Daemon, V2Device
from ..mpi.api import MPI
from ..obs.collect import finalize_job
from ..runtime.cluster import Cluster
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.mpirun import rank_main
from ..runtime.progfile import DeploymentPlan
from ..runtime.results import JobResult
from ..runtime.session import ServiceBase
from ..simnet.kernel import Future, Killed
from ..simnet.node import Host
from ..simnet.streams import Disconnected, StreamEnd
from .ckpt_scheduler import CheckpointScheduler
from .deploy import deploy_el_groups, deploy_store
from .failure import ComposedFaults, FaultContext
from .services import ServiceSupervisor

__all__ = ["Dispatcher", "run_v2_job"]


class RankState:
    """Dispatcher-side view of one MPI rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.host: Optional[Host] = None
        self.incarnation = -1
        self.daemon: Optional[V2Daemon] = None
        self.mpi: Optional[MPI] = None
        self.app_done: Optional[Future] = None
        self.finished = False
        self.result: Any = None
        self.finish_time = 0.0
        self.spawn_time = 0.0  # when this incarnation was launched
        self.restarts = 0


class _ControlListener(ServiceBase):
    """The dispatcher's daemon-facing control service.

    Daemons report UNRECOVERABLE (a rank whose image is gone but whose
    logs were garbage-collected) and FINALIZED over this link.  On the
    shared service lifecycle the listener can be stopped and restarted
    without leaking acceptors — the old inline accept loop could not.
    """

    metric_ns = "disp"

    def __init__(self, dispatcher: "Dispatcher", *args: Any, **kw: Any) -> None:
        super().__init__(*args, **kw)
        self._dispatcher = dispatcher
        self._rank_of: dict[int, int] = {}  # id(end) -> rank

    def on_accept(self, end: StreamEnd, hello: Any) -> None:
        # hello = ("HELLO", rank, incarnation); a (re)connect is itself
        # a liveness proof, so it refreshes the heartbeat clock too
        if type(hello) is tuple and len(hello) >= 2 and hello[0] == "HELLO":
            self._rank_of[id(end)] = hello[1]
            self._dispatcher.note_heartbeat(hello[1])
        super().on_accept(end, hello)

    def on_ping(self, end: StreamEnd, msg: tuple) -> None:
        rank = self._rank_of.get(id(end))
        if rank is not None:
            self._dispatcher.note_heartbeat(rank)

    def on_stop(self, cause: Any) -> None:
        self._rank_of.clear()

    def _serve(self, end: StreamEnd, hello: Any):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return  # crash detection is handled via host.on_crash
            if msg[0] == "UNRECOVERABLE":
                # a rank's checkpoint image is gone but its logs were
                # already garbage-collected: per-process replay is
                # impossible and the whole application restarts from
                # scratch ("restart from scratch, at worst", Section 4.3)
                self._dispatcher._trigger_global_restart()
            # FINALIZED messages are informational; completion is tracked
            # through the app process future (same information, no race)


class Dispatcher:
    """Launches rank processes and restarts them on failure."""

    def __init__(
        self,
        cluster: Cluster,
        fabric: Fabric,
        host: Host,
        program: Callable,
        params: dict[str, Any],
        nprocs: int,
        cn_hosts: list[Host],
        spare_hosts: list[Host],
        el_groups: list[list[str]],
        sched_name: Optional[str],
        cs_names: Optional[list[str]],
        wipe_logs: Optional[Callable[[], None]] = None,
        mutations: Optional[frozenset] = None,
        supervisor: Optional[Any] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        job_key: Optional[Callable[[int], Any]] = None,
        rng_ns: str = "",
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.cfg = cluster.cfg
        self.fabric = fabric
        # per-job observability: the control plane hands each dispatcher
        # its job's own tracer/metrics so concurrent jobs never share a
        # registry; a single-job deployment keeps the cluster's
        self.tracer = tracer if tracer is not None else cluster.tracer
        self.metrics = metrics if metrics is not None else cluster.metrics
        #: rank -> identity on shared EL/store services (None = bare rank)
        self.job_key = job_key
        #: disambiguates named RNG streams when jobs share one registry
        self.rng_ns = rng_ns
        self.host = host
        self.program = program
        self.params = params
        self.nprocs = nprocs
        self.cn_hosts = cn_hosts
        self.spare_hosts = list(spare_hosts)
        # one name list per EL shard (all replicas of the rank's shard);
        # ranks shard by rank % len(el_groups)
        self.el_groups = [list(g) for g in el_groups]
        self.sched_name = sched_name
        self.cs_names = tuple(cs_names) if cs_names else ()
        self.wipe_logs = wipe_logs
        self.mutations = frozenset(mutations or ())  # test-only fault seeds
        self.supervisor = supervisor  # ServiceSupervisor for EL/CS crashes
        self.states = [RankState(r) for r in range(nprocs)]
        self.done = Future(self.sim, name="dispatcher.done")
        self.total_restarts = 0
        self.global_restarts = 0
        self._global_restarting = False
        m = self.metrics
        self._m_faults = m.counter("ft.faults")
        self._m_restarts = m.counter("ft.restarts")
        self._m_global_restarts = m.counter("ft.global_restarts")
        self._m_downtime = m.histogram("ft.downtime_s")
        self._m_suspected = m.counter("disp.suspected")
        self._m_suspect = m.gauge("disp.suspect")
        # fault -> detection latency, split by which detector fired: the
        # socket-disconnection detector (the paper's "trusty" one) or the
        # heartbeat monitor that had already flagged the rank suspect
        self._m_detect_lat = {
            "socket": m.histogram("disp.detect_latency_s", source="socket"),
            "heartbeat": m.histogram("disp.detect_latency_s", source="heartbeat"),
        }
        # ranks currently between fault and caught-up (outstanding
        # recoveries), kept as a time-weighted gauge for the sampler
        self.recovering: set[int] = set()
        self._m_recovering = m.gauge("disp.recovering")
        self.tracer.subscribe(self._note_caught_up, kinds={"v2.caught_up"})
        # heartbeat bookkeeping: last PING (or accept) per rank, and the
        # set of ranks whose link has gone quiet past hb_timeout —
        # partitioned-but-alive daemons the socket detector cannot see
        self.last_hb: dict[int, float] = {}
        self.suspects: set[int] = set()
        self.listener = _ControlListener(
            self, self.sim, host, fabric, "dispatcher",
            tracer=self.tracer, metrics=self.metrics,
        )

    # -- launch --------------------------------------------------------------
    def start(self) -> None:
        """Listen for daemon control links and launch every rank."""
        self.listener.start()
        for r in range(self.nprocs):
            self._spawn_rank(r, self.cn_hosts[r])
        if self.cfg.hb_interval > 0 and self.cfg.hb_timeout > 0:
            p = self.sim.spawn(self._hb_monitor(), name="disp.hb-monitor")
            self.host.register(p)

    # -- heartbeat monitoring ------------------------------------------------
    def note_heartbeat(self, rank: int) -> None:
        """A PING (or fresh control connection) arrived from ``rank``."""
        if not (0 <= rank < self.nprocs):
            return
        self.last_hb[rank] = self.sim.now
        if rank in self.suspects:
            self.suspects.discard(rank)
            self._m_suspect.set(float(len(self.suspects)), self.sim.now)
            self.tracer.emit(self.sim.now, "ft.suspect_clear", rank=rank)

    def _hb_monitor(self):
        """Flag ranks whose heartbeats stopped without a socket break.

        A crashed host tears its control stream down and the socket
        detector handles it; this loop catches the *partitioned* case,
        where the stream stays up but nothing flows."""
        timeout = self.cfg.hb_timeout
        while not self.done.done:
            yield self.sim.pause(timeout / 2)
            now = self.sim.now
            for st in self.states:
                r = st.rank
                if st.finished or st.host is None or st.host.failed:
                    continue
                seen = self.last_hb.get(r, st.spawn_time)
                if now - seen > timeout and r not in self.suspects:
                    self.suspects.add(r)
                    self._m_suspected.inc()
                    self._m_suspect.set(float(len(self.suspects)), now)
                    self.tracer.emit(
                        now, "ft.suspect", rank=r, quiet_s=now - seen
                    )

    def _note_caught_up(self, time: float, kind: str, fields: dict) -> None:
        rank = fields.get("rank")
        if rank in self.recovering:
            self.recovering.discard(rank)
            self._m_recovering.set(float(len(self.recovering)), time)

    def stop(self, cause: Any = "disp-crash") -> None:
        """Withdraw the control listener and drop every daemon link."""
        self.listener.stop(cause)

    def _trigger_global_restart(self) -> None:
        if self._global_restarting or self.done.done:
            return
        self._global_restarting = True
        p = self.sim.spawn(self._global_restart(), name="disp.global-restart")
        self.host.register(p)

    def _global_restart(self):
        self.tracer.emit(self.sim.now, "ft.global_restart")
        self._m_global_restarts.inc()
        # per-rank recovery arcs are superseded by the global one
        self.recovering.clear()
        self._m_recovering.set(0.0, self.sim.now)
        # invalidate every per-rank monitor/restart before tearing down
        for st in self.states:
            st.incarnation += 1
            st.finished = False
        for st in self.states:
            if st.host is not None and not st.host.failed:
                st.host.crash()
        yield self.sim.pause(
            self.cfg.restart_detect_delay + self.cfg.restart_spawn_delay
        )
        if self.done.done:
            return
        # the previous execution's logs describe a dead history: wipe them
        if self.wipe_logs is not None:
            self.wipe_logs()
        for st in self.states:
            if st.host is not None and st.host.failed:
                st.host.restart()
        self.global_restarts += 1
        self._global_restarting = False
        for st in self.states:
            # incarnation was already bumped; _spawn_rank bumps again, so
            # compensate to keep the sequence dense
            st.incarnation -= 1
            self._spawn_rank(st.rank, st.host)

    def _spawn_rank(self, rank: int, host: Host) -> None:
        st = self.states[rank]
        st.host = host
        st.spawn_time = self.sim.now
        st.incarnation += 1
        incarnation = st.incarnation
        daemon = V2Daemon(
            self.sim,
            self.cfg,
            self.fabric,
            rank,
            self.nprocs,
            host,
            incarnation=incarnation,
            el_names=self.el_groups[rank % len(self.el_groups)],
            cs_names=self.cs_names,
            sched_name=self.sched_name,
            dispatcher_name="dispatcher",
            tracer=self.tracer,
            metrics=self.metrics,
            mutations=self.mutations,
            rng=self.cluster.rng.stream(f"{self.rng_ns}reconnect:d{rank}"),
            job_key=self.job_key(rank) if self.job_key is not None else None,
        )
        device = V2Device(
            self.sim, self.cfg, rank, self.nprocs, host, daemon,
            tracer=self.tracer,
        )
        mpi = MPI(self.sim, rank, self.nprocs, device, tracer=self.tracer)
        st.daemon = daemon
        st.mpi = mpi

        dproc = self.sim.spawn(
            daemon.start(), name=f"daemon{rank}.i{incarnation}"
        )
        host.register(dproc)
        aproc = self.sim.spawn(
            rank_main(mpi, self.program, self.params),
            name=f"rank{rank}.i{incarnation}",
            supervised=True,
        )
        host.register(aproc)
        st.app_done = aproc.done
        aproc.done.add_done_callback(
            lambda fut, r=rank, inc=incarnation: self._app_finished(r, inc, fut)
        )
        host.on_crash.append(
            lambda h, r=rank, inc=incarnation: self._on_host_crash(r, inc)
        )

    # -- monitoring / recovery ---------------------------------------------------
    def _app_finished(self, rank: int, incarnation: int, fut: Future) -> None:
        st = self.states[rank]
        if st.incarnation != incarnation:
            return
        exc = fut.exception
        if exc is None:
            finish_time, result = fut.value
            st.finished = True
            st.result = result
            st.finish_time = finish_time
            if all(s.finished for s in self.states) and not self.done.done:
                self.done.resolve([s.result for s in self.states])
            return
        if isinstance(exc, Killed):
            return  # the host crashed; _on_host_crash drives the restart
        # a genuine program/runtime error: abort the job loudly
        self.done.fail_if_pending(exc)

    def _on_host_crash(self, rank: int, incarnation: int) -> None:
        st = self.states[rank]
        if st.incarnation != incarnation or self.done.done:
            return
        self.recovering.add(rank)
        self._m_recovering.set(float(len(self.recovering)), self.sim.now)
        p = self.sim.spawn(
            self._restart(rank, incarnation), name=f"disp.restart{rank}"
        )
        self.host.register(p)

    def _restart(self, rank: int, incarnation: int):
        st = self.states[rank]
        t_crash = self.sim.now
        yield self.sim.pause(self.cfg.restart_detect_delay)
        if self.done.done or st.incarnation != incarnation:
            return
        # a rank already flagged by the heartbeat monitor (partitioned,
        # then crashed) is attributed to the heartbeat detector; the
        # common crash path is the socket-disconnection detector
        source = "heartbeat" if rank in self.suspects else "socket"
        latency = self.sim.now - t_crash
        self._m_detect_lat[source].observe(latency)
        self.tracer.emit(
            self.sim.now, "ft.detect", rank=rank, source=source,
            latency_s=latency,
        )
        old_host = st.host
        if self.spare_hosts:
            host = self.spare_hosts.pop(0)
        else:
            host = old_host
        yield self.sim.pause(self.cfg.restart_spawn_delay)
        if self.done.done or st.incarnation != incarnation:
            return
        if host.failed:
            host.restart()
        st.finished = False  # a finished rank can be re-executed to serve peers
        st.restarts += 1
        self.total_restarts += 1
        self._m_restarts.inc()
        self._m_downtime.observe(self.sim.now - t_crash)
        self.tracer.emit(
            self.sim.now, "ft.restart", rank=rank, incarnation=incarnation + 1,
            host=host.name,
        )
        self._spawn_rank(rank, host)

    # -- fault-injection context ---------------------------------------------------
    def fault_context(self) -> FaultContext:
        """The kill/inspect interface handed to fault injectors."""
        def alive_unfinished() -> list[int]:
            return [
                s.rank
                for s in self.states
                if not s.finished and s.host is not None and not s.host.failed
            ]

        def kill(rank: int) -> bool:
            st = self.states[rank]
            if st.host is None or st.host.failed or self.done.done:
                return False
            self.tracer.emit(self.sim.now, "ft.fault", rank=rank)
            self._m_faults.inc()
            st.host.crash()
            return True

        def partition(ranks, duration: float):
            """Cut the hosts of ``ranks`` off from everything else."""
            net = self.cluster.net
            group = {
                self.states[r].host
                for r in ranks
                if self.states[r].host is not None
            }
            rest = [h for h in net.hosts.values() if h not in group]
            return net.partition(group, rest, duration)

        def flap_link(a: int, b: int) -> int:
            """Break the live streams between the hosts of ranks a and b."""
            ha, hb = self.states[a].host, self.states[b].host
            if ha is None or hb is None or ha.failed or hb.failed:
                return 0
            return self.cluster.net.break_links(ha, hb, cause="link-flap")

        def crash_service(name: str, downtime: float = 0.0) -> None:
            assert self.supervisor is not None
            self.supervisor.crash(name, downtime)

        def restart_service(name: str) -> None:
            assert self.supervisor is not None
            self.supervisor.restart(name)

        def spawn(gen, label: str):
            p = self.sim.spawn(gen, name=label)
            self.host.register(p)
            return p

        supervised = (
            tuple(sorted(self.supervisor.services))
            if self.supervisor is not None
            else ()
        )
        return FaultContext(
            sim=self.sim,
            alive_unfinished=alive_unfinished,
            kill=kill,
            job_running=lambda: not self.done.done,
            partition=partition,
            crash_service=crash_service if self.supervisor else None,
            restart_service=restart_service if self.supervisor else None,
            flap_link=flap_link,
            spawn=spawn,
            service_names=supervised,
        )


def run_v2_job(
    program: Callable,
    nprocs: int,
    cfg: TestbedConfig,
    params: dict[str, Any],
    trace: bool,
    seed: int,
    limit: Optional[float],
    *,
    checkpointing: bool = False,
    ckpt_policy: str = "round_robin",
    ckpt_interval: float = 30.0,
    ckpt_continuous: bool = False,
    faults: Optional[Any] = None,
    n_event_loggers: int = 1,
    spares: int = 0,
    on_ready: Optional[Callable[[dict], None]] = None,
    plan: Optional["DeploymentPlan"] = None,
    audit: bool = False,
    audit_hb: bool = False,
    mutations: Optional[frozenset] = None,
    profile: bool = False,
    timeseries: Any = False,
) -> JobResult:
    """Deploy and run an MPICH-V2 job.

    Without a ``plan``, the paper's typical setup is used: one reliable
    machine hosting the dispatcher, the event logger(s) and the
    checkpoint scheduler, one reliable machine for the checkpoint
    server, plus the volatile computing nodes.  A
    :class:`~repro.runtime.progfile.DeploymentPlan` (e.g. parsed from a
    §4.7 program file) overrides machine placement; its computing-node
    count must match ``nprocs``.

    ``audit=True`` attaches the online protocol auditor to the live
    trace stream (``audit_hb`` additionally collects the happens-before
    graph); the verdict lands in ``JobResult.audit``.  ``mutations`` is
    a test-only set of deliberate protocol violations to seed (see
    :class:`~repro.core.v2_device.V2Daemon`) so the auditor's detectors
    can be exercised.
    """
    cluster = Cluster(cfg, seed=seed, trace=trace)
    sim = cluster.sim
    fabric = Fabric(cluster)
    profiler = None
    if profile:
        from ..obs.profile import KernelProfiler

        profiler = KernelProfiler()
        profiler.install(sim)
    sampler = None
    if timeseries:
        from ..obs.timeseries import TimeseriesSampler

        sampler = TimeseriesSampler.from_flag(cluster.metrics, timeseries)
        sampler.install(sim)
    auditor = None
    if audit:
        from ..obs.audit import ProtocolAuditor

        auditor = ProtocolAuditor(hb_graph=audit_hb).attach(cluster.tracer)

    if plan is not None and plan.nprocs != nprocs:
        raise ValueError(
            f"program file declares {plan.nprocs} computing nodes, "
            f"job asked for {nprocs}"
        )

    n_cs = max(1, cfg.ckpt_servers)
    n_event_loggers = max(n_event_loggers, cfg.el_servers)
    if plan is None:
        service = cluster.add_aux("service")  # dispatcher + EL(s) + scheduler
        cs_hosts = [
            cluster.add_aux("cs-host" if i == 0 else f"cs-host{i}")
            for i in range(n_cs)
        ]
        cn_hosts = [cluster.add_cn(f"cn{r}") for r in range(nprocs)]
        spare_hosts = [cluster.add_cn(f"spare{i}") for i in range(spares)]
        el_hosts = [service] * n_event_loggers
        sched_host = service
    else:
        aux_names = set(plan.els) | {plan.cs, plan.scheduler, plan.dispatcher}
        machines = {
            name: cluster.add_aux(
                name, site=plan.options.get(name, {}).get("site", "site0")
            )
            for name in sorted(aux_names)
        }
        for name in plan.cns + plan.spares:
            machines[name] = cluster.add_cn(
                name, site=plan.options.get(name, {}).get("site", "site0")
            )
        cn_hosts = [machines[n] for n in plan.cns]
        spare_hosts = [machines[n] for n in plan.spares]
        el_hosts = [machines[n] for n in plan.els]
        # the §4.7 program-file grammar names a single CS machine; extra
        # replicas colocate there (they still fail independently as
        # *services* under the supervisor)
        cs_hosts = [machines[plan.cs]] * n_cs
        sched_host = machines[plan.scheduler]
        service = machines[plan.dispatcher]
        n_event_loggers = len(plan.els)

    supervisor = ServiceSupervisor(
        sim, cfg, tracer=cluster.tracer, metrics=cluster.metrics
    )

    # the EL replication group and the store replica set come from the
    # shared deploy helpers, so the control plane (repro.serve) builds
    # the exact same topology when it shares one deployment between
    # many concurrent jobs
    el_groups, loggers = deploy_el_groups(
        cluster, fabric, cfg, el_hosts,
        n_shards=n_event_loggers, supervisor=supervisor,
    )
    cs_names, servers = deploy_store(
        cluster, fabric, cfg, cs_hosts,
        supervisor=supervisor, mutations=mutations,
    )

    sched_name = None
    scheduler = None
    if checkpointing:
        scheduler = CheckpointScheduler(
            sim,
            sched_host,
            fabric,
            cfg,
            nprocs,
            policy=ckpt_policy,
            interval=ckpt_interval,
            continuous=ckpt_continuous,
            rng=cluster.rng.stream("ckpt-sched"),
            tracer=cluster.tracer,
            cs_names=tuple(cs_names),
            metrics=cluster.metrics,
        )
        scheduler.start()
        sched_name = scheduler.name

    def wipe_logs() -> None:
        for el in loggers:
            el.events.clear()
        for s in servers:
            s.wipe()
        if scheduler is not None:
            scheduler.reset_store_state()

    dispatcher = Dispatcher(
        cluster,
        fabric,
        service,
        program,
        params,
        nprocs,
        cn_hosts,
        spare_hosts,
        el_groups,
        sched_name,
        cs_names,
        wipe_logs=wipe_logs,
        mutations=mutations,
        supervisor=supervisor,
    )
    dispatcher.start()

    if faults is not None:
        if isinstance(faults, (list, tuple)):
            faults = ComposedFaults(tuple(faults))
        ctx = dispatcher.fault_context()
        service.register(sim.spawn(faults.driver(ctx), name="fault-injector"))

    if on_ready is not None:
        # test/chaos hook: lets callers schedule failures of auxiliary
        # components (checkpoint server, ...) before the run starts
        on_ready(
            {
                "sim": sim,
                "cluster": cluster,
                "dispatcher": dispatcher,
                "cs_host": cs_hosts[0],
                "cs_hosts": cs_hosts,
                "service_host": service,
                "checkpoint_server": servers[0],
                "checkpoint_servers": servers,
                "event_loggers": loggers,
                "supervisor": supervisor,
                "network": cluster.net,
            }
        )

    results = sim.run_until(dispatcher.done, limit=limit)
    if sampler is not None:
        sampler.sample(sim.now)  # close the series at job end
    elapsed = max(s.finish_time for s in dispatcher.states)
    stats = finalize_job(
        cluster,
        {r: dispatcher.states[r].mpi.device.stats for r in range(nprocs)},
        "v2",
    )
    report = auditor.finish() if auditor is not None else None
    prof = profiler.finish() if profiler is not None else None
    return JobResult(
        nprocs=nprocs,
        device="v2",
        elapsed=elapsed,
        results=results,
        timers={r: dispatcher.states[r].mpi.timer for r in range(nprocs)},
        tracer=cluster.tracer,
        stats=stats,
        restarts=dispatcher.total_restarts,
        checkpoints=int(cluster.metrics.total("ckpt.images")),
        metrics=cluster.metrics,
        audit=report,
        profile=prof,
        timeseries=sampler,
        extras={
            "global_restarts": dispatcher.global_restarts,
            "event_loggers": loggers,
            "checkpoint_server": servers[0],
            "checkpoint_servers": servers,
            "scheduler": scheduler,
            "dispatcher": dispatcher,
            "faults": faults,
            "supervisor": supervisor,
        },
    )
