"""Fault injection: the paper's volatility model.

"We simulate faults by sending a termination signal to a randomly
selected MPI process. Faults may occur at any time during the execution,
including during the checkpoint or during the re-execution." (Section 5.4)

Process-kill flavours:

* :class:`ExplicitFaults` — a list of ``(time, rank)`` kills, for
  deterministic tests and the Figure 10 re-execution benchmark;
* :class:`RandomFaults` — kills a random non-finished rank every
  ``interval`` seconds (the Figure 11 workload: one fault every 45 s),
  up to ``count`` faults;
* :class:`ChurnFaults` — Weibull node lifetimes (desktop-grid churn).

Infrastructure flavours (beyond the paper, which assumes a reliable
network and reliable auxiliary nodes):

* :class:`PartitionFaults` — transient network cuts between host groups;
* :class:`ServiceFaults` — crash/restart of the event logger or the
  checkpoint server (durable state survives, connections reset);
* :class:`LinkFlapFaults` — forced stream resets between random rank
  pairs (both endpoints alive, link-level resync required).

Any combination runs in one job via :class:`ComposedFaults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

__all__ = [
    "ExplicitFaults",
    "RandomFaults",
    "ChurnFaults",
    "PartitionFaults",
    "ServiceFaults",
    "LinkFlapFaults",
    "ComposedFaults",
    "FaultPlan",
    "FaultContext",
]


class FaultPlan(Protocol):
    """A fault schedule the dispatcher can execute."""

    def driver(self, ctx: "FaultContext"):  # pragma: no cover - protocol
        ...


@dataclass
class FaultContext:
    """What an injector can see and do (provided by the dispatcher)."""

    sim: object
    alive_unfinished: Callable[[], list[int]]  # ranks eligible for a kill
    kill: Callable[[int], bool]  # returns False if the kill was impossible
    job_running: Callable[[], bool]
    # infrastructure hooks (None when the runtime doesn't provide them):
    partition: Optional[Callable] = None  # (ranks, duration) -> cut the net
    crash_service: Optional[Callable] = None  # (name, downtime)
    restart_service: Optional[Callable] = None  # (name)
    flap_link: Optional[Callable] = None  # (rank_a, rank_b) -> streams broken
    spawn: Optional[Callable] = None  # (gen, label) -> run a child driver
    service_names: tuple = ()  # supervised services available to plans


@dataclass
class ExplicitFaults:
    """Kill exact ranks at exact simulated times."""

    schedule: Sequence[tuple[float, int]]
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        for when, rank in sorted(self.schedule):
            delay = when - ctx.sim.now
            if delay > 0:
                yield ctx.sim.timeout(delay)
            if not ctx.job_running():
                return
            if ctx.kill(rank):
                self.injected.append((ctx.sim.now, rank))


@dataclass
class RandomFaults:
    """Kill a random eligible rank every ``interval`` seconds."""

    interval: float
    count: int
    seed: int = 0
    first_at: Optional[float] = None
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        rng = np.random.default_rng(self.seed)
        yield ctx.sim.timeout(
            self.first_at if self.first_at is not None else self.interval
        )
        done = 0
        while done < self.count and ctx.job_running():
            targets = ctx.alive_unfinished()
            if targets:
                rank = int(rng.choice(targets))
                if ctx.kill(rank):
                    self.injected.append((ctx.sim.now, rank))
                    done += 1
            if done < self.count:
                yield ctx.sim.timeout(self.interval)


@dataclass
class ChurnFaults:
    """Desktop-grid churn: node lifetimes drawn from a Weibull distribution.

    The paper motivates MPICH-V2 with "campus/industry wide desktop Grids
    with volatile nodes" where machines "join/leave the system
    independently and unpredictably".  Empirical desktop-grid studies fit
    machine availability with Weibull lifetimes; ``shape < 1`` gives the
    heavy-tailed churn typical of volunteer machines.

    Every ``check_interval`` the injector draws which currently-running
    ranks die, until ``max_faults`` is reached (a safety bound, not a
    target).
    """

    mean_lifetime: float  # mean node lifetime, simulated seconds
    shape: float = 0.7  # Weibull shape (<1: heavy-tailed)
    max_faults: int = 50
    seed: int = 0
    check_interval: float = 0.5
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the churn process (spawned by the dispatcher)."""
        import math

        rng = np.random.default_rng(self.seed)
        # per-rank scheduled death time; re-drawn after each restart
        deaths: dict[int, float] = {}
        # Weibull mean = scale * Gamma(1 + 1/shape)
        scale = self.mean_lifetime / math.gamma(1 + 1 / self.shape)
        while ctx.job_running() and len(self.injected) < self.max_faults:
            now = ctx.sim.now
            for rank in ctx.alive_unfinished():
                if rank not in deaths:
                    deaths[rank] = now + scale * rng.weibull(self.shape)
            for rank, when in list(deaths.items()):
                if when <= now and rank in ctx.alive_unfinished():
                    if ctx.kill(rank):
                        self.injected.append((now, rank))
                    del deaths[rank]
                    if len(self.injected) >= self.max_faults:
                        return
            yield ctx.sim.timeout(self.check_interval)


@dataclass
class PartitionFaults:
    """Transient network partitions: ``(at, ranks, duration)`` windows.

    At each scheduled time the hosts of ``ranks`` are cut off from the
    rest of the fabric for ``duration`` seconds.  Hosts stay up; crossing
    traffic is deferred until the cut heals, and connects across the cut
    are refused.
    """

    schedule: Sequence[tuple[float, Sequence[int], float]]
    injected: list[tuple[float, tuple, float]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        if ctx.partition is None:
            return
        for when, ranks, duration in sorted(self.schedule, key=lambda s: s[0]):
            delay = when - ctx.sim.now
            if delay > 0:
                yield ctx.sim.timeout(delay)
            if not ctx.job_running():
                return
            ctx.partition(tuple(ranks), duration)
            self.injected.append((ctx.sim.now, tuple(ranks), duration))


@dataclass
class ServiceFaults:
    """Crash supervised services: ``(at, name, downtime)`` windows.

    ``name`` is the service's fabric name ("el:0", "cs:0").  The service
    loses its listener and every connection but keeps its durable state;
    the supervisor relaunches it after ``downtime`` (floored by
    ``cfg.svc_restart_delay``).
    """

    schedule: Sequence[tuple[float, str, float]]
    injected: list[tuple[float, str, float]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        if ctx.crash_service is None:
            return
        for when, name, downtime in sorted(self.schedule, key=lambda s: s[0]):
            delay = when - ctx.sim.now
            if delay > 0:
                yield ctx.sim.timeout(delay)
            if not ctx.job_running():
                return
            if name not in ctx.service_names:
                continue
            ctx.crash_service(name, downtime)
            self.injected.append((ctx.sim.now, name, downtime))


@dataclass
class LinkFlapFaults:
    """Break the streams between random live rank pairs, ``count`` times.

    Both endpoints stay up: readers and writers see ``Disconnected`` and
    must re-establish and resynchronize the link (duplicate discard via
    the forwarded watermark, RESTART1 resync both ways).
    """

    interval: float
    count: int
    seed: int = 0
    injected: list[tuple[float, int, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        if ctx.flap_link is None:
            return
        rng = np.random.default_rng(self.seed)
        done = 0
        while done < self.count and ctx.job_running():
            yield ctx.sim.timeout(self.interval)
            if not ctx.job_running():
                return
            targets = ctx.alive_unfinished()
            if len(targets) < 2:
                continue
            a, b = (int(r) for r in rng.choice(targets, size=2, replace=False))
            if ctx.flap_link(a, b):
                self.injected.append((ctx.sim.now, a, b))
                done += 1


@dataclass
class ComposedFaults:
    """Run several fault plans concurrently in one job."""

    plans: Sequence[FaultPlan]

    def driver(self, ctx: FaultContext):
        """Spawn each child plan's driver as its own process."""
        if ctx.spawn is not None:
            for i, plan in enumerate(self.plans):
                ctx.spawn(plan.driver(ctx), f"faults[{i}]")
            yield ctx.sim.timeout(0.0)
        else:  # degenerate fallback: run the plans back to back
            for plan in self.plans:
                yield from plan.driver(ctx)

    @property
    def injected(self) -> list:
        """Union of the children's injections (time-ordered)."""
        out: list = []
        for plan in self.plans:
            out.extend(getattr(plan, "injected", ()))
        return sorted(out, key=lambda rec: rec[0])
