"""Fault injection: the paper's volatility model.

"We simulate faults by sending a termination signal to a randomly
selected MPI process. Faults may occur at any time during the execution,
including during the checkpoint or during the re-execution." (Section 5.4)

Two schedule flavours:

* :class:`ExplicitFaults` — a list of ``(time, rank)`` kills, for
  deterministic tests and the Figure 10 re-execution benchmark;
* :class:`RandomFaults` — kills a random non-finished rank every
  ``interval`` seconds (the Figure 11 workload: one fault every 45 s),
  up to ``count`` faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

__all__ = ["ExplicitFaults", "RandomFaults", "ChurnFaults", "FaultPlan"]


class FaultPlan(Protocol):
    """A fault schedule the dispatcher can execute."""

    def driver(self, ctx: "FaultContext"):  # pragma: no cover - protocol
        ...


@dataclass
class FaultContext:
    """What an injector can see and do (provided by the dispatcher)."""

    sim: object
    alive_unfinished: Callable[[], list[int]]  # ranks eligible for a kill
    kill: Callable[[int], bool]  # returns False if the kill was impossible
    job_running: Callable[[], bool]


@dataclass
class ExplicitFaults:
    """Kill exact ranks at exact simulated times."""

    schedule: Sequence[tuple[float, int]]
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        for when, rank in sorted(self.schedule):
            delay = when - ctx.sim.now
            if delay > 0:
                yield ctx.sim.timeout(delay)
            if not ctx.job_running():
                return
            if ctx.kill(rank):
                self.injected.append((ctx.sim.now, rank))


@dataclass
class RandomFaults:
    """Kill a random eligible rank every ``interval`` seconds."""

    interval: float
    count: int
    seed: int = 0
    first_at: Optional[float] = None
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the schedule (spawned by the dispatcher)."""
        rng = np.random.default_rng(self.seed)
        yield ctx.sim.timeout(
            self.first_at if self.first_at is not None else self.interval
        )
        done = 0
        while done < self.count and ctx.job_running():
            targets = ctx.alive_unfinished()
            if targets:
                rank = int(rng.choice(targets))
                if ctx.kill(rank):
                    self.injected.append((ctx.sim.now, rank))
                    done += 1
            if done < self.count:
                yield ctx.sim.timeout(self.interval)


@dataclass
class ChurnFaults:
    """Desktop-grid churn: node lifetimes drawn from a Weibull distribution.

    The paper motivates MPICH-V2 with "campus/industry wide desktop Grids
    with volatile nodes" where machines "join/leave the system
    independently and unpredictably".  Empirical desktop-grid studies fit
    machine availability with Weibull lifetimes; ``shape < 1`` gives the
    heavy-tailed churn typical of volunteer machines.

    Every ``check_interval`` the injector draws which currently-running
    ranks die, until ``max_faults`` is reached (a safety bound, not a
    target).
    """

    mean_lifetime: float  # mean node lifetime, simulated seconds
    shape: float = 0.7  # Weibull shape (<1: heavy-tailed)
    max_faults: int = 50
    seed: int = 0
    check_interval: float = 0.5
    injected: list[tuple[float, int]] = field(default_factory=list)

    def driver(self, ctx: FaultContext):
        """Run the churn process (spawned by the dispatcher)."""
        import math

        rng = np.random.default_rng(self.seed)
        # per-rank scheduled death time; re-drawn after each restart
        deaths: dict[int, float] = {}
        # Weibull mean = scale * Gamma(1 + 1/shape)
        scale = self.mean_lifetime / math.gamma(1 + 1 / self.shape)
        while ctx.job_running() and len(self.injected) < self.max_faults:
            now = ctx.sim.now
            for rank in ctx.alive_unfinished():
                if rank not in deaths:
                    deaths[rank] = now + scale * rng.weibull(self.shape)
            for rank, when in list(deaths.items()):
                if when <= now and rank in ctx.alive_unfinished():
                    if ctx.kill(rank):
                        self.injected.append((now, rank))
                    del deaths[rank]
                    if len(self.injected) >= self.max_faults:
                        return
            yield ctx.sim.timeout(self.check_interval)
