"""Supervision of auxiliary services (event loggers, checkpoint server).

The paper runs the event loggers and the checkpoint server "on a reliable
component of the system" — but the processes themselves can still crash
and be restarted by an init-style supervisor while their durable storage
survives.  This module models exactly that failure mode: a *service-level*
crash (listener gone, connections reset, in-flight requests lost, state
kept) followed by a supervised relaunch after a short delay.

This is distinct from a *host-level* crash of an auxiliary node (see
``TestbedConfig.reliable_aux``), which is permanent: the storage is gone
and the system degrades to restart-from-scratch.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..simnet.kernel import Simulator
from ..simnet.trace import Tracer

__all__ = ["ServiceSupervisor"]


class ServiceSupervisor:
    """Restarts crashed auxiliary services after ``svc_restart_delay``.

    Services register under their fabric name ("el:0", "cs:0", ...) and
    must expose ``start()``, ``stop(cause)`` and a ``host`` attribute.
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        m = metrics if metrics is not None else Metrics()
        self._m_crashes = m.counter("svc.crashes")
        self._m_restarts = m.counter("svc.restarts")
        self.services: dict[str, Any] = {}
        self.crashes = 0
        self.restarts = 0

    def register(self, name: str, service: Any) -> Any:
        """Place a (started) service under supervision."""
        self.services[name] = service
        return service

    def crash(self, name: str, downtime: float = 0.0) -> None:
        """Crash the named service; schedule its supervised relaunch.

        The service is down for ``max(downtime, cfg.svc_restart_delay)``
        simulated seconds, during which connects to its name are refused.
        """
        svc = self.services.get(name)
        if svc is None:
            raise KeyError(f"no supervised service {name!r}")
        svc.stop(f"{name} crashed")
        self.crashes += 1
        self._m_crashes.inc()
        down = max(downtime, self.cfg.svc_restart_delay)
        self.tracer.emit(self.sim.now, "svc.crash", service=name, down=down)
        self.sim.at(self.sim.now + down, lambda: self._relaunch(name, svc))

    def restart(self, name: str) -> None:
        """Immediately relaunch the named service (e.g. after a manual stop)."""
        svc = self.services.get(name)
        if svc is None:
            raise KeyError(f"no supervised service {name!r}")
        self._relaunch(name, svc)

    def _relaunch(self, name: str, svc: Any) -> None:
        if svc.host.failed:
            return  # the machine itself died meanwhile: nothing to respawn on
        if self.services.get(name) is not svc:
            return  # replaced while down
        svc.start()
        self.restarts += 1
        self._m_restarts.inc()
        self.tracer.emit(self.sim.now, "svc.restart", service=name)
