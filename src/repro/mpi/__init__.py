"""The MPICH-like layered MPI stack: channel interface -> protocol layer
-> ADI progress engine -> user API and collectives.

``MPI`` (the user-level context) is exposed lazily to avoid a circular
import with the channel devices.
"""

from .datatypes import ANY_SOURCE, ANY_TAG, Envelope, Message
from .requests import RecvRequest, Request, SendRequest
from .timing import CallTimer

__all__ = [
    "MPI",
    "SubComm",
    "comm_split",
    "payload_nbytes",
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "Message",
    "RecvRequest",
    "Request",
    "SendRequest",
    "CallTimer",
]


def __getattr__(name):
    if name in ("MPI", "payload_nbytes"):
        from . import api

        return getattr(api, name)
    if name in ("SubComm", "comm_split"):
        from . import communicator

        return getattr(communicator, name)
    raise AttributeError(name)
