"""The Abstract Device Interface: MPICH's progress engine.

Sits between the user-level API and a channel device.  Responsibilities:

* message matching (posted/unexpected queues, wildcards);
* the short/eager/rendezvous protocol state machines;
* the progress pump: blocking calls (wait/recv/probe) receive packets
  from the channel and advance protocol state until their own condition
  holds — exactly MPICH's single-threaded progress model, which is why
  a P4 rendezvous payload is transmitted during *a wait* rather than
  inside MPI_Isend;
* delivery notification: every application-level delivery is reported to
  the device (MPICH-V2 logs the reception event there) together with the
  count of unsuccessful probes since the previous delivery.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..devices.base import ChannelDevice
from ..simnet.kernel import Future, Simulator
from ..simnet.trace import Tracer
from .datatypes import Envelope
from .matching import MatchEngine
from .protocol import Packet, PacketKind
from .requests import RecvRequest, SendRequest

__all__ = ["Adi"]


class Adi:
    """Per-rank progress engine over one channel device."""

    def __init__(
        self,
        sim: Simulator,
        device: ChannelDevice,
        rank: int,
        size: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.rank = rank
        self.size = size
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.match = MatchEngine()
        # rendezvous state
        self._rndv_out: dict[tuple[int, int], tuple[Envelope, SendRequest]] = {}
        self._rndv_in: dict[tuple[int, int], RecvRequest] = {}
        self._unexpected_rts: set[tuple[int, int]] = set()
        # small control packets that could not be pushed without blocking
        self._ctrl_backlog: list[tuple[int, Packet]] = []
        # rendezvous DATA transmissions awaiting a blocking context
        self._data_backlog: list[tuple[Envelope, SendRequest]] = []
        self.probes_since_delivery = 0
        self.deliveries = 0
        # optional external packet filter (returns False to swallow)
        self.on_packet: Optional[Callable[[int, Packet], bool]] = None

    # -- sends ---------------------------------------------------------------
    def isend(self, env: Envelope) -> Generator[Future, Any, SendRequest]:
        """Start a send; returns a request (may block inside the device)."""
        req = SendRequest(self.sim, env)
        if env.dst == self.rank:
            self._arrived_payload(env)
            req.done.resolve(None)
            return req
        eager_limit = (
            float("inf") if self.device.eager_override else self.device.cfg.eager_threshold
        )
        if env.nbytes <= eager_limit:
            kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
            pkt = Packet(kind, env, payload_bytes=env.nbytes)
            yield from self.device.pibsend(env.dst, pkt)
            req.done.resolve(None)
        else:
            pkt = Packet(PacketKind.RTS, env, payload_bytes=0)
            # register only after pibsend: the device stamps env.sclock (the
            # message id) inside the send, and no packet can be handled
            # while this coroutine holds the MPI process
            sent = yield from self.device.pibsend(env.dst, pkt)
            self._rndv_out[env.msgid] = (env, req)
            if sent is False:
                # suppressed (receiver already has it) or fast-forwarded:
                # the payload sits in the sender-based log; no CTS will come
                self._rndv_out.pop(env.msgid, None)
                req.done.resolve_if_pending(None)
        return req

    def peer_restarted(self, peer: int) -> None:
        """Repair rendezvous state after ``peer`` crashed and restarted.

        Outstanding sends to the peer complete (their payload lives in the
        sender-based log and the RESTART handshake re-delivers it); matched
        inbound rendezvous from the peer are re-posted, because the restarted
        sender will re-emit the message as an inline-payload replay packet.
        """
        for msgid in [m for m, (env, _) in self._rndv_out.items() if env.dst == peer]:
            env, sreq = self._rndv_out.pop(msgid)
            sreq.done.resolve_if_pending(None)
        for msgid in [m for m in self._rndv_in if m[0] == peer]:
            req = self._rndv_in.pop(msgid)
            self.match.posted.insert(0, req)
        # unexpected RTS envelopes from the peer are stale too: the payload
        # will re-arrive inline with the same message id
        stale = {m for m in self._unexpected_rts if m[0] == peer}
        if stale:
            self.match.unexpected = [
                e for e in self.match.unexpected if e.msgid not in stale
            ]
        self._unexpected_rts -= stale
        self._ctrl_backlog = [
            (dst, pkt) for dst, pkt in self._ctrl_backlog if dst != peer
        ]

    # -- receives ---------------------------------------------------------------
    def irecv(self, src: int, tag: int, context: int) -> RecvRequest:
        """Post a receive (never blocks)."""
        req = RecvRequest(self.sim, src, tag, context)
        env = self.match.post(req)
        if env is not None:
            self._matched(req, env)
        return req

    def _matched(self, req: RecvRequest, env: Envelope) -> None:
        """A receive paired with an envelope: deliver or clear-to-send."""
        if env.msgid in self._unexpected_rts:
            self._unexpected_rts.discard(env.msgid)
            self._rndv_in[env.msgid] = req
            cts = Packet(PacketKind.CTS, env, payload_bytes=0, ctrl=env.msgid)
            self._post_ctrl(env.src, cts)
        else:
            self._deliver(req, env)

    def _deliver(self, req: RecvRequest, env: Envelope) -> None:
        req.fulfill(env)
        self.deliveries += 1
        probes = self.probes_since_delivery
        self.probes_since_delivery = 0
        if env.src != self.rank:
            self.device.on_app_deliver(env, probes)
        if self.tracer.hot:
            self.tracer.emit(
                self.sim.now,
                "adi.deliver",
                rank=self.rank,
                src=env.src,
                tag=env.tag,
                nbytes=env.nbytes,
                sclock=env.sclock,
                probes=probes,
            )

    # -- probes ---------------------------------------------------------------
    def iprobe(self, src: int, tag: int, context: int) -> Optional[Envelope]:
        """Non-blocking probe; counts unsuccessful probes for the event log."""
        forced = self.device.force_probe()
        if forced is False:
            self.probes_since_delivery += 1
            return None
        self._progress_nonblocking()
        env = self.match.probe(src, tag, context)
        if env is None:
            self.probes_since_delivery += 1
        return env

    def probe_blocking(
        self, src: int, tag: int, context: int
    ) -> Generator[Future, Any, Envelope]:
        """Blocking probe: pump until a matching message is unexpected."""
        while True:
            self._progress_nonblocking()
            env = self.match.probe(src, tag, context)
            if env is not None:
                return env
            yield from self._pump_one()

    # -- progress ---------------------------------------------------------------
    def wait(self, req) -> Generator[Future, Any, Any]:
        """Pump the progress engine until ``req`` completes."""
        self._progress_nonblocking()
        while not req.complete:
            yield from self._pump_one(lambda: req.complete)
        return req.done.value

    def wait_all(self, reqs) -> Generator[Future, Any, None]:
        """Pump until every request completes."""
        self._progress_nonblocking()
        for req in reqs:
            while not req.complete:
                yield from self._pump_one(lambda: req.complete)

    def wait_any(self, reqs) -> Generator[Future, Any, int]:
        """Pump until at least one request completes; returns its index."""
        self._progress_nonblocking()
        while True:
            for i, req in enumerate(reqs):
                if req.complete:
                    return i
            yield from self._pump_one(lambda: any(r.complete for r in reqs))

    def _pump_one(self, stop: Optional[Callable[[], bool]] = None) -> Generator[Future, Any, None]:
        """Flush deferred work, then receive and handle one packet."""
        yield from self._flush_backlogs()
        if stop is not None and stop():
            return
        src, pkt = yield from self.device.pibrecv()
        yield from self._handle(src, pkt)
        self._progress_nonblocking()

    def _flush_backlogs(self) -> Generator[Future, Any, None]:
        """Push all deferred packets, blocking if the windows are full.

        Blocking here is deadlock-free: devices drain incoming segments
        while a send is window-blocked (the select() fallback).
        """
        while self._ctrl_backlog:
            dst, pkt = self._ctrl_backlog.pop(0)
            yield from self.device.pibsend(dst, pkt)
        while self._data_backlog:
            env, sreq = self._data_backlog.pop(0)
            data_pkt = Packet(PacketKind.DATA, env, payload_bytes=env.nbytes)
            yield from self.device.pibsend(env.dst, data_pkt)
            sreq.done.resolve_if_pending(None)

    def _progress_nonblocking(self) -> None:
        """Handle everything already arrived without blocking.

        CTS packets queue their DATA transmission on a backlog that is
        flushed by the next blocking call — small control replies are
        pushed immediately when the stream window allows.
        """
        self._flush_ctrl()
        for src, pkt in self.device.poll():
            self._handle_nonblocking(src, pkt)
        self._flush_ctrl()

    def _flush_ctrl(self) -> None:
        while self._ctrl_backlog:
            dst, pkt = self._ctrl_backlog[0]
            if self.device.try_send_now(dst, pkt):
                self._ctrl_backlog.pop(0)
            else:
                break

    def _post_ctrl(self, dst: int, pkt: Packet) -> None:
        if self._ctrl_backlog or not self.device.try_send_now(dst, pkt):
            self._ctrl_backlog.append((dst, pkt))

    # -- packet handling ------------------------------------------------------
    def _handle(self, src: int, pkt: Packet) -> Generator[Future, Any, None]:
        """Handle one packet in a blocking context (CTS sends DATA inline)."""
        if self.on_packet is not None and not self.on_packet(src, pkt):
            return
        if pkt.kind is PacketKind.CTS:
            entry = self._rndv_out.pop(pkt.ctrl, None)
            if entry is None:
                return  # duplicate CTS (recovery edge): already served
            env, sreq = entry
            data_pkt = Packet(PacketKind.DATA, env, payload_bytes=env.nbytes)
            yield from self.device.pibsend(env.dst, data_pkt)
            sreq.done.resolve_if_pending(None)
        else:
            self._handle_nonblocking(src, pkt)

    def _handle_nonblocking(self, src: int, pkt: Packet) -> None:
        if self.on_packet is not None and not self.on_packet(src, pkt):
            return
        kind = pkt.kind
        if kind in (PacketKind.SHORT, PacketKind.EAGER):
            self._arrived_payload(pkt.env)
        elif kind is PacketKind.RTS:
            req = self.match.arrived(pkt.env)
            if req is not None:
                self._rndv_in[pkt.env.msgid] = req
                cts = Packet(PacketKind.CTS, pkt.env, payload_bytes=0, ctrl=pkt.env.msgid)
                self._post_ctrl(pkt.env.src, cts)
            else:
                self._unexpected_rts.add(pkt.env.msgid)
        elif kind is PacketKind.DATA:
            req = self._rndv_in.pop(pkt.env.msgid, None)
            if req is None:
                self._arrived_payload(pkt.env)
            else:
                self._deliver(req, pkt.env)
        elif kind is PacketKind.CTS:
            entry = self._rndv_out.pop(pkt.ctrl, None)
            if entry is not None:
                self._data_backlog.append(entry)
        elif kind is PacketKind.CONTROL:
            pass  # device-internal traffic never reaches the ADI
        else:  # pragma: no cover
            raise RuntimeError(f"unhandled packet kind {kind}")

    def _arrived_payload(self, env: Envelope) -> None:
        req = self.match.arrived(env)
        if req is not None:
            self._deliver(req, env)

    # -- teardown ---------------------------------------------------------------
    def quiescent(self) -> bool:
        """No protocol state in flight (used by finalize sanity checks)."""
        return (
            not self._rndv_out
            and not self._rndv_in
            and not self._ctrl_backlog
            and not self._data_backlog
        )
