"""The user-level MPI API.

One :class:`MPI` object per rank, handed to the application program (a
generator function).  All potentially blocking operations are generator
functions invoked with ``yield from``; nonblocking operations return
request objects completed later by ``wait``/``waitall``.

Per-call simulated time is attributed to a category by :class:`CallTimer`
(reproducing Table 1 of the paper); every call boundary also runs the
device's checkpoint-safe-point hook.

Data semantics: ``nbytes`` drives the timing model; ``data`` is an
optional payload object, which must be treated as immutable once sent
(the sender-based log of MPICH-V2 retains a reference, exactly like the
real implementation retains the bytes).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from ..devices.base import ChannelDevice
from ..simnet.kernel import Future, Simulator
from ..simnet.trace import Tracer
from .adi import Adi
from .datatypes import ANY_SOURCE, ANY_TAG, CTX_PT2PT, Envelope, Message
from .requests import RecvRequest, Request, SendRequest
from .timing import CallTimer

__all__ = ["MPI", "payload_nbytes"]

_API_CALL_CPU = 1.5e-6  # library entry/exit cost per MPI call


def payload_nbytes(data: Any) -> int:
    """Estimate the wire size of a payload object."""
    if data is None:
        return 0
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (int, float)):
        return 8
    if isinstance(data, (list, tuple)):
        return 16 + sum(payload_nbytes(x) for x in data)
    return 64


class MPI:
    """The per-rank MPI context handed to application programs."""

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        size: int,
        device: ChannelDevice,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.size = size
        self.device = device
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.adi = Adi(sim, device, rank, size, tracer=self.tracer)
        device.bind_adi(self.adi)
        self.timer = CallTimer()
        self._send_seq = 0
        self._coll_seq = 0
        self.app_footprint = 0  # declared application memory (ckpt image size)
        self.finalized = False

    # -- lifecycle ----------------------------------------------------------
    def init(self) -> Generator[Future, Any, None]:
        """MPI_Init: bring the channel device up."""
        yield from self.device.piinit()

    def finalize(self) -> Generator[Future, Any, None]:
        """Complete outstanding protocol state and close the channel."""
        yield from self.barrier()
        yield from self.device.pifinish()
        self.finalized = True

    def set_footprint(self, nbytes: int) -> None:
        """Declare application memory (sizes the checkpoint image)."""
        self.app_footprint = int(nbytes)
        daemon = getattr(self.device, "daemon", None)
        if daemon is not None:
            daemon.set_app_footprint(nbytes)

    # -- point to point -------------------------------------------------------
    def isend(
        self,
        dest: int,
        nbytes: Optional[int] = None,
        tag: int = 0,
        data: Any = None,
        _context: int = CTX_PT2PT,
        _cat: str = "isend",
    ) -> Generator[Future, Any, SendRequest]:
        """Nonblocking send; returns a :class:`SendRequest`."""
        self.timer.enter(_cat, self.sim.now)
        yield from self.device.ckpt_poll()
        if nbytes is None:
            nbytes = payload_nbytes(data)
        env = Envelope(
            src=self.rank, dst=dest, tag=tag, context=_context, nbytes=nbytes, data=data
        )
        if not self.device.fast_forward():  # inlined _charge_call_cpu
            yield self.sim.pause(_API_CALL_CPU)
        req = yield from self.adi.isend(env)
        self.timer.exit(self.sim.now)
        return req

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        _context: int = CTX_PT2PT,
        _cat: str = "irecv",
    ) -> Generator[Future, Any, RecvRequest]:
        """Nonblocking receive; returns a :class:`RecvRequest`."""
        self.timer.enter(_cat, self.sim.now)
        yield from self.device.ckpt_poll()
        if not self.device.fast_forward():  # inlined _charge_call_cpu
            yield self.sim.pause(_API_CALL_CPU)
        req = self.adi.irecv(source, tag, _context)
        self.timer.exit(self.sim.now)
        return req

    def send(
        self,
        dest: int,
        nbytes: Optional[int] = None,
        tag: int = 0,
        data: Any = None,
        _context: int = CTX_PT2PT,
    ) -> Generator[Future, Any, None]:
        """Blocking send."""
        self.timer.enter("send", self.sim.now)
        req = yield from self.isend(dest, nbytes, tag, data, _context=_context)
        yield from self.adi.wait(req)
        self.timer.exit(self.sim.now)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        _context: int = CTX_PT2PT,
    ) -> Generator[Future, Any, Message]:
        """Blocking receive; returns the delivered :class:`Message`."""
        self.timer.enter("recv", self.sim.now)
        req = yield from self.irecv(source, tag, _context=_context)
        msg = yield from self.adi.wait(req)
        self.timer.exit(self.sim.now)
        return msg

    def sendrecv(
        self,
        dest: int,
        nbytes: Optional[int] = None,
        tag: int = 0,
        data: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Generator[Future, Any, Message]:
        """Combined send+receive (deadlock-free exchange)."""
        self.timer.enter("sendrecv", self.sim.now)
        rreq = yield from self.irecv(source, recvtag)
        sreq = yield from self.isend(dest, nbytes, tag, data)
        yield from self.adi.wait_all([sreq, rreq])
        self.timer.exit(self.sim.now)
        return rreq.message

    # -- completion -------------------------------------------------------------
    def wait(self, req: Request) -> Generator[Future, Any, Any]:
        """Block until ``req`` completes; returns its value."""
        self.timer.enter("wait", self.sim.now)
        yield from self.device.ckpt_poll()
        value = yield from self.adi.wait(req)
        self.timer.exit(self.sim.now)
        return value

    def waitall(self, reqs: Sequence[Request]) -> Generator[Future, Any, list[Any]]:
        """Block until every request completes; returns their values."""
        self.timer.enter("wait", self.sim.now)
        yield from self.device.ckpt_poll()
        yield from self.adi.wait_all(reqs)
        self.timer.exit(self.sim.now)
        return [r.done.value for r in reqs]

    def waitany(self, reqs: Sequence[Request]) -> Generator[Future, Any, int]:
        """Block until one request completes; returns its index."""
        self.timer.enter("wait", self.sim.now)
        yield from self.device.ckpt_poll()
        idx = yield from self.adi.wait_any(reqs)
        self.timer.exit(self.sim.now)
        return idx

    def waitsome(
        self, reqs: Sequence[Request]
    ) -> Generator[Future, Any, list[int]]:
        """Block until at least one completes; returns all completed indices."""
        self.timer.enter("wait", self.sim.now)
        yield from self.device.ckpt_poll()
        yield from self.adi.wait_any(reqs)
        done = [i for i, r in enumerate(reqs) if r.complete]
        self.timer.exit(self.sim.now)
        return done

    def test(self, req: Request) -> Generator[Future, Any, bool]:
        """Nonblocking completion check (advances progress)."""
        self.timer.enter("test", self.sim.now)
        if not self.device.fast_forward():  # inlined _charge_call_cpu
            yield self.sim.pause(_API_CALL_CPU)
        self.adi._progress_nonblocking()
        self.timer.exit(self.sim.now)
        return req.complete

    # -- probing ------------------------------------------------------------------
    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Future, Any, bool]:
        """Nonblocking probe for a matching unexpected message."""
        self.timer.enter("probe", self.sim.now)
        if not self.device.fast_forward():  # inlined _charge_call_cpu
            yield self.sim.pause(_API_CALL_CPU)
        env = self.adi.iprobe(source, tag, CTX_PT2PT)
        self.timer.exit(self.sim.now)
        return env is not None

    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Future, Any, tuple[int, int, int]]:
        """Blocking probe; returns (source, tag, nbytes) of the match."""
        self.timer.enter("probe", self.sim.now)
        env = yield from self.adi.probe_blocking(source, tag, CTX_PT2PT)
        self.timer.exit(self.sim.now)
        return env.src, env.tag, env.nbytes

    # -- compute ----------------------------------------------------------------
    def compute(
        self, seconds: Optional[float] = None, flops: Optional[float] = None
    ) -> Generator[Future, Any, None]:
        """Advance simulated time for a computation segment.

        Exactly one of ``seconds``/``flops`` must be given; ``flops`` is
        converted through the host's sustained compute rate.  The device
        may add CPU tax (daemon competition) or skip the time entirely
        (checkpoint fast-forward during re-execution).
        """
        if (seconds is None) == (flops is None):
            raise ValueError("give exactly one of seconds= or flops=")
        if seconds is None:
            seconds = self.device.host.compute_seconds(flops)
        self.timer.enter("compute", self.sim.now)
        yield from self.device.ckpt_poll()
        yield from self.device.app_compute(seconds)
        self.timer.exit(self.sim.now)

    # -- collectives (implemented in collectives.py) ------------------------------
    def barrier(self) -> Generator[Future, Any, None]:
        """Block until every rank has entered the barrier."""
        from . import collectives

        self.timer.enter("barrier", self.sim.now)
        yield from collectives.barrier(self)
        self.timer.exit(self.sim.now)

    def bcast(self, root: int, nbytes: Optional[int] = None, data: Any = None):
        """Broadcast from ``root``; returns the payload on every rank."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.bcast(self, root, nbytes, data)
        self.timer.exit(self.sim.now)
        return out

    def reduce(self, root: int, value: Any, op=None, nbytes: Optional[int] = None):
        """Reduce to ``root`` (default op: +); None on non-roots."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.reduce(self, root, value, op, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def allreduce(self, value: Any, op=None, nbytes: Optional[int] = None):
        """Reduce-to-all (default op: +)."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.allreduce(self, value, op, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def gather(self, root: int, value: Any, nbytes: Optional[int] = None):
        """Gather to ``root``; rank-ordered list there, None elsewhere."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.gather(self, root, value, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def allgather(self, value: Any, nbytes: Optional[int] = None):
        """Gather-to-all; every rank gets the rank-ordered list."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.allgather(self, value, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def scatter(self, root: int, values: Optional[Sequence[Any]] = None, nbytes: Optional[int] = None):
        """Scatter ``values`` from ``root``; returns this rank's element."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.scatter(self, root, values, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def scan(self, value: Any, op=None, nbytes: Optional[int] = None):
        """Inclusive prefix reduction over ranks 0..self.rank."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.scan(self, value, op, nbytes)
        self.timer.exit(self.sim.now)
        return out

    def alltoall(self, values: Sequence[Any], nbytes_each: Optional[int] = None):
        """Personalized all-to-all: values[i] goes to rank i."""
        from . import collectives

        self.timer.enter("coll", self.sim.now)
        out = yield from collectives.alltoall(self, values, nbytes_each)
        self.timer.exit(self.sim.now)
        return out

    def split(self, color: Any, key: Optional[int] = None):
        """MPI_Comm_split: partition COMM_WORLD into sub-communicators.

        Collective over all ranks; returns a :class:`SubComm` for this
        rank's group (or None for color=None).
        """
        from .communicator import comm_split

        out = yield from comm_split(self, color, key)
        return out

    # -- internals ------------------------------------------------------------------
    def _charge_call_cpu(self) -> Generator[Future, Any, None]:
        if not self.device.fast_forward():
            yield self.sim.pause(_API_CALL_CPU)

    def coll_tag(self) -> int:
        """A fresh internal tag for one collective operation.

        Deterministic per rank call-order, so all ranks agree on the tag of
        the i-th collective — and re-execution regenerates the same tags.
        """
        self._coll_seq += 1
        return self._coll_seq
