"""Collective operations, built on point-to-point like MPICH's MPIR layer.

Algorithms match MPICH 1.2.5's defaults for small/medium clusters:
binomial-tree broadcast and reduce, recursive-doubling allreduce and
barrier (dissemination), ring allgather, pairwise-exchange alltoall.
All collectives run in the ``CTX_COLL`` matching context with a
deterministic per-operation tag, so internal traffic can never match
application receives — and replays regenerate identical tags.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

from ..simnet.kernel import Future
from .datatypes import CTX_COLL

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "scan",
]


def _default_op(a: Any, b: Any) -> Any:
    return a + b


def _send(mpi, dest, nbytes, tag, data):
    req = yield from mpi.isend(dest, nbytes, tag, data, _context=CTX_COLL, _cat="coll")
    yield from mpi.adi.wait(req)


def _recv(mpi, source, tag):
    req = yield from mpi.irecv(source, tag, _context=CTX_COLL, _cat="coll")
    msg = yield from mpi.adi.wait(req)
    return msg


def barrier(mpi) -> Generator[Future, Any, None]:
    """Dissemination barrier: ceil(log2 p) rounds of pairwise signals."""
    p, me = mpi.size, mpi.rank
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return
    tag = mpi.coll_tag()
    step = 1
    while step < p:
        dst = (me + step) % p
        src = (me - step) % p
        sreq = yield from mpi.isend(dst, 4, tag, None, _context=CTX_COLL, _cat="coll")
        rreq = yield from mpi.irecv(src, tag, _context=CTX_COLL, _cat="coll")
        yield from mpi.adi.wait_all([sreq, rreq])
        step <<= 1


def bcast(
    mpi, root: int, nbytes: Optional[int] = None, data: Any = None
) -> Generator[Future, Any, Any]:
    """Binomial-tree broadcast; returns the payload on every rank."""
    p, me = mpi.size, mpi.rank
    tag = mpi.coll_tag()
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return data
    vrank = (me - root) % p  # root is virtual rank 0
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = vrank - mask
            msg = yield from _recv(mpi, (parent + root) % p, tag)
            data, nbytes = msg.data, msg.nbytes
            break
        mask <<= 1
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(data)
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < p:
            yield from _send(mpi, (child + root) % p, nbytes, tag, data)
        mask >>= 1
    return data


def reduce(
    mpi,
    root: int,
    value: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    nbytes: Optional[int] = None,
) -> Generator[Future, Any, Any]:
    """Binomial-tree reduce; returns the reduction on root, None elsewhere."""
    op = op or _default_op
    p, me = mpi.size, mpi.rank
    tag = mpi.coll_tag()
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(value)
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return value
    vrank = (me - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = vrank & ~mask
            yield from _send(mpi, (parent + root) % p, nbytes, tag, acc)
            return None
        child = vrank | mask
        if child < p:
            msg = yield from _recv(mpi, (child + root) % p, tag)
            acc = op(acc, msg.data)
        mask <<= 1
    return acc


def allreduce(
    mpi,
    value: Any,
    op: Optional[Callable[[Any, Any], Any]] = None,
    nbytes: Optional[int] = None,
) -> Generator[Future, Any, Any]:
    """Recursive doubling when p is a power of two; reduce+bcast otherwise."""
    op = op or _default_op
    p, me = mpi.size, mpi.rank
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(value)
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return value
    if p & (p - 1) == 0:
        tag = mpi.coll_tag()
        acc = value
        mask = 1
        while mask < p:
            peer = me ^ mask
            sreq = yield from mpi.isend(
                peer, nbytes, tag, acc, _context=CTX_COLL, _cat="coll"
            )
            rreq = yield from mpi.irecv(peer, tag, _context=CTX_COLL, _cat="coll")
            yield from mpi.adi.wait_all([sreq, rreq])
            # commutative-order discipline: lower rank's value first
            mine, theirs = acc, rreq.message.data
            acc = op(mine, theirs) if me < peer else op(theirs, mine)
            mask <<= 1
        return acc
    acc = yield from reduce(mpi, 0, value, op, nbytes)
    out = yield from bcast(mpi, 0, nbytes, acc)
    return out


def gather(
    mpi, root: int, value: Any, nbytes: Optional[int] = None
) -> Generator[Future, Any, Optional[list[Any]]]:
    """Flat gather to root; returns the rank-ordered list on root."""
    p, me = mpi.size, mpi.rank
    tag = mpi.coll_tag()
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(value)
    if me != root:
        yield from _send(mpi, root, nbytes, tag, (me, value))
        return None
    out: list[Any] = [None] * p
    out[root] = value
    for _ in range(p - 1):
        msg = yield from _recv(mpi, mpi.ANY_SOURCE, tag)
        src_rank, payload = msg.data
        out[src_rank] = payload
    return out


def allgather(
    mpi, value: Any, nbytes: Optional[int] = None
) -> Generator[Future, Any, list[Any]]:
    """Ring allgather: p-1 steps, each forwarding the next block."""
    p, me = mpi.size, mpi.rank
    tag = mpi.coll_tag()
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(value)
    out: list[Any] = [None] * p
    out[me] = value
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return out
    right = (me + 1) % p
    left = (me - 1) % p
    carry_rank, carry = me, value
    for _ in range(p - 1):
        sreq = yield from mpi.isend(
            right, nbytes + 8, tag, (carry_rank, carry), _context=CTX_COLL, _cat="coll"
        )
        rreq = yield from mpi.irecv(left, tag, _context=CTX_COLL, _cat="coll")
        yield from mpi.adi.wait_all([sreq, rreq])
        carry_rank, carry = rreq.message.data
        out[carry_rank] = carry
    return out


def scatter(
    mpi, root: int, values: Optional[Sequence[Any]] = None, nbytes: Optional[int] = None
) -> Generator[Future, Any, Any]:
    """Flat scatter from root; returns this rank's element."""
    p, me = mpi.size, mpi.rank
    tag = mpi.coll_tag()
    if me == root:
        if values is None or len(values) != p:
            raise ValueError("root must supply one value per rank")
        if nbytes is None:
            from .api import payload_nbytes

            nbytes = max(payload_nbytes(v) for v in values)
        for dst in range(p):
            if dst != root:
                yield from _send(mpi, dst, nbytes, tag, values[dst])
        return values[root]
    msg = yield from _recv(mpi, root, tag)
    return msg.data


def alltoall(
    mpi, values: Sequence[Any], nbytes_each: Optional[int] = None
) -> Generator[Future, Any, list[Any]]:
    """Pairwise-exchange alltoall (the FT transpose pattern).

    ``values[i]`` goes to rank i; returns the list received from each rank.
    """
    p, me = mpi.size, mpi.rank
    if len(values) != p:
        raise ValueError("values must have one entry per rank")
    tag = mpi.coll_tag()
    if nbytes_each is None:
        from .api import payload_nbytes

        nbytes_each = max(payload_nbytes(v) for v in values)
    out: list[Any] = [None] * p
    out[me] = values[me]
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return out
    for step in range(1, p):
        peer = me ^ step if (p & (p - 1)) == 0 else (me + step) % p
        recv_peer = peer if (p & (p - 1)) == 0 else (me - step) % p
        sreq = yield from mpi.isend(
            peer, nbytes_each, tag, values[peer], _context=CTX_COLL, _cat="coll"
        )
        rreq = yield from mpi.irecv(recv_peer, tag, _context=CTX_COLL, _cat="coll")
        yield from mpi.adi.wait_all([sreq, rreq])
        out[recv_peer] = rreq.message.data
    return out


def scan(
    mpi, value: Any, op: Optional[Callable[[Any, Any], Any]] = None,
    nbytes: Optional[int] = None,
) -> Generator[Future, Any, Any]:
    """Inclusive prefix reduction: rank i gets op over ranks 0..i.

    The classic log-step parallel-prefix: at step 2^k every rank sends its
    accumulator to rank+2^k and folds what arrives from rank-2^k.
    """
    op = op or _default_op
    p, me = mpi.size, mpi.rank
    if nbytes is None:
        from .api import payload_nbytes

        nbytes = payload_nbytes(value)
    acc = value
    if p == 1:
        yield mpi.sim.timeout(0.0)
        return acc
    tag = mpi.coll_tag()
    step = 1
    while step < p:
        reqs = []
        if me + step < p:
            r = yield from mpi.isend(
                me + step, nbytes, tag + step, acc, _context=CTX_COLL, _cat="coll"
            )
            reqs.append(r)
        rreq = None
        if me - step >= 0:
            rreq = yield from mpi.irecv(
                me - step, tag + step, _context=CTX_COLL, _cat="coll"
            )
            reqs.append(rreq)
        yield from mpi.adi.wait_all(reqs)
        if rreq is not None:
            acc = op(rreq.message.data, acc)
        step <<= 1
    return acc
