"""Sub-communicators: MPI_Comm_split over the matching-context mechanism.

A :class:`SubComm` presents the same API surface as the world
:class:`~repro.mpi.api.MPI` object, with ranks renumbered inside the
group and all traffic carried in a pair of fresh matching contexts (one
point-to-point, one collective), so sub-communicator traffic can never
match world or sibling-communicator receives.  Context ids are derived
deterministically from the parent's context, the split sequence number
and the agreed color list, so every member computes the same ids — and a
re-execution after a crash regenerates them identically (the same
argument as for collective tags).  Splits nest: a SubComm can be split
again.

The collectives in :mod:`repro.mpi.collectives` only use the
``rank``/``size``/``isend``/``irecv``/``adi``/``coll_tag``/``sim``
surface and pass ``_context=CTX_COLL``; a SubComm maps that sentinel to
its own collective context, so the shared algorithms run unchanged
inside any group.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .datatypes import ANY_SOURCE, ANY_TAG, CTX_COLL

__all__ = ["SubComm", "comm_split"]

#: first context id available to sub-communicators (0/1 are the world's)
_FIRST_USER_CTX = 16


def comm_split(parent, color: Any, key: Optional[int] = None):
    """Collective: partition ``parent`` (MPI or SubComm) by ``color``.

    Returns a :class:`SubComm` for this rank's group, or ``None`` for
    ``color is None`` (MPI_UNDEFINED).  ``key`` orders ranks inside the
    new group (ties broken by parent rank).
    """
    key = parent.rank if key is None else key
    entries = yield from parent.allgather(value=(color, key, parent.rank),
                                          nbytes=24)
    parent._split_seq = getattr(parent, "_split_seq", 0) + 1
    if color is None:
        return None
    colors = sorted({c for c, _, _ in entries if c is not None}, key=repr)
    members = sorted((k, r) for c, k, r in entries if c == color)
    ranks = [r for _, r in members]
    # a tree encoding keeps context ids unique across nested/sibling splits
    parent_ctx = getattr(parent, "p2p_context", 0)
    slot = parent._split_seq * max(8, len(colors)) + colors.index(color)
    ctx_base = _FIRST_USER_CTX + 2 * ((parent_ctx + 1) * 1024 + slot)
    return SubComm(parent, ranks, ctx_base)


class SubComm:
    """A communicator over a subset of a parent communicator's ranks."""

    def __init__(self, parent, ranks: Sequence[int], ctx_base: int) -> None:
        if parent.rank not in ranks:
            raise ValueError("calling rank is not a member of the group")
        self.parent = parent
        self.ranks = list(ranks)  # group rank -> parent rank
        self.rank = self.ranks.index(parent.rank)
        self.size = len(self.ranks)
        self.p2p_context = ctx_base
        self.coll_context = ctx_base + 1
        self._coll_seq = 0
        # the surfaces shared algorithms rely on (the ADI/simulator are
        # global; rank translation happens in isend/irecv below)
        self.sim = parent.sim
        self.adi = parent.adi
        self.ANY_SOURCE = ANY_SOURCE
        self.ANY_TAG = ANY_TAG

    # -- translation -------------------------------------------------------
    def _g(self, rank: int) -> int:
        """Group rank -> parent rank."""
        return self.ranks[rank]

    def _ctx(self, _context) -> int:
        """Resolve the context argument.

        ``None`` means this communicator's point-to-point context;
        ``CTX_COLL`` (the sentinel the shared collective algorithms use)
        means its collective context; any other integer is an
        already-resolved context from a nested child and passes through.
        """
        if _context is None or _context == 0:
            return self.p2p_context
        if _context == CTX_COLL:
            return self.coll_context
        return _context

    def coll_tag(self) -> int:
        """Fresh deterministic tag for one collective in this group."""
        self._coll_seq += 1
        return self._coll_seq

    def set_footprint(self, nbytes: int) -> None:
        """Declare application memory (delegates to the world context)."""
        self.parent.set_footprint(nbytes)

    # -- point to point ------------------------------------------------------
    def isend(self, dest, nbytes=None, tag=0, data=None,
              _context=None, _cat="isend"):
        """Nonblocking send to a group rank."""
        req = yield from self.parent.isend(
            self._g(dest), nbytes, tag, data,
            _context=self._ctx(_context), _cat=_cat,
        )
        return req

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG, _context=None,
              _cat="irecv"):
        """Nonblocking receive from a group rank (or ANY_SOURCE)."""
        src = source if source == ANY_SOURCE else self._g(source)
        req = yield from self.parent.irecv(
            src, tag, _context=self._ctx(_context), _cat=_cat,
        )
        return req

    def send(self, dest, nbytes=None, tag=0, data=None):
        """Blocking send to a group rank."""
        req = yield from self.isend(dest, nbytes, tag, data)
        yield from self.adi.wait(req)

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG):
        """Blocking receive; returns the Message."""
        req = yield from self.irecv(source, tag)
        msg = yield from self.adi.wait(req)
        return msg

    def sendrecv(self, dest, nbytes=None, tag=0, data=None,
                 source=ANY_SOURCE, recvtag=ANY_TAG):
        """Combined send+receive within the group."""
        rreq = yield from self.irecv(source, recvtag)
        sreq = yield from self.isend(dest, nbytes, tag, data)
        yield from self.adi.wait_all([sreq, rreq])
        return rreq.message

    # -- completion / compute (rank-agnostic: delegate) -------------------------
    def wait(self, req):
        """Block until the request completes (delegates to the world)."""
        out = yield from self.parent.wait(req)
        return out

    def waitall(self, reqs):
        """Block until every request completes."""
        out = yield from self.parent.waitall(reqs)
        return out

    def waitany(self, reqs):
        """Block until one request completes; returns its index."""
        out = yield from self.parent.waitany(reqs)
        return out

    def waitsome(self, reqs):
        """Block until some requests complete; returns their indices."""
        out = yield from self.parent.waitsome(reqs)
        return out

    def test(self, req):
        """Nonblocking completion check."""
        out = yield from self.parent.test(req)
        return out

    def compute(self, seconds=None, flops=None):
        """Advance simulated time for computation."""
        yield from self.parent.compute(seconds=seconds, flops=flops)

    # -- collectives: the shared algorithms, scoped by this object's surface ----
    def barrier(self):
        """Barrier over the group."""
        from . import collectives

        yield from collectives.barrier(self)

    def bcast(self, root, nbytes=None, data=None):
        """Broadcast from the group rank ``root``."""
        from . import collectives

        out = yield from collectives.bcast(self, root, nbytes, data)
        return out

    def reduce(self, root, value, op=None, nbytes=None):
        """Reduce to the group rank ``root``."""
        from . import collectives

        out = yield from collectives.reduce(self, root, value, op, nbytes)
        return out

    def allreduce(self, value, op=None, nbytes=None):
        """Reduce-to-all over the group."""
        from . import collectives

        out = yield from collectives.allreduce(self, value, op, nbytes)
        return out

    def gather(self, root, value, nbytes=None):
        """Gather to the group rank ``root``."""
        from . import collectives

        out = yield from collectives.gather(self, root, value, nbytes)
        return out

    def allgather(self, value, nbytes=None):
        """Gather-to-all over the group."""
        from . import collectives

        out = yield from collectives.allgather(self, value, nbytes)
        return out

    def scatter(self, root, values=None, nbytes=None):
        """Scatter from the group rank ``root``."""
        from . import collectives

        out = yield from collectives.scatter(self, root, values, nbytes)
        return out

    def alltoall(self, values, nbytes_each=None):
        """Personalized all-to-all over the group."""
        from . import collectives

        out = yield from collectives.alltoall(self, values, nbytes_each)
        return out

    def scan(self, value, op=None, nbytes=None):
        """Inclusive prefix reduction over group ranks 0..rank."""
        from . import collectives

        out = yield from collectives.scan(self, value, op, nbytes)
        return out

    def split(self, color, key=None):
        """Split this communicator further (collective over the group)."""
        out = yield from comm_split(self, color, key)
        return out
