"""Message envelopes and MPI constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "CTX_PT2PT", "CTX_COLL", "Envelope", "Message"]

ANY_SOURCE = -1
ANY_TAG = -1

# communication contexts (a minimal stand-in for MPI communicators: all
# traffic runs in COMM_WORLD, but collectives use a separate matching
# context so internal tags can never collide with application tags)
CTX_PT2PT = 0
CTX_COLL = 1


@dataclass
class Envelope:
    """Everything that identifies one application-level message.

    ``sclock`` is the sender's logical clock at emission: under MPICH-V2
    the couple ``(src, sclock)`` is the unique message identifier used by
    the replay protocol ("part of the remitted message" in the paper); the
    other devices carry a plain per-destination sequence number in the same
    slot, which also preserves MPI's non-overtaking guarantee.
    """

    src: int
    dst: int
    tag: int
    context: int
    nbytes: int
    sclock: int = 0
    data: Any = None

    @property
    def msgid(self) -> tuple[int, int]:
        """The unique message identifier (sender, sender sequence)."""
        return (self.src, self.sclock)

    def matches(self, src: int, tag: int, context: int) -> bool:
        """Does this envelope satisfy a receive for (src, tag, context)?"""
        return (
            context == self.context
            and (src == ANY_SOURCE or src == self.src)
            and (tag == ANY_TAG or tag == self.tag)
        )


@dataclass(frozen=True)
class Message:
    """What a completed receive hands back to the application."""

    source: int
    tag: int
    nbytes: int
    data: Any = None
