"""MPI message matching: posted-receive and unexpected-message queues.

Semantics follow the MPI standard: an arriving message is matched against
posted receives in posting order; a posted receive is matched against
unexpected messages in arrival order; wildcards ``ANY_SOURCE``/``ANY_TAG``
are supported; messages between the same (source, destination) pair are
non-overtaking (guaranteed upstream by FIFO streams and FIFO daemons).

The engine only *pairs* receives with envelopes — delivery (and, for the
rendezvous protocol, the deferred payload transfer) is orchestrated by the
ADI layer, so that a matched rendezvous request-to-send triggers a
clear-to-send instead of an immediate delivery.
"""

from __future__ import annotations

from typing import Optional

from .datatypes import Envelope
from .requests import RecvRequest

__all__ = ["MatchEngine"]


class MatchEngine:
    """Per-rank matching state (pure pairing, no delivery side effects)."""

    def __init__(self) -> None:
        self.posted: list[RecvRequest] = []
        self.unexpected: list[Envelope] = []

    def arrived(self, env: Envelope) -> Optional[RecvRequest]:
        """Offer an arrived envelope.

        Returns the posted receive it pairs with (removed from the posted
        queue), or None after queueing the envelope as unexpected.
        """
        for i, req in enumerate(self.posted):
            if env.matches(req.src, req.tag, req.context):
                self.posted.pop(i)
                return req
        self.unexpected.append(env)
        return None

    def post(self, req: RecvRequest) -> Optional[Envelope]:
        """Post a receive.

        Returns the unexpected envelope it pairs with (removed from the
        unexpected queue), or None after queueing the receive.
        """
        for i, env in enumerate(self.unexpected):
            if env.matches(req.src, req.tag, req.context):
                return self.unexpected.pop(i)
        self.posted.append(req)
        return None

    def probe(self, src: int, tag: int, context: int) -> Optional[Envelope]:
        """First unexpected envelope matching (src, tag, context), if any."""
        for env in self.unexpected:
            if env.matches(src, tag, context):
                return env
        return None

    def cancel(self, req: RecvRequest) -> bool:
        """Remove a posted receive (used at teardown); True if found."""
        try:
            self.posted.remove(req)
            return True
        except ValueError:
            return False

    def idle(self) -> bool:
        """No posted receives and no unexpected messages."""
        return not self.posted and not self.unexpected
