"""The MPICH protocol layer: short / eager / rendezvous packets.

Messages at or below the *eager* threshold travel as a single
payload-carrying packet; larger messages use the three-way rendezvous
(request-to-send, clear-to-send, data).  MPICH 1.2.5's default thresholds
(1 KiB short, 128 KiB eager) are kept: the paper attributes the
non-linearity of Figure 10 between 64 KiB and 128 KiB to exactly this
protocol change.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from .datatypes import Envelope

__all__ = ["PacketKind", "Packet", "wire_bytes", "is_app_payload"]


class PacketKind(Enum):
    """The protocol-layer packet types."""
    SHORT = "short"  # payload inline, control-sized message
    EAGER = "eager"  # payload inline
    RTS = "rts"  # rendezvous request-to-send (envelope only)
    CTS = "cts"  # rendezvous clear-to-send
    DATA = "data"  # rendezvous payload
    # device-internal control packets (restart protocol, GC notices...)
    CONTROL = "control"


@dataclass
class Packet:
    """One protocol-layer packet moving through a channel device."""

    kind: PacketKind
    env: Envelope  # identifies the message (DATA/CTS reuse the RTS envelope)
    payload_bytes: int  # bytes of application payload carried by this packet
    ctrl: Any = None  # kind-specific control data

    @property
    def msgid(self) -> tuple[int, int]:
        """The carried message's unique identifier."""
        return self.env.msgid


def wire_bytes(pkt: Packet, header: int) -> int:
    """Bytes this packet occupies on the wire (header + carried payload)."""
    return header + pkt.payload_bytes


def is_app_payload(pkt: Packet) -> bool:
    """Packets whose (eventual) delivery is an application reception.

    These are the packets whose emission "has an effect on the system" in
    the paper's sense and must therefore be gated behind the event-logger
    acknowledgement in MPICH-V2.
    """
    return pkt.kind in (PacketKind.SHORT, PacketKind.EAGER, PacketKind.RTS, PacketKind.DATA)


def make_send_packets(env: Envelope, eager_threshold: int) -> Packet:
    """The first packet of a message: eager payload or rendezvous RTS."""
    if env.nbytes <= eager_threshold:
        kind = PacketKind.SHORT if env.nbytes <= 1024 else PacketKind.EAGER
        return Packet(kind, env, payload_bytes=env.nbytes)
    return Packet(PacketKind.RTS, env, payload_bytes=0)
