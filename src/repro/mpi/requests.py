"""Nonblocking-communication request objects."""

from __future__ import annotations

from typing import Optional

from ..simnet.kernel import Future, Simulator
from .datatypes import Envelope, Message

__all__ = ["Request", "SendRequest", "RecvRequest"]


class Request:
    """Base class for MPI requests; completion is a kernel future."""

    kind = "request"

    def __init__(self, sim: Simulator, name: str) -> None:
        self.done = Future(sim, name=name)

    @property
    def complete(self) -> bool:
        """Has the operation finished?"""
        return self.done.done

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {'done' if self.complete else 'pending'}>"


class SendRequest(Request):
    """Completes when the send buffer may be reused.

    For the P4 device this is when the payload has been pushed to the
    socket (eager) or transferred after the rendezvous handshake; for the
    V2 device it is as soon as the daemon holds the sender-based copy.
    """

    kind = "send"

    def __init__(self, sim: Simulator, env: Envelope) -> None:
        super().__init__(sim, name=f"send({env.src}->{env.dst} t{env.tag})")
        self.env = env


class RecvRequest(Request):
    """Completes at message delivery; resolves with a :class:`Message`."""

    kind = "recv"

    def __init__(self, sim: Simulator, src: int, tag: int, context: int) -> None:
        super().__init__(sim, name=f"recv(src={src} t{tag})")
        self.src = src
        self.tag = tag
        self.context = context
        self.message: Optional[Message] = None

    def fulfill(self, env: Envelope) -> None:
        """Deliver the matched envelope and resolve the request."""
        self.message = Message(env.src, env.tag, env.nbytes, env.data)
        self.done.resolve(self.message)
