"""Per-call time attribution (reproduces Table 1 of the paper).

Simulated time spent inside each MPI API call is accumulated per
category.  Only the *outermost* call records (``MPI_Send`` implemented as
isend+wait is charged to "send", not split), mirroring how the paper's
instrumentation wraps the user-visible MPI functions.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["CallTimer"]


class CallTimer:
    """Accumulates simulated seconds per MPI call category for one rank."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = defaultdict(float)
        self.counts: dict[str, int] = defaultdict(int)
        self._depth = 0
        self._cat: str = ""
        self._t0 = 0.0

    def enter(self, cat: str, now: float) -> None:
        """Begin an API call; only the outermost category records."""
        self._depth += 1
        if self._depth == 1:
            self._cat = cat
            self._t0 = now

    def exit(self, now: float) -> None:
        """End the innermost open call."""
        if self._depth <= 0:
            raise RuntimeError("CallTimer.exit without matching enter")
        self._depth -= 1
        if self._depth == 0:
            self.totals[self._cat] += now - self._t0
            self.counts[self._cat] += 1

    def get(self, cat: str) -> float:
        """Accumulated seconds for one category."""
        return self.totals.get(cat, 0.0)

    def total(self) -> float:
        """Accumulated seconds across all categories."""
        return sum(self.totals.values())

    def comm_total(self) -> float:
        """Everything except compute (the paper's 'communication time')."""
        return sum(v for k, v in self.totals.items() if k != "compute")

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of the per-category totals."""
        return dict(self.totals)
