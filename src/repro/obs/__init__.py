"""Observability: metrics registry, trace export, recovery timelines.

The paper's claims are mechanism-level claims — event-logger round trips
gating sends, sender logs spilling to disk, checkpoint/restart arcs —
and this package measures exactly those mechanisms:

* :mod:`~repro.obs.registry` — always-on counters/gauges/histograms with
  per-rank and per-component labels (read via ``JobResult.stat(...)``);
* :mod:`~repro.obs.trace_export` — Chrome trace-event JSON (open the
  file at https://ui.perfetto.dev) and JSONL dumps of a run's tracer;
* :mod:`~repro.obs.timeline` — fault → detect → respawn → fetch /
  el-download → resync → replay → caught-up spans per restart, and the
  :class:`~repro.obs.timeline.RecoveryAttribution` phase-decomposed MTTR;
* :mod:`~repro.obs.timeseries` — sampled metric snapshots on a
  simulated-time cadence (bounded ring series, JSONL and Chrome counter
  export);
* :mod:`~repro.obs.collect` — end-of-job folding of hot-path accounting
  into the registry;
* :mod:`~repro.obs.audit` — the online protocol auditor: vector-clock
  stamping and live checking of the V2 safety invariants;
* :mod:`~repro.obs.profile` — the event-kernel profiler (per-kind
  dispatch counts, per-service CPU attribution, events/sec) and the
  critical-path extraction over the auditor's happens-before graph.
"""

from .collect import finalize_job
from .profile import (
    KernelProfile,
    KernelProfiler,
    classify_service,
    critical_path,
)
from .registry import DEFAULT_BOUNDS, Counter, Gauge, Histogram, Metrics
from .timeline import RecoveryAttribution, RestartSpan, recovery_timeline
from .timeseries import DEFAULT_SERIES, TimeseriesSampler
from .trace_export import (
    chrome_trace,
    counter_events,
    merge_chrome_traces,
    trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "DEFAULT_BOUNDS",
    "DEFAULT_SERIES",
    "RecoveryAttribution",
    "RestartSpan",
    "TimeseriesSampler",
    "recovery_timeline",
    "chrome_trace",
    "counter_events",
    "merge_chrome_traces",
    "trace_records",
    "write_chrome_trace",
    "write_trace_jsonl",
    "finalize_job",
    "KernelProfile",
    "KernelProfiler",
    "classify_service",
    "critical_path",
    "AuditReport",
    "ProtocolAuditor",
    "Violation",
    "audit_trace",
]

# the auditor stamps protocol events with core-level clocks, so importing
# it eagerly would close a cycle back through repro.core; resolve the
# audit names on first access instead (PEP 562)
_AUDIT_NAMES = frozenset(
    {"AuditReport", "ProtocolAuditor", "Violation", "audit_trace", "RULES"}
)


def __getattr__(name: str):
    if name in _AUDIT_NAMES:
        from . import audit

        return getattr(audit, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
