"""Observability: metrics registry, trace export, recovery timelines.

The paper's claims are mechanism-level claims — event-logger round trips
gating sends, sender logs spilling to disk, checkpoint/restart arcs —
and this package measures exactly those mechanisms:

* :mod:`~repro.obs.registry` — always-on counters/gauges/histograms with
  per-rank and per-component labels (read via ``JobResult.stat(...)``);
* :mod:`~repro.obs.trace_export` — Chrome trace-event JSON (open the
  file at https://ui.perfetto.dev) and JSONL dumps of a run's tracer;
* :mod:`~repro.obs.timeline` — fault → detect → respawn → replay →
  caught-up spans per restart;
* :mod:`~repro.obs.collect` — end-of-job folding of hot-path accounting
  into the registry.
"""

from .collect import finalize_job
from .registry import DEFAULT_BOUNDS, Counter, Gauge, Histogram, Metrics
from .timeline import RestartSpan, recovery_timeline
from .trace_export import (
    chrome_trace,
    merge_chrome_traces,
    trace_records,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "DEFAULT_BOUNDS",
    "RestartSpan",
    "recovery_timeline",
    "chrome_trace",
    "merge_chrome_traces",
    "trace_records",
    "write_chrome_trace",
    "write_trace_jsonl",
    "finalize_job",
]
