"""The online protocol auditor: live safety checking with causal context.

Definition 3 of the paper argues MPICH-V2 is a *pessimistic* logging
protocol: no in-transit message may depend on an unlogged reception, and
a crashed process must be re-executable from its sender's retained
payloads plus the event logger's reception order.  Those are runtime
invariants, and this module checks them **while the run executes**: a
:class:`ProtocolAuditor` subscribes to the live trace stream (see
:meth:`~repro.simnet.trace.Tracer.subscribe`) and evaluates every
protocol event as it is emitted — no post-hoc trace replay, no record
retention required.

Rules checked (names appear in reports and violation records):

* ``waitlogged`` — a daemon transmitted while a reception event logged
  at a strictly earlier time was still unacknowledged by the event
  logger (the pessimistic WAITLOGGED gate, Section 4.5);
* ``replay-order`` — a re-executed delivery deviated from the logged
  order (or a fresh delivery skipped an event the logger holds);
* ``orphan`` — one incarnation of a rank delivered the same message
  identifier twice: a duplicate the HR watermark should have discarded,
  i.e. a delivery that could orphan its receiver after a fault;
* ``gc-safety`` — a sender-log garbage collection discarded payloads
  beyond the receiver's checkpointed coverage, destroying copies an
  un-checkpointed receiver may still need re-sent;
* ``store-gc`` — the chunk-granular extension of the same invariant to
  the replicated checkpoint store: a replica reclaimed a chunk that some
  rank's latest *quorum-complete* manifest (on that replica) still
  references, i.e. storage a restart may be about to fetch;
* ``el-quorum`` — a quorum-replicated event logger deployment cleared
  the WAITLOGGED gate for an event that fewer than ``quorum`` distinct
  EL replicas had stored (``el.store``) by acknowledgement time: a
  send gated on such an ack could outrun the replication the recovery
  path depends on.

Every audited event is stamped with a Fidge–Mattern vector clock — the
algebra of :class:`~repro.core.clocks.VectorClock`, kept as plain
``{rank: count}`` dicts on the hot path — so each violation reports the
offending rank's causal context; with ``hb_graph=True`` the auditor also
accumulates the happens-before graph — per-rank program order,
send→deliver message edges, and log_event→ack "el" edges (the EL round
trip the WAITLOGGED gate waits on) — for export alongside the Chrome
trace and for :func:`repro.obs.profile.critical_path`.

:func:`audit_trace` runs the same checkers post-hoc over a recorded
tracer — the invariant *logic* lives here either way — but refuses to
declare a truncated (ring-buffer-evicted) stream clean.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from ..core.clocks import VectorClock
from ..simnet.trace import Tracer, TraceRecord

__all__ = ["RULES", "Violation", "AuditReport", "ProtocolAuditor", "audit_trace"]

#: the safety rules the auditor evaluates, in reporting order
RULES = (
    "waitlogged", "replay-order", "orphan", "gc-safety", "store-gc",
    "el-quorum",
)


@dataclass(frozen=True)
class Violation:
    """One detected safety violation, with its causal context."""

    time: float  # simulated seconds
    rule: str  # one of RULES
    rank: int  # the rank at which the violation was observed
    detail: str  # human-readable one-liner (ranks and clocks named)
    vc: dict[int, int]  # the offending rank's vector clock at the event
    context: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly view (for ``repro audit --json-out``)."""
        return {
            "time": self.time,
            "rule": self.rule,
            "rank": self.rank,
            "detail": self.detail,
            "vc": {str(r): c for r, c in self.vc.items()},
            "context": dict(self.context),
        }


@dataclass
class AuditReport:
    """Outcome of one audited run (``JobResult.audit``)."""

    violations: list[Violation]
    checks: dict[str, int]  # rule -> number of checks evaluated
    events_seen: int  # protocol events observed by the auditor
    truncated: bool  # the audited stream lost records (post-hoc only)
    dropped_records: int
    vclocks: dict[int, dict[int, int]]  # final vector clock per rank
    hb: Optional[dict[str, Any]] = None  # happens-before graph, if built

    @property
    def clean(self) -> bool:
        """No violations *and* a complete stream."""
        return not self.violations and not self.truncated

    @property
    def verdict(self) -> str:
        """``clean``, ``violations``, or ``truncated`` (cannot attest)."""
        if self.violations:
            return "violations"
        if self.truncated:
            return "truncated"
        return "clean"

    def count(self, rule: str) -> int:
        """Number of violations of one rule."""
        return sum(1 for v in self.violations if v.rule == rule)

    def vclock(self, rank: int) -> VectorClock:
        """One rank's final causal clock, as a comparable VectorClock."""
        return VectorClock(self.vclocks.get(rank, {}))

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly view of the whole report."""
        out: dict[str, Any] = {
            "verdict": self.verdict,
            "events_seen": self.events_seen,
            "checks": dict(self.checks),
            "truncated": self.truncated,
            "dropped_records": self.dropped_records,
            "violations": [v.as_dict() for v in self.violations],
            "vclocks": {
                str(r): {str(q): c for q, c in vc.items()}
                for r, vc in self.vclocks.items()
            },
        }
        if self.hb is not None:
            out["happens_before"] = self.hb
        return out


class ProtocolAuditor:
    """Streaming checker of the V2 safety invariants.

    Attach to a live run with :meth:`attach` (the normal path — wired by
    ``run_job(..., audit=True)``), or feed recorded records through
    :meth:`observe` for a post-hoc scan.  Call :meth:`finish` once the
    run completes to obtain the :class:`AuditReport`.

    The observe path is deliberately allocation-light — vector clocks
    are plain ``{rank: count}`` dicts, per-rule counters are ints —
    because every protocol event of the run passes through it; the ≤15%
    wall-clock budget of ``benchmarks/bench_observability_overhead.py``
    is the regression fence.
    """

    #: the only trace kinds the auditor asks the tracer to stream — every
    #: other emit (per-segment network records, MPI call timing, ...)
    #: stays on the tracer's one-branch fast path
    INTEREST = frozenset(
        {
            "v2.tx",
            "v2.deliver",
            "v2.log_event",
            "v2.el_ack",
            "v2.gc",
            "v2.ckpt",
            "v2.restart",
            "el.store",
            "store.commit",
            "store.quorum",
            "store.gc",
            "ft.fault",
            "ft.global_restart",
        }
    )

    def __init__(self, hb_graph: bool = False) -> None:
        self.hb_graph = hb_graph
        self.violations: list[Violation] = []
        self.events_seen = 0
        self._n_waitlogged = 0  # checks evaluated, per rule
        self._n_replay = 0
        self._n_orphan = 0
        self._n_gc = 0
        # causal instrumentation: per-rank vector clocks and, per message
        # id (src, sclock), the sender's clock at transmission
        self._vc: dict[int, dict[int, int]] = {}
        self._msg_vc: dict[tuple[int, int], dict[int, int]] = {}
        # waitlogged: per-rank emit times of still-unacknowledged events
        self._pending_el: dict[int, deque[float]] = {}
        # el-quorum: which EL replicas have stored each (rank, rclock)
        self._el_stores: dict[tuple[int, int], set[str]] = {}
        self._n_quorum = 0
        # logged order: EL contents and per-rank delivery history by rclock
        self._el_log: dict[int, dict[int, tuple[int, int]]] = {}
        self._hist: dict[int, dict[int, tuple[int, int]]] = {}
        # orphan detection: ids delivered by the rank's current incarnation
        self._seen_ids: dict[int, set[tuple[int, int]]] = {}
        self._incarnation: dict[int, int] = {}
        # gc safety: each rank's last *completed* checkpoint HR vector
        self._ckpt_hr: dict[int, dict[int, int]] = {}
        # store gc: per (replica, rank) the digests of each committed
        # manifest, and per rank the latest quorum-complete sequence
        self._store_commits: dict[tuple[str, int], dict[int, frozenset]] = {}
        self._store_quorum: dict[int, int] = {}
        self._n_store_gc = 0
        # happens-before graph accumulation; _hb_pending_el mirrors
        # _pending_el with node ids so an ack's "el" edges can point
        # back at the log_event nodes it acknowledges
        self._hb_nodes: list[dict[str, Any]] = []
        self._hb_edges: list[tuple[int, int, str]] = []
        self._last_node: dict[int, int] = {}
        self._tx_node: dict[tuple[int, int], int] = {}
        self._hb_pending_el: dict[int, deque[int]] = {}
        self._tracer: Optional[Tracer] = None

    # -- wiring ------------------------------------------------------------
    def attach(self, tracer: Tracer) -> "ProtocolAuditor":
        """Subscribe to a tracer's live stream; returns self."""
        tracer.subscribe(self.observe, kinds=self.INTEREST)
        self._tracer = tracer
        return self

    def detach(self) -> None:
        """Stop observing the attached tracer."""
        if self._tracer is not None:
            self._tracer.unsubscribe(self.observe)
            self._tracer = None

    # -- the event stream --------------------------------------------------
    def observe(self, time: float, kind: str, f: dict) -> None:
        """Evaluate one protocol event (the subscriber callback)."""
        if kind not in self.INTEREST:
            return  # post-hoc feeds pass every record through
        self.events_seen += 1
        if kind == "v2.deliver":
            self._on_deliver(time, f)
        elif kind == "v2.tx":
            self._on_tx(time, f)
        elif kind == "v2.log_event":
            rank = f["rank"]
            pending = self._pending_el.get(rank)
            if pending is None:
                pending = self._pending_el[rank] = deque()
            pending.append(time)
            if self.hb_graph:
                node = self._hb_add(
                    rank, "log_event", time, f, self._vc.get(rank, {})
                )
                # the reception event exists because a message arrived:
                # give it the message edge from the sender's tx, so idle
                # wait lands on "message" flight, not local program order
                tx = self._tx_node.get((f["src"], f["sclock"]))
                if tx is not None:
                    self._hb_edges.append((tx, node, "message"))
                self._hb_pending_el.setdefault(rank, deque()).append(node)
        elif kind == "v2.el_ack":
            rank = f["rank"]
            pending = self._pending_el.get(rank)
            if pending:
                for _ in range(min(f["n"], len(pending))):
                    pending.popleft()
            # el-quorum: every event this ack releases from the gate must
            # already sit on at least `quorum` distinct replicas
            quorum = f.get("quorum", 0)
            if quorum > 1 and "ids" in f:
                for rclock in f["ids"]:
                    self._n_quorum += 1
                    stored_on = self._el_stores.get((rank, rclock), ())
                    if len(stored_on) < quorum:
                        vc = self._vc.setdefault(rank, {})
                        self._flag(
                            time,
                            "el-quorum",
                            rank,
                            f"rank {rank}'s WAITLOGGED gate cleared rclock "
                            f"{rclock} with {len(stored_on)} of the "
                            f"required {quorum} replica store(s)",
                            vc,
                            rclock=rclock,
                            stored=len(stored_on),
                            quorum=quorum,
                        )
            if self.hb_graph:
                node = self._hb_add(
                    rank, "el_ack", time, f, self._vc.get(rank, {})
                )
                hb_pending = self._hb_pending_el.get(rank)
                if hb_pending:
                    # the ack covers a batch: one "el" edge per event it
                    # acknowledges (the latest is the binding dependency)
                    for _ in range(min(f["n"], len(hb_pending))):
                        self._hb_edges.append(
                            (hb_pending.popleft(), node, "el")
                        )
        elif kind == "el.store":
            store = self._el_log.setdefault(f["rank"], {})
            server = f.get("server")
            rank = f["rank"]
            for rclock, src, sclock in f.get("ids", ()):
                store.setdefault(rclock, (src, sclock))
                if server is not None:
                    self._el_stores.setdefault(
                        (rank, rclock), set()
                    ).add(server)
        elif kind == "v2.gc":
            self._on_gc(time, f)
        elif kind == "v2.ckpt":
            self._ckpt_hr[f["rank"]] = dict(f.get("hr", {}))
        elif kind == "store.commit":
            per = self._store_commits.setdefault((f["server"], f["rank"]), {})
            per[f["seq"]] = frozenset(f.get("digests", ()))
        elif kind == "store.quorum":
            rank, seq = f["rank"], f["seq"]
            if seq > self._store_quorum.get(rank, 0):
                self._store_quorum[rank] = seq
                # commits below the new floor are legitimately collectable
                for (server, r), per in self._store_commits.items():
                    if r == rank:
                        for s in [s for s in per if s < seq]:
                            del per[s]
        elif kind == "store.gc":
            self._on_store_gc(time, f)
        elif kind == "v2.restart":
            rank = f["rank"]
            self._incarnation[rank] = f.get("incarnation", 0)
            self._pending_el[rank] = deque()
            self._seen_ids[rank] = set()
            self._hb_pending_el.pop(rank, None)
        elif kind == "ft.fault":
            # the daemon died with its queues: nothing is pending any more
            self._pending_el[f["rank"]] = deque()
            self._hb_pending_el.pop(f["rank"], None)
        elif kind == "ft.global_restart":
            # logs and images are wiped: the old history constrains nothing
            self._el_log.clear()
            self._el_stores.clear()
            self._hist.clear()
            self._ckpt_hr.clear()
            self._pending_el.clear()
            self._seen_ids.clear()
            self._msg_vc.clear()
            self._store_commits.clear()
            self._store_quorum.clear()
            self._hb_pending_el.clear()

    # -- rules -------------------------------------------------------------
    def _on_tx(self, time: float, f: dict) -> None:
        rank = f["rank"]
        vc = self._vc.get(rank)
        if vc is None:
            vc = self._vc[rank] = {}
        vc[rank] = vc.get(rank, 0) + 1
        payload = f["pkt_kind"] not in ("cts", "control")
        if payload:
            # the message id (sender, sclock): deliveries merge this clock
            self._msg_vc[(rank, f["sclock"])] = vc.copy()
        if self.hb_graph:
            node = self._hb_add(rank, "tx", time, f, vc)
            if payload:
                self._tx_node[(rank, f["sclock"])] = node
        self._n_waitlogged += 1
        pending = self._pending_el.get(rank)
        if pending:
            # events logged at the same instant as the transmission
            # decision are benign (the daemon checked its gate first);
            # only a strictly earlier unacknowledged reception breaks
            # Definition 3
            stale = 0
            for t in pending:
                if t < time:
                    stale += 1
            if stale:
                self._flag(
                    time,
                    "waitlogged",
                    rank,
                    f"rank {rank} transmitted (sclock={f.get('sclock')}, "
                    f"dst={f.get('dst')}) with {stale} unacknowledged "
                    f"reception event(s)",
                    vc,
                    dst=f.get("dst"),
                    sclock=f.get("sclock"),
                    unacked=stale,
                )

    def _on_deliver(self, time: float, f: dict) -> None:
        rank, src = f["rank"], f["src"]
        sclock, rclock = f["sclock"], f["rclock"]
        mode = f.get("mode", "fresh")
        vc = self._vc.get(rank)
        if vc is None:
            vc = self._vc[rank] = {}
        vc[rank] = vc.get(rank, 0) + 1
        mid = (src, sclock)
        sent_vc = self._msg_vc.get(mid)
        if sent_vc is not None:
            for k, v in sent_vc.items():
                if v > vc.get(k, 0):
                    vc[k] = v
        if self.hb_graph:
            node = self._hb_add(rank, "deliver", time, f, vc)
            tx = self._tx_node.get(mid)
            if tx is not None:
                self._hb_edges.append((tx, node, "message"))
        # orphan: within one incarnation every message id is delivered once
        self._n_orphan += 1
        seen = self._seen_ids.get(rank)
        if seen is None:
            seen = self._seen_ids[rank] = set()
        if mid in seen:
            self._flag(
                time,
                "orphan",
                rank,
                f"rank {rank} (incarnation "
                f"{self._incarnation.get(rank, 0)}) delivered message "
                f"({src},{sclock}) twice at rclock {rclock}",
                vc,
                src=src,
                sclock=sclock,
                rclock=rclock,
            )
        seen.add(mid)
        # replay order: re-executed deliveries must follow the logged order
        el_store = self._el_log.get(rank)
        expected_el = el_store.get(rclock) if el_store else None
        if mode != "fresh":
            self._n_replay += 1
            expected = expected_el
            if expected is None:
                hist = self._hist.get(rank)
                expected = hist.get(rclock) if hist else None
            if expected is not None and expected != mid:
                self._flag(
                    time,
                    "replay-order",
                    rank,
                    f"rank {rank} replayed rclock {rclock} as message "
                    f"({src},{sclock}) but the logged order expects "
                    f"({expected[0]},{expected[1]})",
                    vc,
                    src=src,
                    sclock=sclock,
                    rclock=rclock,
                    expected_src=expected[0],
                    expected_sclock=expected[1],
                )
        elif expected_el is not None and expected_el != mid:
            self._n_replay += 1
            self._flag(
                time,
                "replay-order",
                rank,
                f"rank {rank} delivered fresh message ({src},{sclock}) at "
                f"rclock {rclock} although the event logger holds "
                f"({expected_el[0]},{expected_el[1]}) for that clock",
                vc,
                src=src,
                sclock=sclock,
                rclock=rclock,
                expected_src=expected_el[0],
                expected_sclock=expected_el[1],
            )
        hist = self._hist.get(rank)
        if hist is None:
            hist = self._hist[rank] = {}
        hist[rclock] = mid

    def _on_gc(self, time: float, f: dict) -> None:
        rank, peer, upto = f["rank"], f["peer"], f["upto"]
        self._n_gc += 1
        hr = self._ckpt_hr.get(peer)
        covered = hr.get(rank, 0) if hr else 0
        if upto > covered:
            vc = self._vc.setdefault(rank, {})
            self._flag(
                time,
                "gc-safety",
                rank,
                f"rank {rank} garbage-collected payloads for rank {peer} up "
                f"to sclock {upto}, but rank {peer}'s last checkpoint only "
                f"covers sclock {covered}",
                vc,
                peer=peer,
                upto=upto,
                covered=covered,
            )

    def _on_store_gc(self, time: float, f: dict) -> None:
        server = f["server"]
        freed = set(f.get("digests", ()))
        self._n_store_gc += 1
        if not freed:
            return
        for rank, qs in self._store_quorum.items():
            per = self._store_commits.get((server, rank))
            protected = per.get(qs) if per else None
            if not protected:
                continue  # this replica never committed the quorum manifest
            lost = freed & protected
            if lost:
                vc = self._vc.setdefault(rank, {})
                self._flag(
                    time,
                    "store-gc",
                    rank,
                    f"store replica {server} reclaimed {len(lost)} chunk(s) "
                    f"still referenced by rank {rank}'s latest "
                    f"quorum-complete manifest (seq {qs})",
                    vc,
                    server=server,
                    seq=qs,
                    chunks=len(lost),
                )

    # -- helpers -----------------------------------------------------------
    def _flag(
        self,
        time: float,
        rule: str,
        rank: int,
        detail: str,
        vc: dict[int, int],
        **context: Any,
    ) -> None:
        self.violations.append(
            Violation(
                time=time,
                rule=rule,
                rank=rank,
                detail=detail,
                vc=dict(vc),
                context=context,
            )
        )

    def _hb_add(
        self, rank: int, op: str, time: float, f: dict, vc: dict[int, int]
    ) -> int:
        node = len(self._hb_nodes)
        self._hb_nodes.append(
            {
                "id": node,
                "rank": rank,
                "op": op,
                "time": time,
                "vc": dict(vc),
                **{
                    k: f[k]
                    for k in ("src", "dst", "sclock", "rclock")
                    if k in f
                },
            }
        )
        prev = self._last_node.get(rank)
        if prev is not None:
            self._hb_edges.append((prev, node, "program"))
        self._last_node[rank] = node
        return node

    # -- reporting ---------------------------------------------------------
    def finish(self, dropped: int = 0) -> AuditReport:
        """Detach (if attached) and build the final report.

        ``dropped`` is the audited stream's eviction count: a live
        subscriber sees every event regardless of retention, so pass 0
        for online audits and ``tracer.dropped`` for post-hoc scans.
        """
        self.detach()
        hb: Optional[dict[str, Any]] = None
        if self.hb_graph:
            hb = {
                "nodes": self._hb_nodes,
                "edges": [
                    {"from": a, "to": b, "kind": k}
                    for a, b, k in self._hb_edges
                ],
            }
        return AuditReport(
            violations=list(self.violations),
            checks={
                "waitlogged": self._n_waitlogged,
                "replay-order": self._n_replay,
                "orphan": self._n_orphan,
                "gc-safety": self._n_gc,
                "store-gc": self._n_store_gc,
                "el-quorum": self._n_quorum,
            },
            events_seen=self.events_seen,
            truncated=dropped > 0,
            dropped_records=dropped,
            vclocks={r: dict(vc) for r, vc in sorted(self._vc.items())},
            hb=hb,
        )


def audit_trace(
    records: Union[Iterable[TraceRecord], Tracer], hb_graph: bool = False
) -> AuditReport:
    """Post-hoc audit of recorded trace records with the same checkers.

    When given a :class:`~repro.simnet.trace.Tracer` whose ring buffer
    evicted records, the report comes back ``truncated`` — a scan over a
    partial stream proves nothing, so it is never reported clean.
    """
    auditor = ProtocolAuditor(hb_graph=hb_graph)
    for rec in records:
        auditor.observe(rec.time, rec.kind, rec.fields)
    return auditor.finish(dropped=getattr(records, "dropped", 0))
