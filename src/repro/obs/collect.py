"""End-of-job folding: simnet accounting → the metrics registry.

Hot-path components that move millions of segments (the network, the
NICs, the stream flow control) keep plain float attributes instead of
live metric handles — an attribute add is the cheapest accounting
possible.  :func:`finalize_job` runs once when a job completes and folds
those floats, plus the per-rank device counters, into the cluster's
:class:`~repro.obs.registry.Metrics`, then returns the per-rank stats
dicts that :class:`~repro.runtime.results.JobResult` exposes.

The two halves are separable because the control plane needs them
separately: :func:`fold_cluster` folds the *shared* accounting (network,
NICs, streams) exactly once per cluster, while :func:`fold_device_stats`
folds one job's device counters into that job's own registry — called
once per job over a shared cluster.

The returned dicts are backward compatible: the device-stat keys
(``bytes_sent``, ...) stay at top level, and the per-rank registry
totals (``el.roundtrips``, ``gate.stall_s``, ``senderlog.bytes``, ...)
are merged alongside them.
"""

from __future__ import annotations

from typing import Any

__all__ = ["finalize_job", "fold_cluster", "fold_device_stats"]


def fold_cluster(cluster: Any) -> None:
    """Fold shared network/NIC/stream accounting into ``cluster.metrics``.

    Must run exactly once per cluster — the floats it drains are
    cumulative, so folding per job on a shared cluster would double
    count every byte the earlier jobs moved.
    """
    m = cluster.metrics
    net = cluster.net

    if net.bytes_moved:
        m.counter("net.bytes").inc(net.bytes_moved)
    if net.segments_moved:
        m.counter("net.segments").inc(net.segments_moved)
    if net.partitions_injected:
        m.counter("net.partitions").inc(net.partitions_injected)
    if net.segments_deferred:
        m.counter("net.deferred_segments").inc(net.segments_deferred)
    if net.links_broken:
        m.counter("net.links_broken").inc(net.links_broken)

    seen_streams: set[int] = set()
    for host in net.hosts.values():
        if host.nic_tx_busy_s:
            m.counter("nic.tx_busy_s", host=host.name).inc(host.nic_tx_busy_s)
        if host.nic_rx_busy_s:
            m.counter("nic.rx_busy_s", host=host.name).inc(host.nic_rx_busy_s)
        for stream in host._streams:
            if id(stream) in seen_streams:
                continue
            seen_streams.add(id(stream))
            for end in (stream.a, stream.b):
                if end.stall_s:
                    m.counter("stream.stall_s", host=end.host.name).inc(
                        end.stall_s
                    )
                    m.counter("stream.stalls", host=end.host.name).inc(
                        end.stall_count
                    )


def fold_device_stats(
    metrics: Any,
    device_stats: dict[int, Any],
    device: str,
) -> dict[int, dict[str, Any]]:
    """Fold one job's device counters into ``metrics``; build rank stats."""
    stats: dict[int, dict[str, Any]] = {}
    for rank, dev_stats in device_stats.items():
        snap = dev_stats.snapshot() if hasattr(dev_stats, "snapshot") else dict(
            dev_stats
        )
        for key, value in snap.items():
            if value:
                metrics.counter(f"dev.{key}", rank=rank, device=device).inc(
                    value
                )
        stats[rank] = dict(snap)

    # merge per-rank registry totals next to the raw device counters
    for rank, totals in metrics.by_label("rank").items():
        if rank in stats:
            for name, value in totals.items():
                stats[rank].setdefault(name, value)
    return stats


def finalize_job(
    cluster: Any,
    device_stats: dict[int, Any],
    device: str,
) -> dict[int, dict[str, Any]]:
    """Fold residual accounting into ``cluster.metrics``; build rank stats."""
    fold_cluster(cluster)
    return fold_device_stats(cluster.metrics, device_stats, device)
