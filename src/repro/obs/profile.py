"""The performance-attribution layer: kernel profiler and critical path.

The paper's argument is quantitative — V2's pessimistic sender-based
logging halves V1's logging cost yet still pays a measurable latency tax
(Figures 5-8) — but an end-to-end wall clock cannot say *where* that tax
is paid.  This module decomposes a run three ways:

* :class:`KernelProfiler` — a probe for the simnet event kernel
  (:meth:`~repro.simnet.kernel.Simulator.set_probe`): per-event-kind
  dispatch counts, sampled handler wall time, queue-depth samples and an
  events/sec throughput meter.  Installing it costs ~10% wall clock;
  *not* installing it costs nothing — the kernel's default run loops are
  the uninstrumented ones, fenced at 2% by ``benchmarks/bench_kernel.py``;
* per-service CPU attribution — sampled process-resume timing classified
  by process name (app ranks, daemons, event loggers, store replicas,
  scheduler, dispatcher), rolled into the paper-style overhead
  decomposition table of ``repro profile``;
* :func:`critical_path` — the binding-dependency walk over the
  happens-before graph the protocol auditor reconstructs
  (``run_job(..., audit=True, audit_hb=True)``), so a run can answer
  "the slowest chain was send → EL ack → WAITLOGGED clear" with
  per-edge latencies.

Counts are exact; timing and queue depth are sampled (one dispatch in
``sample_every``) and scaled, which keeps the enabled overhead within
the 10% budget while still attributing wall time faithfully over the
millions of events of a CG-class run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Optional

from ..simnet.kernel import SLOT_NAMES, Simulator, run_slot

__all__ = [
    "KernelProfiler",
    "KernelProfile",
    "classify_service",
    "critical_path",
]


#: process-name prefixes -> service, first match wins (order matters:
#: daemon-side EL client loops are named ``d<rank>.el.*`` and must land
#: on "daemon", not "el")
def classify_service(name: str) -> str:
    """Map a process name to the service it runs under.

    The naming conventions are the spawn sites': app processes are
    ``rank<r>[.i<inc>]``, daemons ``daemon<r>.i<inc>`` with internal
    loops ``d<r>.<label>.i<inc>``, event loggers ``el:<i>.*``, store
    replicas ``cs:<i>.*``, the scheduler ``sched*``, the dispatcher
    ``disp*``, V1 channel memories ``cm*``.  Everything else (fault
    injectors, restart helpers) is ``infra``.
    """
    if name.startswith("rank"):
        return "app"
    if name.startswith("daemon") or (
        name[:1] == "d" and len(name) > 1 and name[1].isdigit()
    ):
        return "daemon"
    if name.startswith("el"):
        return "el"
    if name.startswith("cs") or name.startswith("store"):
        return "store"
    if name.startswith("sched"):
        return "scheduler"
    if name.startswith("disp"):
        return "dispatcher"
    if name.startswith("cm"):
        return "cm"
    return "infra"


def _kind_name(fn: Callable) -> str:
    """A stable, human-readable label for a heap callback.

    Heap entries are mostly fresh closures (``timeout`` lambdas, stream
    ``arrive`` closures, process bootstrap lambdas), so the label comes
    from the *definition site*: the qualname with module noise stripped.
    """
    func = getattr(fn, "__func__", fn)
    qual = getattr(func, "__qualname__", None)
    if qual is None:
        return type(fn).__name__
    return qual.replace(".<locals>", "").removesuffix(".<lambda>")


@dataclass
class KernelProfile:
    """The finished measurement (``JobResult.profile``)."""

    wall_s: float  # wall-clock seconds between install and finish
    sim_s: float  # simulated seconds advanced meanwhile
    events: int  # kernel events dispatched (exact)
    events_per_s: float  # events / wall_s — the BENCH_kernel meter
    sample_every: int
    #: per dispatch kind: {"kind", "count", "wall_s" (scaled), "share"}
    kinds: list[dict[str, Any]] = field(default_factory=list)
    #: per service: {"service", "steps" (scaled), "cpu_s" (scaled), "share"}
    services: list[dict[str, Any]] = field(default_factory=list)
    #: top process names by sampled cpu: {"name", "cpu_s"}
    procs: list[dict[str, Any]] = field(default_factory=list)
    queue_depth: dict[str, float] = field(default_factory=dict)

    def service(self, name: str) -> Optional[dict[str, Any]]:
        """One service's decomposition row, or None."""
        for row in self.services:
            if row["service"] == name:
                return row
        return None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-friendly view (``repro profile --json-out``)."""
        return {
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "events": self.events,
            "events_per_s": self.events_per_s,
            "sample_every": self.sample_every,
            "kinds": list(self.kinds),
            "services": list(self.services),
            "procs": list(self.procs),
            "queue_depth": dict(self.queue_depth),
        }


class KernelProfiler:
    """The kernel probe: install on a simulator, run, finish.

    Dispatch *counts* are exact; handler wall time and queue depth are
    sampled every ``sample_every`` dispatches and scaled at
    :meth:`finish` (deterministic sampling — cheap, and unbiased unless
    the workload's event mix is periodic at exactly the sample stride).
    Process resumes executed inside a sampled dispatch are timed under
    their process name for the service decomposition; off the sampled
    dispatch, a resume pays no probe call at all.
    """

    def __init__(self, sample_every: int = 16) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.events = 0
        #: True while a *sampled* dispatch is executing its handler —
        #: process resumes triggered inside it are timed (Process._step
        #: reads this flag instead of paying a method call per resume)
        self.sampling = False
        # definition-site key -> [label, count, timed_count, wall_s]
        self._kinds: dict[Any, list] = {}
        # slot -> the same stats lists, indexed by position: the flat
        # dispatch path pays a list index instead of a dict probe
        self._flat: list = []
        self._left = sample_every  # dispatches until the next sample
        self._q_sum = 0
        self._q_max = 0
        self._q_n = 0
        self._svc_cache: dict[str, str] = {}
        self._services: dict[str, list] = {}  # svc -> [steps, cpu_s]
        self._procs: dict[str, float] = {}
        self._sim: Optional[Simulator] = None
        self._t0 = 0.0
        self._sim_t0 = 0.0

    # -- lifecycle ---------------------------------------------------------
    def install(self, sim: Simulator) -> "KernelProfiler":
        """Attach to ``sim`` and start the wall clock; returns self."""
        sim.set_probe(self)
        self._sim = sim
        self._sim_t0 = sim.now
        self._t0 = perf_counter()
        return self

    def finish(self) -> KernelProfile:
        """Detach and build the scaled :class:`KernelProfile`."""
        wall = perf_counter() - self._t0
        sim_s = 0.0
        if self._sim is not None:
            sim_s = self._sim.now - self._sim_t0
            self._sim.set_probe(None)
            self._sim = None
        # exact total: dispatch() counts per kind, summed here so the hot
        # path does not also maintain a separate running total
        self.events = sum(s[1] for s in self._kinds.values())
        kinds = []
        for label, count, timed, wall_k in sorted(
            self._kinds.values(), key=lambda s: -s[3]
        ):
            est = wall_k * (count / timed) if timed else 0.0
            kinds.append(
                {"kind": label, "count": count, "wall_s": est}
            )
        total_kind = sum(k["wall_s"] for k in kinds) or 1.0
        for k in kinds:
            k["share"] = k["wall_s"] / total_kind
        services = []
        for svc, (steps, cpu) in sorted(
            self._services.items(), key=lambda kv: -kv[1][1]
        ):
            services.append(
                {
                    "service": svc,
                    "steps": steps * self.sample_every,
                    "cpu_s": cpu * self.sample_every,
                }
            )
        total_cpu = sum(s["cpu_s"] for s in services) or 1.0
        for s in services:
            s["share"] = s["cpu_s"] / total_cpu
        procs = [
            {"name": n, "cpu_s": c * self.sample_every}
            for n, c in sorted(self._procs.items(), key=lambda kv: -kv[1])[:20]
        ]
        queue = {
            "samples": self._q_n,
            "mean": (self._q_sum / self._q_n) if self._q_n else 0.0,
            "max": self._q_max,
        }
        return KernelProfile(
            wall_s=wall,
            sim_s=sim_s,
            events=self.events,
            events_per_s=self.events / wall if wall > 0 else 0.0,
            sample_every=self.sample_every,
            kinds=kinds,
            services=services,
            procs=procs,
            queue_depth=queue,
        )

    # -- the probe interface (called by the kernel's probed loops) --------
    def dispatch(self, time: float, fn: Callable[[], None], qsize: int) -> None:
        """Count, classify and (sampled) time one popped event.

        This runs once per kernel event: the common case is a dict
        lookup, a count bump and a countdown decrement.  One dispatch in
        ``sample_every`` additionally records the heap depth, times the
        handler, and raises :attr:`sampling` so process resumes executed
        inside it land in the service decomposition.
        """
        try:
            code = fn.__code__
        except AttributeError:
            func = getattr(fn, "__func__", None)
            code = getattr(func, "__code__", None)
            if code is None:
                code = type(fn)
        stats = self._kinds.get(code)
        if stats is None:
            stats = self._kinds[code] = [_kind_name(fn), 0, 0, 0.0]
        stats[1] += 1
        left = self._left - 1
        if left:
            self._left = left
            fn()
        else:
            self._left = self.sample_every
            self._q_sum += qsize
            self._q_n += 1
            if qsize > self._q_max:
                self._q_max = qsize
            self.sampling = True
            t0 = perf_counter()
            fn()
            dt = perf_counter() - t0
            self.sampling = False
            stats[3] += dt
            stats[2] += 1

    def dispatch_flat(
        self, time: float, slot: int, a: Any, b: Any, qsize: int
    ) -> None:
        """Count, classify and (sampled) time one popped *flat* event.

        The twin of :meth:`dispatch` for slot-dispatched events: the kind
        key is the slot integer (int keys never collide with the code
        objects :meth:`dispatch` uses), labelled from the kernel's
        ``SLOT_NAMES`` registry, and execution goes through ``run_slot``.
        Slot stats live in a list indexed by slot number — this runs once
        per kernel event, and a list index beats a dict probe there.
        """
        flat = self._flat
        if slot < len(flat):
            stats = flat[slot]
        else:
            stats = None
        if stats is None:
            flat.extend([None] * (slot + 1 - len(flat)))
            stats = flat[slot] = self._kinds[slot] = [
                SLOT_NAMES.get(slot, f"slot{slot}"), 0, 0, 0.0
            ]
        stats[1] += 1
        left = self._left - 1
        if left:
            self._left = left
            run_slot(slot, a, b)
        else:
            self._left = self.sample_every
            self._q_sum += qsize
            self._q_n += 1
            if qsize > self._q_max:
                self._q_max = qsize
            self.sampling = True
            t0 = perf_counter()
            run_slot(slot, a, b)
            dt = perf_counter() - t0
            self.sampling = False
            stats[3] += dt
            stats[2] += 1

    def step_done(self, name: str, dt: float) -> None:
        """Account one timed process resume under its service."""
        svc = self._svc_cache.get(name)
        if svc is None:
            svc = self._svc_cache[name] = classify_service(name)
        agg = self._services.get(svc)
        if agg is None:
            agg = self._services[svc] = [0, 0.0]
        agg[0] += 1
        agg[1] += dt
        self._procs[name] = self._procs.get(name, 0.0) + dt


# -- critical path over the happens-before graph ---------------------------

#: tie-break priority when two predecessors finish at the same instant:
#: attribute the wait to the protocol edge, not local program order
_EDGE_PRIO = {"el": 2, "message": 1, "program": 0}


def _node_brief(n: dict[str, Any]) -> dict[str, Any]:
    out = {"id": n["id"], "rank": n["rank"], "op": n["op"], "time": n["time"]}
    for k in ("src", "dst", "sclock", "rclock"):
        if k in n:
            out[k] = n[k]
    return out


def critical_path(hb: dict[str, Any]) -> dict[str, Any]:
    """Extract the zero-slack chain from a happens-before graph.

    ``hb`` is ``AuditReport.hb`` (``run_job(..., audit=True,
    audit_hb=True)``): nodes are protocol events (tx, deliver,
    log_event, el_ack) with times, edges are program order, message
    transfers and EL log→ack round trips.  Starting from the
    latest-finishing node, each step follows the *latest-arriving*
    predecessor — the dependency that actually determined when the event
    could happen — so per-edge latencies along the returned chain sum to
    the protocol span, and their aggregation by category says where the
    time went (``el-ack`` is the WAITLOGGED tax the paper prices).
    """
    nodes = hb.get("nodes") or []
    edges = hb.get("edges") or []
    empty = {
        "span_s": 0.0,
        "steps": [],
        "contributions": [],
        "top_contributor": None,
        "end": None,
    }
    if not nodes:
        return empty
    preds: dict[int, list[tuple[int, str]]] = {}
    for e in edges:
        preds.setdefault(e["to"], []).append((e["from"], e["kind"]))
    end = max(nodes, key=lambda n: (n["time"], n["id"]))["id"]
    steps: list[dict[str, Any]] = []
    cur = end
    while True:
        ps = preds.get(cur)
        if not ps:
            break
        frm, kind = max(
            ps,
            key=lambda pk: (
                nodes[pk[0]]["time"], _EDGE_PRIO.get(pk[1], 0), pk[0]
            ),
        )
        src_n, dst_n = nodes[frm], nodes[cur]
        if kind == "el" or dst_n["op"] == "el_ack":
            # either the full log->ack round trip, or the residual wait
            # (last local activity -> ack arrival): both are time spent
            # waiting on the event logger's acknowledgement
            cat = "el-ack"
        elif kind == "message":
            cat = "message"
        else:
            cat = f"local-{dst_n['op']}"
        steps.append(
            {
                "from": _node_brief(src_n),
                "to": _node_brief(dst_n),
                "kind": kind,
                "category": cat,
                "latency_s": dst_n["time"] - src_n["time"],
            }
        )
        cur = frm
    steps.reverse()
    agg: dict[str, list] = {}
    for s in steps:
        a = agg.setdefault(s["category"], [0, 0.0])
        a[0] += 1
        a[1] += s["latency_s"]
    span = sum(s["latency_s"] for s in steps)
    contributions = [
        {
            "category": cat,
            "edges": n,
            "latency_s": lat,
            "share": (lat / span) if span > 0 else 0.0,
        }
        for cat, (n, lat) in sorted(agg.items(), key=lambda kv: -kv[1][1])
    ]
    return {
        "span_s": span,
        "steps": steps,
        "contributions": contributions,
        "top_contributor": contributions[0]["category"] if contributions else None,
        "end": _node_brief(nodes[end]),
    }
