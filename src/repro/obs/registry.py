"""The metrics registry: counters, gauges and histograms with labels.

Every mechanism the paper argues from — event-logger round trips gating
sends (Table 1), sender-log occupancy spilling to disk (the LU effect),
checkpoint/restart traffic (Figures 10-11) — is accounted here, per rank
and per component, so benchmarks can assert on mechanism-level numbers
instead of inferring them from wall clock.

Design constraints:

* **always on, negligible cost** — a metric handle is bound once at
  component construction and every hot-path update is one attribute
  lookup plus a float add (no allocation, no string formatting);
* **incarnation-stable** — handles are get-or-create by
  ``(name, labels)``, so a restarted daemon's counters continue where
  its previous incarnation stopped;
* **simulated time** — time-weighted gauges integrate over *simulated*
  seconds passed in by the caller, never wall clock.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, Optional

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "DEFAULT_BOUNDS"]

#: decade buckets wide enough for both seconds (~1e-6 ..) and bytes (.. ~1e9)
DEFAULT_BOUNDS: tuple[float, ...] = tuple(10.0 ** e for e in range(-7, 10))


class Counter:
    """A monotonically increasing float accumulator."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (the hot-path operation); ``n`` must not be negative."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({n})")
        self.value += n

    def scalar(self) -> float:
        """The headline number for merged snapshots."""
        return self.value

    def export(self) -> dict[str, Any]:
        """Full state for ``--metrics-out`` JSON."""
        return {"value": self.value}


class Gauge:
    """A sampled level, optionally time-weighted over simulated seconds.

    ``set(value, now)`` integrates the previous level over the elapsed
    simulated time, so ``time_avg(now)`` is the true time-weighted mean
    (e.g. mean sender-log occupancy), and ``peak`` the high-water mark.
    """

    __slots__ = ("name", "labels", "value", "peak", "_integral", "_last_t")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.peak = 0.0
        self._integral = 0.0
        self._last_t = 0.0

    def set(self, value: float, now: Optional[float] = None) -> None:
        """Record the new level; pass ``now`` for time-weighted stats."""
        if value == self.value:
            # level unchanged: the integral accumulates identically
            # whether it is folded now or at the next level change
            return
        if now is not None:
            self._integral += self.value * (now - self._last_t)
            self._last_t = now
        self.value = value
        if value > self.peak:
            self.peak = value

    def time_avg(self, now: float) -> float:
        """Time-weighted mean level over [0, now]."""
        if now <= 0:
            return self.value
        return (self._integral + self.value * (now - self._last_t)) / now

    def scalar(self) -> float:
        return self.value

    def export(self) -> dict[str, Any]:
        return {"value": self.value, "peak": self.peak}


class Histogram:
    """Value distribution over fixed bucket bounds (plus min/max/sum)."""

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "sum",
                 "min", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        """Mean of the observed samples (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0 when empty).

        Returns the upper bound of the bucket holding the q-th sample,
        clamped to the observed max (so the overflow bucket and the
        extremes stay honest).
        """
        if not self.count:
            return 0.0
        target = q * self.count
        acc = 0
        for bound, n in zip(self.bounds, self.buckets):
            acc += n
            if acc >= target:
                return min(bound, self.max)
        return self.max

    def scalar(self) -> float:
        return self.sum

    def export(self) -> dict[str, Any]:
        out: dict[str, Any] = {"count": self.count, "sum": self.sum}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.mean()
        out["buckets"] = {
            f"le_{b:g}": n
            for b, n in zip(self.bounds, self.buckets)
            if n
        }
        if self.buckets[-1]:
            out["buckets"]["overflow"] = self.buckets[-1]
        return out


Metric = Any  # Counter | Gauge | Histogram


class Metrics:
    """Get-or-create registry of metrics keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._metrics: dict[tuple, Metric] = {}

    # -- binding -----------------------------------------------------------
    def _get(self, cls: type, name: str, labels: dict[str, Any], **kw) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, labels, **kw)
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{labels!r} already registered as {m.kind}"
            )
        return m

    def counter(self, name: str, **labels: Any) -> Counter:
        """Bind (or look up) a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Bind (or look up) a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
        **labels: Any,
    ) -> Histogram:
        """Bind (or look up) a histogram."""
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- reading -----------------------------------------------------------
    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def total(
        self, name: str, rank: Optional[int] = None, default: float = 0.0
    ) -> float:
        """Sum of one metric's scalar across label sets (``rank`` filters)."""
        found = False
        acc = 0.0
        for m in self._metrics.values():
            if m.name != name:
                continue
            if rank is not None and m.labels.get("rank") != rank:
                continue
            acc += m.scalar()
            found = True
        return acc if found else default

    def quantile(self, name: str, q: float, default: float = 0.0) -> float:
        """Bucket-quantile of one histogram merged across its label sets.

        The per-label histograms share bucket bounds (they are bound with
        the same call site), so their buckets sum into one distribution.
        """
        merged: Optional[list[int]] = None
        bounds: tuple[float, ...] = ()
        count = 0
        hi = float("-inf")
        for m in self._metrics.values():
            if m.name != name or m.kind != "histogram":
                continue
            if merged is None:
                bounds = m.bounds
                merged = [0] * len(m.buckets)
            for i, n in enumerate(m.buckets):
                merged[i] += n
            count += m.count
            if m.count:
                hi = max(hi, m.max)
        if merged is None or not count:
            return default
        target = q * count
        acc = 0
        for bound, n in zip(bounds, merged):
            acc += n
            if acc >= target:
                return min(bound, hi)
        return hi

    def snapshot(self) -> dict[str, float]:
        """Merged view: metric name -> scalar summed across all labels."""
        out: dict[str, float] = {}
        for m in self._metrics.values():
            out[m.name] = out.get(m.name, 0.0) + m.scalar()
        return out

    def by_label(self, key: str = "rank") -> dict[Any, dict[str, float]]:
        """Scalars grouped by one label's value: ``{label: {name: total}}``."""
        out: dict[Any, dict[str, float]] = {}
        for m in self._metrics.values():
            if key not in m.labels:
                continue
            group = out.setdefault(m.labels[key], {})
            group[m.name] = group.get(m.name, 0.0) + m.scalar()
        return out

    def export(self) -> list[dict[str, Any]]:
        """Full per-label-set dump (for ``--metrics-out`` JSON)."""
        return [
            {"name": m.name, "kind": m.kind, "labels": m.labels, **m.export()}
            for m in self._metrics.values()
        ]
