"""Recovery timelines and phase attribution: where recovery time goes.

Figures 10-11 of the paper plot how long a crashed node takes to rejoin
the computation.  This module derives that timeline from trace records:
each :class:`RestartSpan` strings together, for one fault on one rank,

* ``ft.fault``         — the injector killed the host;
* ``ft.detect``        — the dispatcher's fault detector fired (the
  record carries its *source*: the socket-disconnection detector, or
  the heartbeat monitor that had already flagged the rank suspect);
* ``ft.restart``       — the dispatcher respawned the rank (possibly on
  a spare host);
* ``store.fetch_*``    — the streamed checkpoint-image fetch (bytes,
  chunks, replica failovers, retries);
* ``v2.el_download``   — the event-logger download that overlaps it;
* ``v2.restart``       — the new daemon finished phase A and entered
  replay;
* ``v2.restart2``      — a peer answered the RESTART1 handshake (the
  span's ``resync_t`` is the moment the last peer answered);
* ``v2.caught_up``     — replay drained: the rank is executing fresh
  work.

A second fault striking the same rank mid-recovery *aborts* the open
span (``aborted_t``/``aborted_by``) and chains the superseding span to
it by incarnation (``chained_from``), so at most one span per rank is
ever open and MTTR statistics never mistake an aborted arc for missing
data.  Spans whose job simply ended first keep ``None`` tails.

:class:`RecoveryAttribution` aggregates the spans into the phase
decomposition — detect / respawn / fetch / el-download / resync /
replay — with per-phase p50/p95 and the reconciliation invariant that
the contiguous phases (detect + respawn + restore + replay) sum exactly
to ``recovery_s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..simnet.trace import Tracer

__all__ = [
    "RestartSpan",
    "RecoveryAttribution",
    "recovery_timeline",
    "quantile",
]


def quantile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolation quantile of an unsorted sequence (None when
    empty); ``q`` in [0, 1]."""
    if not values:
        return None
    vs = sorted(values)
    if len(vs) == 1:
        return vs[0]
    pos = q * (len(vs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(vs) - 1)
    frac = pos - lo
    return vs[lo] * (1.0 - frac) + vs[hi] * frac


@dataclass
class RestartSpan:
    """One fault-to-recovery arc for one rank (times in simulated s)."""

    rank: int
    fault_t: float
    detect_t: Optional[float] = None
    detect_source: Optional[str] = None  # "socket" | "heartbeat"
    respawn_t: Optional[float] = None
    replay_start_t: Optional[float] = None
    caught_up_t: Optional[float] = None
    incarnation: Optional[int] = None
    host: Optional[str] = None
    replay_events: Optional[int] = None
    # checkpoint-image fetch (overlaps the EL download inside restore)
    fetch_start_t: Optional[float] = None
    fetch_done_t: Optional[float] = None
    fetch_bytes: int = 0
    fetch_chunks: int = 0
    fetch_failovers: int = 0
    fetch_retries: int = 0
    fetch_found: Optional[bool] = None
    # event-logger download (client-side completion)
    el_download_t: Optional[float] = None
    el_events: Optional[int] = None
    el_download_s: Optional[float] = None
    el_retries: int = 0
    # replica links lost mid-download (another quorum member served it)
    el_failovers: int = 0
    # RESTART1/RESTART2 peer re-sync
    resync_t: Optional[float] = None  # when the last RESTART2 landed
    resync_peers: int = 0
    # every armed peer answered (peers we never talk to never do)
    resync_complete: bool = False
    # a second fault (or a global restart) struck mid-recovery
    aborted_t: Optional[float] = None
    aborted_by: Optional[str] = None  # "fault" | "global_restart"
    chained_from: Optional[int] = None  # aborted predecessor's incarnation

    # -- span state ----------------------------------------------------
    @property
    def aborted(self) -> bool:
        """True when a later fault cut this recovery arc short."""
        return self.aborted_t is not None

    @property
    def completed(self) -> bool:
        """True when the rank caught up (the arc ran to the end)."""
        return self.caught_up_t is not None

    # -- headline durations --------------------------------------------
    @property
    def downtime_s(self) -> Optional[float]:
        """Fault to respawn (the dispatcher's detect + spawn delays)."""
        if self.respawn_t is None:
            return None
        return self.respawn_t - self.fault_t

    @property
    def recovery_s(self) -> Optional[float]:
        """Fault to caught-up: the full rejoin latency."""
        if self.caught_up_t is None:
            return None
        return self.caught_up_t - self.fault_t

    # -- phase durations ------------------------------------------------
    @property
    def detect_s(self) -> Optional[float]:
        if self.detect_t is None:
            return None
        return self.detect_t - self.fault_t

    @property
    def respawn_s(self) -> Optional[float]:
        if self.respawn_t is None or self.detect_t is None:
            return None
        return self.respawn_t - self.detect_t

    @property
    def restore_s(self) -> Optional[float]:
        """Respawn to replay start: the phase-A window (image fetch and
        EL download run overlapped inside it)."""
        if self.replay_start_t is None or self.respawn_t is None:
            return None
        return self.replay_start_t - self.respawn_t

    @property
    def fetch_s(self) -> Optional[float]:
        if self.fetch_done_t is None or self.fetch_start_t is None:
            return None
        return self.fetch_done_t - self.fetch_start_t

    @property
    def replay_s(self) -> Optional[float]:
        if self.caught_up_t is None or self.replay_start_t is None:
            return None
        return self.caught_up_t - self.replay_start_t

    @property
    def resync_s(self) -> Optional[float]:
        """Respawn to the last RESTART2 seen (peer re-sync); peers the
        rank never talks to never answer, so this is a high-water mark
        (``resync_complete`` says whether every armed peer answered)."""
        if self.resync_t is None or self.respawn_t is None:
            return None
        return self.resync_t - self.respawn_t

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly view (for ``repro trace --timeline``)."""
        return {
            "rank": self.rank,
            "fault_t": self.fault_t,
            "detect_t": self.detect_t,
            "detect_source": self.detect_source,
            "respawn_t": self.respawn_t,
            "replay_start_t": self.replay_start_t,
            "caught_up_t": self.caught_up_t,
            "incarnation": self.incarnation,
            "host": self.host,
            "replay_events": self.replay_events,
            "downtime_s": self.downtime_s,
            "recovery_s": self.recovery_s,
            "detect_s": self.detect_s,
            "respawn_s": self.respawn_s,
            "restore_s": self.restore_s,
            "fetch_s": self.fetch_s,
            "fetch_bytes": self.fetch_bytes,
            "fetch_chunks": self.fetch_chunks,
            "fetch_failovers": self.fetch_failovers,
            "fetch_retries": self.fetch_retries,
            "fetch_found": self.fetch_found,
            "el_download_s": self.el_download_s,
            "el_events": self.el_events,
            "el_retries": self.el_retries,
            "el_failovers": self.el_failovers,
            "resync_s": self.resync_s,
            "resync_peers": self.resync_peers,
            "resync_complete": self.resync_complete,
            "replay_s": self.replay_s,
            "aborted_t": self.aborted_t,
            "aborted_by": self.aborted_by,
            "chained_from": self.chained_from,
        }


def recovery_timeline(tracer: Tracer) -> list[RestartSpan]:
    """Pair the recovery-arc records into per-fault spans.

    Records are consumed in trace order (the tracer is append-only, so
    that is time order).  A new ``ft.fault`` for a rank *aborts* any
    span still open for it — a second fault mid-recovery supersedes the
    arc in flight — so each rank has at most one open span and every
    later marker attaches unambiguously.
    """
    spans: list[RestartSpan] = []
    open_spans: dict[int, list[RestartSpan]] = {}

    def oldest_open(rank: Any, unset: str) -> Optional[RestartSpan]:
        for span in open_spans.get(rank, ()):
            if getattr(span, unset) is None:
                return span
        return None

    def abort(rank: Any, time: float, why: str) -> Optional[RestartSpan]:
        last: Optional[RestartSpan] = None
        for span in open_spans.pop(rank, ()):
            span.aborted_t = time
            span.aborted_by = why
            last = span
        return last

    for rec in tracer:
        kind = rec.kind
        if kind == "ft.global_restart":
            for rank in list(open_spans):
                abort(rank, rec.time, "global_restart")
            continue
        rank = rec.fields.get("rank")
        if rank is None:
            continue
        if kind == "ft.fault":
            prev = abort(rank, rec.time, "fault")
            span = RestartSpan(
                rank=rank,
                fault_t=rec.time,
                chained_from=prev.incarnation if prev is not None else None,
            )
            spans.append(span)
            open_spans.setdefault(rank, []).append(span)
        elif kind == "ft.detect":
            span = oldest_open(rank, "detect_t")
            if span is not None:
                span.detect_t = rec.time
                span.detect_source = rec.fields.get("source")
        elif kind == "ft.restart":
            span = oldest_open(rank, "respawn_t")
            if span is not None:
                span.respawn_t = rec.time
                span.incarnation = rec.fields.get("incarnation")
                span.host = rec.fields.get("host")
        elif kind == "store.fetch_start":
            span = oldest_open(rank, "fetch_start_t")
            if span is not None:
                span.fetch_start_t = rec.time
        elif kind == "store.fetch_done":
            span = oldest_open(rank, "fetch_done_t")
            if span is not None:
                span.fetch_done_t = rec.time
                span.fetch_bytes = rec.fields.get("bytes", 0)
                span.fetch_chunks = rec.fields.get("chunks", 0)
                span.fetch_failovers = rec.fields.get("failovers", 0)
                span.fetch_retries = rec.fields.get("retries", 0)
                span.fetch_found = rec.fields.get("found")
        elif kind == "v2.el_download":
            span = oldest_open(rank, "el_download_t")
            if span is not None:
                span.el_download_t = rec.time
                span.el_events = rec.fields.get("n")
                span.el_download_s = rec.fields.get("wait_s")
                span.el_retries = rec.fields.get("retries", 0)
                span.el_failovers = rec.fields.get("failovers", 0)
        elif kind == "v2.restart":
            span = oldest_open(rank, "replay_start_t")
            if span is not None:
                span.replay_start_t = rec.time
                span.replay_events = rec.fields.get("replay_events")
        elif kind == "v2.restart2":
            # only meaningful during an open recovery: flap-triggered
            # resyncs outside a restart arc have no span and are skipped
            span = oldest_open(rank, "caught_up_t")
            if span is not None and span.respawn_t is not None:
                span.resync_peers += 1
                span.resync_t = rec.time
                if rec.fields.get("remaining", 1) == 0:
                    span.resync_complete = True
        elif kind == "v2.caught_up":
            span = oldest_open(rank, "caught_up_t")
            if span is not None:
                span.caught_up_t = rec.time
                open_spans[rank].remove(span)
    return spans


class RecoveryAttribution:
    """Phase-decomposed MTTR over the spans of one traced run.

    Splits the spans into ``completed`` / ``aborted`` / ``incomplete``
    (the job ended mid-arc), exposes per-span phase breakdowns, and
    aggregates per-phase p50/p95 over the completed arcs.  The
    contiguous phases — detect, respawn, restore (the phase-A window
    covering the overlapped image fetch and EL download), replay — tile
    ``[fault_t, caught_up_t]`` exactly, which :meth:`reconcile` checks.
    """

    #: the reported decomposition, in arc order (fetch, el_download and
    #: resync are sub-phases inside the restore/replay windows)
    PHASES = ("detect", "respawn", "fetch", "el_download", "resync", "replay")
    #: the contiguous tiling whose durations sum to ``recovery_s``
    CONTIGUOUS = ("detect", "respawn", "restore", "replay")

    def __init__(self, spans: Sequence[RestartSpan]) -> None:
        self.spans = list(spans)
        self.completed = [s for s in self.spans if s.completed]
        self.aborted = [s for s in self.spans if s.aborted]
        self.incomplete = [
            s for s in self.spans if not s.completed and not s.aborted
        ]

    @classmethod
    def from_trace(cls, tracer: Tracer) -> "RecoveryAttribution":
        """Build the attribution straight from a run's tracer."""
        return cls(recovery_timeline(tracer))

    # -- per-span ------------------------------------------------------
    def breakdown(self, span: RestartSpan) -> dict[str, Optional[float]]:
        """The six reported phase durations for one span."""
        return {
            "detect": span.detect_s,
            "respawn": span.respawn_s,
            "fetch": span.fetch_s,
            "el_download": span.el_download_s,
            "resync": span.resync_s,
            "replay": span.replay_s,
        }

    def reconcile(self, span: RestartSpan) -> Optional[float]:
        """|sum(contiguous phases) - recovery_s|; None while incomplete.

        The contiguous tiling is exact by construction, so anything
        beyond float rounding means a phase marker went missing.
        """
        if span.recovery_s is None:
            return None
        parts = (span.detect_s, span.respawn_s, span.restore_s, span.replay_s)
        if any(p is None for p in parts):
            return None
        return abs(sum(parts) - span.recovery_s)

    # -- aggregates ----------------------------------------------------
    def mttr(self) -> dict[str, Any]:
        """p50/p95/mean/max of ``recovery_s`` over the completed arcs."""
        return self._dist([s.recovery_s for s in self.completed])

    def phase_stats(self) -> dict[str, dict[str, Any]]:
        """Per-phase p50/p95/mean/max over the completed arcs."""
        out: dict[str, dict[str, Any]] = {}
        for phase in self.PHASES:
            values = [
                v
                for s in self.completed
                if (v := self.breakdown(s)[phase]) is not None
            ]
            out[phase] = self._dist(values)
        return out

    def totals(self) -> dict[str, Any]:
        """Byte/retry/failover totals across every span (even aborted)."""
        return {
            "fetch_bytes": sum(s.fetch_bytes for s in self.spans),
            "fetch_chunks": sum(s.fetch_chunks for s in self.spans),
            "fetch_failovers": sum(s.fetch_failovers for s in self.spans),
            "fetch_retries": sum(s.fetch_retries for s in self.spans),
            "el_events": sum(s.el_events or 0 for s in self.spans),
            "el_retries": sum(s.el_retries for s in self.spans),
            "el_failovers": sum(s.el_failovers for s in self.spans),
            "resync_peers": sum(s.resync_peers for s in self.spans),
        }

    def detect_by_source(self) -> dict[str, dict[str, Any]]:
        """Detection-latency distribution split by detector source."""
        groups: dict[str, list[float]] = {}
        for s in self.spans:
            if s.detect_s is None:
                continue
            groups.setdefault(s.detect_source or "socket", []).append(
                s.detect_s
            )
        return {src: self._dist(vs) for src, vs in sorted(groups.items())}

    @staticmethod
    def _dist(values: Sequence[float]) -> dict[str, Any]:
        vs = [v for v in values if v is not None]
        if not vs:
            return {"n": 0, "p50": None, "p95": None, "mean": None,
                    "max": None}
        return {
            "n": len(vs),
            "p50": quantile(vs, 0.50),
            "p95": quantile(vs, 0.95),
            "mean": sum(vs) / len(vs),
            "max": max(vs),
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly dump (``repro mttr --json-out``)."""
        return {
            "spans": [s.as_dict() for s in self.spans],
            "completed": len(self.completed),
            "aborted": len(self.aborted),
            "incomplete": len(self.incomplete),
            "mttr": self.mttr(),
            "phases": self.phase_stats(),
            "totals": self.totals(),
            "detect_by_source": self.detect_by_source(),
            "max_reconcile_err_s": max(
                (e for s in self.completed
                 if (e := self.reconcile(s)) is not None),
                default=0.0,
            ),
        }
