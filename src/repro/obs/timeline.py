"""Recovery timelines: fault → detect → respawn → replay → caught-up.

Figures 10-11 of the paper plot how long a crashed node takes to rejoin
the computation.  This module derives that timeline from trace records:
each :class:`RestartSpan` strings together, for one fault on one rank,

* ``ft.fault``     — the injector killed the host;
* ``ft.detect``    — the dispatcher's socket-disconnection detector fired;
* ``ft.restart``   — the dispatcher respawned the rank (possibly on a
  spare host);
* ``v2.restart``   — the new daemon finished phase A (image + event
  download) and entered replay;
* ``v2.caught_up`` — replay drained: the rank is executing fresh work.

Spans with a missing tail (e.g. the job finished before the rank caught
up, or a second fault struck mid-recovery) keep ``None`` in the
unreached fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..simnet.trace import Tracer

__all__ = ["RestartSpan", "recovery_timeline"]


@dataclass
class RestartSpan:
    """One fault-to-recovery arc for one rank (times in simulated s)."""

    rank: int
    fault_t: float
    detect_t: Optional[float] = None
    respawn_t: Optional[float] = None
    replay_start_t: Optional[float] = None
    caught_up_t: Optional[float] = None
    incarnation: Optional[int] = None
    host: Optional[str] = None
    replay_events: Optional[int] = None

    @property
    def downtime_s(self) -> Optional[float]:
        """Fault to respawn (the dispatcher's detect + spawn delays)."""
        if self.respawn_t is None:
            return None
        return self.respawn_t - self.fault_t

    @property
    def recovery_s(self) -> Optional[float]:
        """Fault to caught-up: the full rejoin latency."""
        if self.caught_up_t is None:
            return None
        return self.caught_up_t - self.fault_t

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly view (for ``repro trace --timeline``)."""
        return {
            "rank": self.rank,
            "fault_t": self.fault_t,
            "detect_t": self.detect_t,
            "respawn_t": self.respawn_t,
            "replay_start_t": self.replay_start_t,
            "caught_up_t": self.caught_up_t,
            "incarnation": self.incarnation,
            "host": self.host,
            "replay_events": self.replay_events,
            "downtime_s": self.downtime_s,
            "recovery_s": self.recovery_s,
        }


def recovery_timeline(tracer: Tracer) -> list[RestartSpan]:
    """Pair fault/detect/restart/replay/caught-up records per rank.

    Records are consumed in trace order (the tracer is append-only, so
    that is time order); each rank fills its oldest incomplete span
    first, which keeps overlapping recoveries of *different* ranks — and
    repeated faults on the same rank — separated.
    """
    spans: list[RestartSpan] = []
    open_spans: dict[int, list[RestartSpan]] = {}

    def oldest_open(rank: int, unset: str) -> Optional[RestartSpan]:
        for span in open_spans.get(rank, ()):
            if getattr(span, unset) is None:
                return span
        return None

    for rec in tracer:
        rank = rec.fields.get("rank")
        if rank is None:
            continue
        if rec.kind == "ft.fault":
            span = RestartSpan(rank=rank, fault_t=rec.time)
            spans.append(span)
            open_spans.setdefault(rank, []).append(span)
        elif rec.kind == "ft.detect":
            span = oldest_open(rank, "detect_t")
            if span is not None:
                span.detect_t = rec.time
        elif rec.kind == "ft.restart":
            span = oldest_open(rank, "respawn_t")
            if span is not None:
                span.respawn_t = rec.time
                span.incarnation = rec.fields.get("incarnation")
                span.host = rec.fields.get("host")
        elif rec.kind == "v2.restart":
            span = oldest_open(rank, "replay_start_t")
            if span is not None:
                span.replay_start_t = rec.time
                span.replay_events = rec.fields.get("replay_events")
        elif rec.kind == "v2.caught_up":
            span = oldest_open(rank, "caught_up_t")
            if span is not None:
                span.caught_up_t = rec.time
                open_spans[rank].remove(span)
    return spans
