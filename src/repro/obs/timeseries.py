"""Time-series telemetry: sampled metric snapshots on a simulated-time cadence.

The registry (:mod:`repro.obs.registry`) answers "how much, in total" —
final counter values, time-weighted gauge means.  A churn run also needs
the *shape*: did queue depth spike while rank 3 replayed, how many
recoveries were outstanding when the third fault hit, is ``el.cpu_s``
climbing linearly or saturating.  :class:`TimeseriesSampler` snapshots a
selected subset of the registry every ``interval`` simulated seconds
into bounded ring series (one per metric name, summed across label
sets), cheap enough to leave on for a whole sweep.

The series export two ways:

* :meth:`write_jsonl` / :meth:`to_records` — one record per (time,
  name, value) for offline plotting;
* :meth:`counter_tracks` — the input for
  :func:`repro.obs.trace_export.counter_events`, which renders each
  series as a Chrome-trace counter track so ``repro trace`` output shows
  a live dashboard (queue depth, suspected ranks, outstanding
  recoveries) alongside the event slices.

The sampler's clock is *simulated* time: :meth:`install` spawns a
periodic process on the simulator, and the launchers take one final
sample after the run so the last interval is never lost.  The process is
an infinite generator — the kernel's ``run_until`` exits as soon as the
job future resolves, so the sampler never holds a run open.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Iterable, Optional, Sequence

from .registry import Metrics

__all__ = ["TimeseriesSampler", "DEFAULT_SERIES"]

#: metric names (exact, or prefixes when ending in ".") sampled by default
DEFAULT_SERIES: tuple[str, ...] = (
    "session.queue_depth",
    "session.stalled_writes",
    "el.cpu_s",
    "disp.suspected",
    "disp.suspect",
    "disp.recovering",
    "ft.faults",
    "ft.restarts",
    "sched.",
)


class TimeseriesSampler:
    """Bounded ring series of selected registry metrics over simulated time.

    ``include`` entries match a metric name exactly, or — when they end
    in ``"."`` — as a prefix (``"sched."`` collects every scheduler
    metric).  Matching metrics are summed across their label sets, so
    ``session.queue_depth`` is one cluster-wide series, not one per
    rank.  Each series is a ``deque(maxlen=max_samples)``: a run longer
    than the ring keeps the newest samples and counts the shed ones in
    :attr:`dropped`.
    """

    def __init__(
        self,
        metrics: Metrics,
        interval: float = 0.5,
        max_samples: int = 4096,
        include: Sequence[str] = DEFAULT_SERIES,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0 (got {interval})")
        self.metrics = metrics
        self.interval = float(interval)
        self.max_samples = int(max_samples)
        self.include = tuple(include)
        self._exact = frozenset(n for n in self.include if not n.endswith("."))
        self._prefixes = tuple(n for n in self.include if n.endswith("."))
        self.series: dict[str, deque] = {}
        self.dropped = 0
        self._last_t: Optional[float] = None

    @classmethod
    def from_flag(cls, metrics: Metrics, flag: Any) -> "TimeseriesSampler":
        """Build from the ``timeseries=`` run_job flag: ``True`` uses the
        default cadence, a number overrides the interval in simulated s."""
        if isinstance(flag, bool):
            return cls(metrics)
        return cls(metrics, interval=float(flag))

    def _selected(self, name: str) -> bool:
        if name in self._exact:
            return True
        return any(name.startswith(p) for p in self._prefixes)

    # -- sampling ------------------------------------------------------
    def sample(self, now: float) -> None:
        """Take one snapshot at simulated time ``now`` (idempotent per t)."""
        if self._last_t is not None and now <= self._last_t:
            return
        self._last_t = now
        totals: dict[str, float] = {}
        for m in self.metrics:
            if not self._selected(m.name):
                continue
            # gauges sample their current level; counters/histograms
            # their running scalar (monotone, so the series shows rate)
            totals[m.name] = totals.get(m.name, 0.0) + m.scalar()
        for name, value in totals.items():
            ring = self.series.get(name)
            if ring is None:
                ring = self.series[name] = deque(maxlen=self.max_samples)
            if len(ring) == ring.maxlen:
                self.dropped += 1
            ring.append((now, value))

    def install(self, sim: Any) -> None:
        """Spawn the periodic sampling process on the simulator."""
        def _loop():
            while True:
                self.sample(sim.now)
                yield sim.pause(self.interval)

        sim.spawn(_loop(), name="obs.timeseries")

    # -- export --------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self.series)

    def counter_tracks(self) -> dict[str, list[tuple[float, float]]]:
        """``{name: [(t, value), ...]}`` for Chrome counter export."""
        return {name: list(ring) for name, ring in sorted(self.series.items())}

    def to_records(self) -> Iterable[dict[str, Any]]:
        """One flat record per sample, for JSONL export."""
        for name in self.names():
            for t, v in self.series[name]:
                yield {"t": t, "name": name, "value": v}

    def write_jsonl(self, path: str) -> int:
        """Write the series as JSON Lines; returns the record count."""
        n = 0
        with open(path, "w") as fh:
            for rec in self.to_records():
                fh.write(json.dumps(rec) + "\n")
                n += 1
        return n

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly dump (``repro mttr --json-out`` sidecar)."""
        return {
            "interval": self.interval,
            "dropped": self.dropped,
            "series": {
                name: [[t, v] for t, v in ring]
                for name, ring in sorted(self.series.items())
            },
        }
