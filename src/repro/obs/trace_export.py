"""Trace export: Chrome trace-event JSON (Perfetto-loadable) and JSONL.

A :class:`~repro.simnet.trace.Tracer` collects typed records during a
run; this module turns them into the Chrome trace-event format (the
``traceEvents`` array understood by ``chrome://tracing`` and
https://ui.perfetto.dev) with **one track per host/daemon**:

* records carrying a ``rank`` (``v2.tx``, ``v2.ckpt``, ``mpi.*`` ...)
  land on a ``rank N`` process;
* ``net.xfer`` lands on the *sending host's* process;
* event-logger / checkpoint-server / dispatcher records land on their
  service's process.

Simulated seconds become microsecond timestamps (the unit the format
expects); every record is an instant event whose fields ride along in
``args``.

Time-series from :class:`~repro.obs.timeseries.TimeseriesSampler` render
as Chrome *counter* tracks (``ph: "C"``): pass its ``counter_tracks()``
to :func:`chrome_trace`/:func:`write_chrome_trace` via ``counters=`` and
the viewer draws queue-depth / suspected-rank / outstanding-recovery
graphs on a ``telemetry`` process alongside the event slices.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..simnet.trace import Tracer, TraceRecord

__all__ = [
    "chrome_trace",
    "counter_events",
    "trace_records",
    "write_chrome_trace",
    "write_trace_jsonl",
]

#: pid reserved for the telemetry (counter-track) pseudo-process; far
#: above anything the per-track allocator hands out
TELEMETRY_PID = 9999


def _track_of(rec: TraceRecord) -> str:
    """The process (track) a record belongs to."""
    kind = rec.fields
    if rec.kind.startswith("net."):
        return f"host:{kind.get('src', 'net')}"
    if rec.kind.startswith("el."):
        return "event-logger"
    if rec.kind.startswith("cs."):
        return "ckpt-server"
    if rec.kind.startswith("ft."):
        return "dispatcher"
    rank = kind.get("rank", kind.get("at"))
    if rank is not None:
        return f"rank{rank}"
    return "sim"


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def counter_events(
    tracks: Mapping[str, Sequence[tuple[float, float]]],
    pid: int = TELEMETRY_PID,
    pid_prefix: str = "",
) -> list[dict[str, Any]]:
    """Chrome counter events (``ph: "C"``) from sampled time-series.

    ``tracks`` maps a series name to its ``[(t_seconds, value), ...]``
    samples (the shape of ``TimeseriesSampler.counter_tracks()``).  Each
    series becomes one counter track on a shared ``telemetry`` process.
    """
    if not tracks:
        return []
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": pid_prefix + "telemetry"},
        }
    ]
    for name, samples in sorted(tracks.items()):
        for t, v in samples:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": pid,
                    "args": {name: v},
                }
            )
    return events


def chrome_trace(
    tracer: Tracer,
    pid_prefix: str = "",
    _pid_base: int = 0,
    counters: Optional[Mapping[str, Sequence[tuple[float, float]]]] = None,
) -> dict[str, Any]:
    """Render a tracer as a Chrome trace-event document (a plain dict).

    ``pid_prefix`` namespaces track names (used when several runs are
    merged into one file); ``_pid_base`` offsets the numeric pids so
    merged documents do not collide.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}
    events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []

    for rec in tracer:
        track = pid_prefix + _track_of(rec)
        pid = pids.get(track)
        if pid is None:
            pid = _pid_base + len(pids) + 1
            pids[track] = pid
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        tkey = (pid, rec.kind)
        tid = tids.get(tkey)
        if tid is None:
            tid = sum(1 for p, _ in tids if p == pid) + 1
            tids[tkey] = tid
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": rec.kind},
                }
            )
        events.append(
            {
                "name": rec.kind,
                "ph": "i",
                "s": "t",
                "ts": rec.time * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {k: _json_safe(v) for k, v in rec.fields.items()},
            }
        )

    extra: list[dict[str, Any]] = []
    if counters:
        extra = counter_events(
            counters, pid=TELEMETRY_PID + _pid_base, pid_prefix=pid_prefix
        )
    doc: dict[str, Any] = {
        "traceEvents": meta + events + extra,
        "displayTimeUnit": "ms",
    }
    if tracer.dropped:
        doc["metadata"] = {"dropped_records": tracer.dropped}
    return doc


def merge_chrome_traces(parts: Iterable[tuple[str, Tracer]]) -> dict[str, Any]:
    """One document from several labelled runs (tracks are namespaced)."""
    events: list[dict[str, Any]] = []
    dropped = 0
    base = 0
    for label, tracer in parts:
        doc = chrome_trace(tracer, pid_prefix=f"{label}:", _pid_base=base)
        events.extend(doc["traceEvents"])
        dropped += doc.get("metadata", {}).get("dropped_records", 0)
        base = max((e["pid"] for e in events), default=0)
    out: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if dropped:
        out["metadata"] = {"dropped_records": dropped}
    return out


def trace_records(tracer: Tracer) -> list[dict[str, Any]]:
    """Flat dict records (the JSONL schema): ``{time, kind, **fields}``."""
    return [
        {"time": rec.time, "kind": rec.kind,
         **{k: _json_safe(v) for k, v in rec.fields.items()}}
        for rec in tracer
    ]


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    counters: Optional[Mapping[str, Sequence[tuple[float, float]]]] = None,
) -> int:
    """Write one run as a Chrome trace file; returns the record count.

    ``counters`` adds sampler time-series as counter tracks (see
    :func:`counter_events`)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, counters=counters), fh)
    return len(tracer)


def write_trace_jsonl(tracer: Tracer, path: str) -> int:
    """Write one run as JSON-lines records; returns the record count."""
    with open(path, "w") as fh:
        for rec in trace_records(tracer):
            fh.write(json.dumps(rec) + "\n")
    return len(tracer)
