"""Deployment runtime: cluster assembly, connection fabric, mpirun."""

from .cluster import Cluster
from .config import DEFAULT_TESTBED, TestbedConfig
from .fabric import Acceptor, ConnectionRefused, Fabric
from .mpirun import run_job
from .results import JobResult

__all__ = [
    "Cluster",
    "DEFAULT_TESTBED",
    "TestbedConfig",
    "Acceptor",
    "ConnectionRefused",
    "Fabric",
    "run_job",
    "JobResult",
]

from .progfile import DeploymentPlan, parse_progfile  # noqa: E402

__all__ += ["DeploymentPlan", "parse_progfile"]
