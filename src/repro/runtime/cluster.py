"""Cluster assembly: simulator + network + hosts in one bundle.

Mirrors the paper's testbed: computing nodes (Athlon-class, volatile) and
auxiliary machines (PIII-class, reliable) hanging off one switch.
"""

from __future__ import annotations

from typing import Optional

from ..obs.registry import Metrics
from ..simnet.kernel import Simulator
from ..simnet.network import Network
from ..simnet.node import Host
from ..simnet.rng import RngRegistry
from ..simnet.streams import Stream
from ..simnet.trace import Tracer
from .config import DEFAULT_TESTBED, TestbedConfig

__all__ = ["Cluster"]


class Cluster:
    """One simulated deployment."""

    def __init__(
        self,
        cfg: TestbedConfig = DEFAULT_TESTBED,
        seed: int = 0,
        trace: bool = False,
        trace_max_records: Optional[int] = None,
    ) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace, max_records=trace_max_records)
        self.metrics = Metrics()
        # ring-buffer evictions are data loss: surface them as a metric so
        # nothing downstream can mistake a truncated trace for a full one
        self.tracer.drop_counter = self.metrics.counter("trace.dropped")
        self.net = Network(self.sim, cfg.link, tracer=self.tracer)
        self.rng = RngRegistry(seed)

    # -- hosts -------------------------------------------------------------
    def add_cn(self, name: str, full_duplex: bool = True,
               site: str = "site0", namespace: str = "") -> Host:
        """A computing node (volatile).

        ``full_duplex=False`` models the P4 driver, whose process does not
        service receptions while pushing a message.  ``site`` places the
        machine in a Grid deployment: traffic between sites runs over the
        link's wide-area parameters.  ``namespace`` prefixes the host
        name, so two concurrent deployments on one cluster cannot claim
        the same machine name (the network rejects duplicates).
        """
        host = Host(
            self.sim,
            namespace + name,
            cpu_flops=self.cfg.cn_flops,
            ram_bytes=self.cfg.cn_ram,
            swap_bytes=self.cfg.cn_swap,
            disk_bw=self.cfg.disk_bw,
            full_duplex=full_duplex,
            reliable=False,
            site=site,
        )
        return self.net.add_host(host)

    def add_aux(self, name: str, site: str = "site0",
                namespace: str = "") -> Host:
        """An auxiliary machine (event logger / checkpoint server / ...).

        ``namespace`` prefixes the host name exactly as for
        :meth:`add_cn`: per-deployment EL / store / scheduler hosts must
        carry their deployment's namespace or a second deployment on the
        same cluster would collide on the shared network's host table.
        """
        host = Host(
            self.sim,
            namespace + name,
            cpu_flops=self.cfg.aux_flops,
            ram_bytes=self.cfg.cn_ram,
            swap_bytes=self.cfg.cn_swap,
            disk_bw=self.cfg.disk_bw,
            full_duplex=True,
            reliable=self.cfg.reliable_aux,
            site=site,
        )
        return self.net.add_host(host)

    # -- wiring -------------------------------------------------------------
    def connect(self, a: Host, b: Host, window: Optional[int] = None) -> Stream:
        """Open a stream (simulated TCP connection) between two hosts."""
        return Stream(self.net, a, b, window=window or self.cfg.stream_window)
