"""Calibrated testbed configuration.

All performance constants of the simulated platform live here, calibrated
against the paper's measured baselines (Section 5):

* MPICH-P4 ping-pong: ~77 us 0-byte one-way latency, ~11.3 MB/s asymptotic
  bandwidth on 100 Mbit/s switched Ethernet;
* MPICH-V2 ping-pong: ~237 us latency (six TCP messages per exchange
  instead of two: payload + event-log + ack), ~10.7 MB/s bandwidth;
* computing nodes: Athlon XP 1800+ (1 GB RAM + 1 GB swap, IDE disk);
* auxiliary nodes (event loggers, checkpoint servers, scheduler,
  dispatcher): dual-PIII 500 MHz, assumed reliable.

Benchmarks are expected to reproduce the paper's *shapes* (who wins, by
what rough factor, where crossovers fall), not its absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..simnet.network import LinkConfig

__all__ = ["TestbedConfig", "DEFAULT_TESTBED"]


@dataclass(frozen=True)
class TestbedConfig:
    """Every tunable of the simulated platform, in one place."""

    # -- network -----------------------------------------------------------
    link: LinkConfig = field(default_factory=LinkConfig)
    stream_window: int = 64 * 1024  # TCP receive window per direction
    chunk_bytes: int = 16 * 1024  # driver transmission chunk

    # -- MPICH protocol layer ------------------------------------------------
    short_threshold: int = 1024  # short protocol (piggybacked) limit
    eager_threshold: int = 128 * 1024  # eager->rendezvous switch (MPICH 1.2.5)
    packet_header_bytes: int = 32  # protocol header per packet on the wire

    # -- computing nodes -----------------------------------------------------
    cn_flops: float = 2.6e8  # sustained MFLOP/s of an Athlon XP 1800+
    cn_ram: int = 1 << 30  # 1 GB main memory
    cn_swap: int = 1 << 30  # 1 GB swap on IDE disk
    disk_bw: float = 8e6  # IDE disk sustained write bandwidth
    aux_flops: float = 1.2e8  # auxiliary (PIII 500) node compute rate

    # -- MPICH-P4 driver ---------------------------------------------------------
    p4_send_cpu: float = 15e-6  # synchronous socket-write syscall per packet

    # -- MPICH-V2 daemon -------------------------------------------------------
    unix_socket_bw: float = 500e6  # CN-local daemon<->process pipe
    unix_socket_latency: float = 9e-6  # per message across the UNIX socket
    log_copy_bw: float = 400e6  # sender-based in-RAM payload copy speed
    log_slab_bytes: int = 24 * 1024  # fixed allocation slab per logged message
    os_reserved_ram: int = 128 << 20  # RAM unavailable to the message log
    event_bytes: int = 20  # reception event record on the wire (paper: ~20 B)
    event_ack_bytes: int = 8
    el_cpu_per_event: float = 30e-6  # PIII-500 event-logger handling, per event
    el_batch_cap: int = 4  # daemon pushes at most this many events per write
    daemon_cpu_per_msg: float = 6e-6  # daemon select-loop work per message
    daemon_cpu_per_byte: float = 1.1e-9  # daemon copy work per payload byte

    # -- MPICH-V1 channel memories ---------------------------------------------
    cm_request_bytes: int = 16  # receiver's GET request to its Channel Memory
    cm_store_cpu: float = 25e-6  # CM-side handling per message

    # -- checkpointing -----------------------------------------------------------
    ckpt_protocol_bytes: int = 64  # control messages around a checkpoint
    ckpt_fork_cost: float = 20e-3  # fork + Condor library entry
    restart_detect_delay: float = 0.25  # dispatcher notices the broken socket
    restart_spawn_delay: float = 1.0  # rsh/ssh + process launch on the new node
    ckpt_image_load_cpu: float = 0.5  # Condor jump-to-checkpoint local cost

    # -- failure model -------------------------------------------------------------
    reliable_aux: bool = True

    # -- volatile infrastructure ---------------------------------------------------
    # reconnect backoff shared by every client of a flaky service/link:
    # delay(attempt) = min(cap, base * factor**attempt), +/- jitter fraction
    reconnect_base: float = 0.05
    reconnect_factor: float = 2.0
    reconnect_cap: float = 2.0
    reconnect_jitter: float = 0.25
    reconnect_max_tries: int = 60  # EL budget: exhausting it is fatal
    peer_retry_tries: int = 40  # peer/dispatcher/scheduler links: give up quietly
    cs_fetch_tries: int = 6  # image fetch budget before restart-from-scratch
    svc_restart_delay: float = 0.5  # supervisor respawn delay for EL/CS crashes
    # session heartbeat: daemons PING the dispatcher every hb_interval;
    # a quiet link older than hb_timeout flags the peer as suspect
    # (catches partitioned-but-alive nodes the socket detector cannot).
    # hb_interval = 0 disables both sides.
    hb_interval: float = 0.25
    hb_timeout: float = 1.0

    # -- replicated checkpoint store (repro.store) ---------------------------------
    ckpt_servers: int = 1  # N: checkpoint-store replicas in the cluster
    ckpt_replicas: int = 1  # K: write quorum making a checkpoint durable
    ckpt_incremental: bool = False  # push only dirty/missing chunks
    ckpt_chunk_kib: int = 64  # content-addressed chunk size (KiB)
    ckpt_dirty_ops: int = 32  # ops per phase of the deterministic dirty model

    # -- replicated event logger ---------------------------------------------------
    # Ranks shard across el_servers logger groups (rank % el_servers); each
    # group keeps el_replicas in-memory copies of its shard's event tuples.
    # The WAITLOGGED gate clears on a majority quorum of replica acks, so a
    # replica crash costs a failover rather than a stalled job.
    el_servers: int = 1  # N: shards (logger groups) in the cluster
    el_replicas: int = 1  # K: replicas per shard (1 = the classic single EL)
    # Coalesce the acks for a burst of queued EVENT batches into one
    # cumulative frame, and piggyback them on DOWNLOAD replies — fewer
    # dedicated ack round trips on the WAITLOGGED critical path.
    el_piggyback_acks: bool = True

    # -- multi-job control plane (repro.serve) -------------------------------------
    serve_capacity: int = 16  # computing-node slots in the shared pool
    serve_svc_slots: int = 4  # service hosts (one per running v2 job)
    serve_starve_s: float = 30.0  # reserve capacity for a head job this starved
    serve_job_limit: float = 3600.0  # per-job simulated-seconds budget

    @property
    def el_quorum(self) -> int:
        """Majority write quorum per EL shard (K=3 -> 2; K=1 -> 1)."""
        return self.el_replicas // 2 + 1

    @property
    def ckpt_chunk_bytes(self) -> int:
        """Content-addressed chunk size in bytes."""
        return self.ckpt_chunk_kib << 10

    def with_(self, **changes) -> "TestbedConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)


DEFAULT_TESTBED = TestbedConfig()
