"""Connection fabric: a naming service for dynamic stream establishment.

The P4 baseline wires a static all-to-all mesh, but the fault-tolerant
runtimes need *dynamic* connections: a restarted daemon (possibly on a
different machine) must reconnect to its peers, the event logger, the
checkpoint server and the dispatcher.  Services listen under well-known
names ("daemon:3", "el:0", "cs:0", "dispatcher"); connecting creates a
fresh stream and delivers ``(stream_end, hello)`` to the listener's accept
queue — the simulated analogue of listen/accept on a known port.
"""

from __future__ import annotations

from typing import Any, Optional

from ..simnet.kernel import Queue, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import StreamEnd
from .cluster import Cluster

__all__ = ["Acceptor", "Fabric", "ScopedFabric", "ConnectionRefused"]


class ConnectionRefused(Exception):
    """No live listener under that name."""


class Acceptor:
    """A service's accept queue."""

    def __init__(self, sim: Simulator, name: str, host: Host) -> None:
        self.name = name
        self.host = host
        self.queue: Queue = Queue(sim, name=f"accept:{name}")
        self.closed = False

    def accept(self):
        """Future of the next ``(stream_end, hello)`` connection."""
        return self.queue.get()


class Fabric:
    """The naming service (conceptually: everyone knows the program file)."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._listeners: dict[str, Acceptor] = {}

    def listen(self, name: str, host: Host) -> Acceptor:
        """Register (or re-register, after a restart) a named listener."""
        acc = Acceptor(self.cluster.sim, name, host)
        old = self._listeners.get(name)
        if old is not None:
            old.closed = True
        self._listeners[name] = acc
        return acc

    def unlisten(self, name: str, acceptor: Acceptor) -> None:
        """Withdraw a listener (future connects are refused)."""
        if self._listeners.get(name) is acceptor:
            del self._listeners[name]
        acceptor.closed = True

    def connect(
        self, from_host: Host, name: str, hello: Any = None, window: Optional[int] = None
    ) -> StreamEnd:
        """Open a stream to the named service; returns the local endpoint.

        Raises :class:`ConnectionRefused` when the listener is absent or
        its host is down (the caller retries, as a real connect() would).
        """
        acc = self._listeners.get(name)
        if acc is None or acc.closed or acc.host.failed:
            raise ConnectionRefused(name)
        if from_host.failed:
            raise HostDown(from_host.name)
        if self.cluster.net.partitioned(from_host, acc.host):
            # the SYN cannot cross an active cut; unlike established
            # streams (which ride the partition out), a connect times out
            raise ConnectionRefused(f"{name} (partitioned)")
        stream = self.cluster.connect(from_host, acc.host, window=window)
        if acc.host is from_host:
            # loopback: ``end_for`` cannot tell the two ends apart when
            # both belong to the same host — hand them out explicitly
            acc.queue.put((stream.b, hello))
            return stream.a
        acc.queue.put((stream.end_for(acc.host), hello))
        return stream.end_for(from_host)


class ScopedFabric:
    """A per-job view of a shared fabric: names are prefixed unless shared.

    The control plane runs many jobs over one :class:`Fabric`; each job's
    components see the naming service through this wrapper, so
    "daemon:3", "dispatcher" or "sched:0" resolve to job-private names
    (``j7/daemon:3``) while the shared infrastructure — event-logger
    replicas, checkpoint-store replicas — passes through untranslated.
    No component below this layer knows whether it runs alone or as one
    tenant of many; the wrapper is the single interception point, just
    as the fabric itself is for connection establishment.
    """

    def __init__(
        self, fabric: Fabric, prefix: str, shared: frozenset = frozenset()
    ) -> None:
        self._fabric = fabric
        self.cluster = fabric.cluster
        self.prefix = prefix
        self.shared = frozenset(shared)

    def scoped(self, name: str) -> str:
        """The shared-fabric name this scope maps ``name`` to."""
        return name if name in self.shared else self.prefix + name

    def listen(self, name: str, host: Host) -> Acceptor:
        return self._fabric.listen(self.scoped(name), host)

    def unlisten(self, name: str, acceptor: Acceptor) -> None:
        self._fabric.unlisten(self.scoped(name), acceptor)

    def connect(
        self, from_host: Host, name: str, hello: Any = None, window: Optional[int] = None
    ) -> StreamEnd:
        return self._fabric.connect(
            from_host, self.scoped(name), hello=hello, window=window
        )
