"""mpirun: launch an MPI program on a simulated deployment.

The user-facing entry point is :func:`run_job`: pick a device
("p4", "v1", "v2"), a program (a generator function taking an
:class:`~repro.mpi.api.MPI` context), a process count, and run.  Device
launchers encapsulate the paper's per-implementation deployments:

* **p4** — computing nodes only, all-to-all direct streams;
* **v1** — computing nodes + reliable Channel Memory nodes (default 1 CM
  per 4 CNs, the ratio of the paper's Figure 8 setup);
* **v2** — computing nodes + reliable node(s) hosting the dispatcher,
  event logger and checkpoint scheduler, + checkpoint server; full fault
  tolerance (failure injection, restart, replay).

Launchers for the fault-tolerant devices live in their packages; this
module wires the common scaffolding (hosts, streams, rank processes) and
collects :class:`JobResult`.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..devices.p4 import P4Device
from ..mpi.api import MPI
from ..obs.collect import finalize_job
from ..simnet.kernel import Future, all_of
from .cluster import Cluster
from .config import DEFAULT_TESTBED, TestbedConfig
from .results import JobResult

__all__ = ["run_job", "rank_main"]

Program = Callable[..., Generator[Future, Any, Any]]


def rank_main(mpi: MPI, program: Program, params: dict[str, Any]):
    """The wrapper every rank runs: init, program, finalize."""
    yield from mpi.init()
    result = yield from program(mpi, **params)
    yield from mpi.finalize()
    return (mpi.sim.now, result)


def run_job(
    program: Program,
    nprocs: int,
    device: str = "p4",
    cfg: TestbedConfig = DEFAULT_TESTBED,
    params: Optional[dict[str, Any]] = None,
    trace: bool = False,
    seed: int = 0,
    limit: Optional[float] = None,
    audit: bool = False,
    profile: bool = False,
    timeseries: Any = False,
    plane: Optional[Any] = None,
    **device_kw: Any,
) -> JobResult:
    """Run ``program`` on ``nprocs`` simulated processes; block to completion.

    With ``plane`` (a :class:`~repro.serve.plane.ControlPlane`), the job
    is not given a private cluster: it is submitted to the plane's
    admission queue and runs over the shared deployment — ``run_job``
    becomes a single-job client of the control plane, and the plane's
    ``cfg``/``seed`` govern the platform (this call's are ignored).

    ``limit`` bounds simulated seconds (raises if exceeded).  ``audit``
    attaches the online protocol auditor to the run's live trace stream
    and reports the verdict in ``JobResult.audit`` (for p4/v1 only the
    causal-clock stamping applies — the V2 invariant checks have nothing
    to fire on).  ``profile`` hooks the event-kernel profiler into the
    simulator and reports the :class:`~repro.obs.profile.KernelProfile`
    in ``JobResult.profile``.  ``timeseries`` samples selected registry
    metrics on a simulated-time cadence (``True`` for the default 0.5 s
    interval, a number to override it) into
    ``JobResult.timeseries`` (a
    :class:`~repro.obs.timeseries.TimeseriesSampler`).  Extra keyword
    arguments are forwarded to the device launcher (fault schedules,
    checkpoint policies, event-logger counts, ...).
    """
    params = params or {}
    if plane is not None:
        if profile or timeseries:
            raise ValueError(
                "profile/timeseries are per-cluster: run them on a "
                "dedicated deployment, not through the control plane"
            )
        from ..serve.plan import JobSpec

        spec = JobSpec(
            workload=program,
            nranks=nprocs,
            device=device,
            params=params,
            checkpointing=device_kw.pop("checkpointing", False),
            ckpt_interval=device_kw.pop("ckpt_interval", 30.0),
            fault=device_kw.pop("faults", None),
            tenant=device_kw.pop("tenant", "default"),
            limit=limit,
            trace=trace,
            audit=audit,
        )
        if device_kw:
            raise ValueError(
                f"options {sorted(device_kw)} are not supported when "
                "submitting through a control plane"
            )
        return plane.wait(plane.submit(spec))
    if device == "p4":
        return _run_p4(
            program, nprocs, cfg, params, trace, seed, limit, audit,
            profile=profile, timeseries=timeseries, **device_kw
        )
    if device == "v1":
        from ..devices.v1 import run_v1_job

        return run_v1_job(
            program, nprocs, cfg, params, trace, seed, limit, audit=audit,
            profile=profile, timeseries=timeseries, **device_kw,
        )
    if device == "v2":
        from ..ft.dispatcher import run_v2_job

        return run_v2_job(
            program, nprocs, cfg, params, trace, seed, limit, audit=audit,
            profile=profile, timeseries=timeseries, **device_kw,
        )
    raise ValueError(f"unknown device {device!r} (expected p4/v1/v2)")


def _run_p4(
    program: Program,
    nprocs: int,
    cfg: TestbedConfig,
    params: dict[str, Any],
    trace: bool,
    seed: int,
    limit: Optional[float],
    audit: bool = False,
    profile: bool = False,
    timeseries: Any = False,
) -> JobResult:
    cluster = Cluster(cfg, seed=seed, trace=trace)
    sim = cluster.sim
    profiler = None
    if profile:
        from ..obs.profile import KernelProfiler

        profiler = KernelProfiler()
        profiler.install(sim)
    sampler = None
    if timeseries:
        from ..obs.timeseries import TimeseriesSampler

        sampler = TimeseriesSampler.from_flag(cluster.metrics, timeseries)
        sampler.install(sim)
    auditor = None
    if audit:
        from ..obs.audit import ProtocolAuditor

        auditor = ProtocolAuditor().attach(cluster.tracer)
    hosts = [cluster.add_cn(f"cn{r}", full_duplex=False) for r in range(nprocs)]

    devices = [
        P4Device(sim, cfg, r, nprocs, hosts[r], tracer=cluster.tracer)
        for r in range(nprocs)
    ]
    # all-to-all streams
    ends: list[dict[int, Any]] = [dict() for _ in range(nprocs)]
    for i in range(nprocs):
        for j in range(i + 1, nprocs):
            s = cluster.connect(hosts[i], hosts[j])
            ends[i][j] = s.end_for(hosts[i])
            ends[j][i] = s.end_for(hosts[j])
    for r in range(nprocs):
        devices[r].wire(ends[r])

    mpis = [
        MPI(sim, r, nprocs, devices[r], tracer=cluster.tracer) for r in range(nprocs)
    ]
    procs = []
    for r in range(nprocs):
        p = sim.spawn(rank_main(mpis[r], program, params), name=f"rank{r}")
        hosts[r].register(p)
        procs.append(p)

    done = all_of(sim, [p.done for p in procs])
    outcome = sim.run_until(done, limit=limit)
    if sampler is not None:
        sampler.sample(sim.now)
    finish_times = [t for t, _ in outcome]
    stats = finalize_job(
        cluster, {r: devices[r].stats for r in range(nprocs)}, "p4"
    )
    report = auditor.finish() if auditor is not None else None
    prof = profiler.finish() if profiler is not None else None
    return JobResult(
        nprocs=nprocs,
        device="p4",
        elapsed=max(finish_times),
        results=[res for _, res in outcome],
        timers={r: mpis[r].timer for r in range(nprocs)},
        tracer=cluster.tracer,
        stats=stats,
        metrics=cluster.metrics,
        audit=report,
        profile=prof,
        timeseries=sampler,
    )
