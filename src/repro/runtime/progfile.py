"""The mpirun 'program file' of Section 4.7.

"The run preparation consists in a shell script ... creating a 'program
file' from a list of available machines ... The obtained program file is
the equivalent of a 'P4PGFILE' for the original MPICH-P4.  It describes
the run, with for each machine 1) its role inside the system (Computing
Node, Event Logger, Checkpoint Server, Checkpoint Scheduler) and 2) the
list of options for that role."

This module parses that description and turns it into a deployment plan
for :func:`repro.ft.dispatcher.run_v2_job`.  Grammar (one machine per
line, ``#`` comments)::

    <hostname>  <ROLE>  [key=value ...]

Roles: ``CN`` (computing node), ``SPARE`` (replacement pool), ``EL``
(event logger), ``CS`` (checkpoint server), ``SC`` (checkpoint
scheduler), ``DISPATCHER``.  The scheduler and dispatcher default to the
first EL's machine when omitted — the paper's "typical setup would
execute the checkpoint scheduler on the same node as the dispatcher and
the event logger".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MachineSpec", "DeploymentPlan", "parse_progfile"]

ROLES = ("CN", "SPARE", "EL", "CS", "SC", "DISPATCHER")


@dataclass(frozen=True)
class MachineSpec:
    """One line of the program file."""

    host: str
    role: str
    options: dict[str, str] = field(default_factory=dict)


@dataclass
class DeploymentPlan:
    """Machine-to-role assignment for one MPICH-V2 run."""

    cns: list[str] = field(default_factory=list)
    spares: list[str] = field(default_factory=list)
    els: list[str] = field(default_factory=list)
    cs: Optional[str] = None
    scheduler: Optional[str] = None
    dispatcher: Optional[str] = None
    options: dict[str, dict[str, str]] = field(default_factory=dict)

    @property
    def nprocs(self) -> int:
        """Number of computing nodes the plan declares."""
        return len(self.cns)

    def validate(self) -> None:
        """Raise ValueError on structurally impossible deployments."""
        if not self.cns:
            raise ValueError("program file declares no computing nodes")
        if not self.els:
            raise ValueError("program file declares no event logger")
        if self.cs is None:
            raise ValueError("program file declares no checkpoint server")
        names = (
            self.cns + self.spares + self.els + [self.cs]
            + [self.scheduler, self.dispatcher]
        )
        named = [n for n in names if n is not None]
        # CN/spare machines must not double as reliable services
        volatile = set(self.cns + self.spares)
        reliable = set(self.els + [self.cs, self.scheduler, self.dispatcher])
        overlap = volatile & {r for r in reliable if r is not None}
        if overlap:
            raise ValueError(
                f"machines {sorted(overlap)} are both volatile (CN/SPARE) "
                "and reliable services"
            )


def parse_progfile(text: str) -> DeploymentPlan:
    """Parse a program file into a validated :class:`DeploymentPlan`."""
    plan = DeploymentPlan()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"line {lineno}: expected '<host> <role> ...'")
        host, role = parts[0], parts[1].upper()
        if role not in ROLES:
            raise ValueError(
                f"line {lineno}: unknown role {role!r} (expected {ROLES})"
            )
        options = {}
        for opt in parts[2:]:
            if "=" not in opt:
                raise ValueError(f"line {lineno}: bad option {opt!r}")
            k, v = opt.split("=", 1)
            options[k] = v
        plan.options[host] = options
        if role == "CN":
            plan.cns.append(host)
        elif role == "SPARE":
            plan.spares.append(host)
        elif role == "EL":
            plan.els.append(host)
        elif role == "CS":
            if plan.cs is not None:
                raise ValueError(f"line {lineno}: duplicate checkpoint server")
            plan.cs = host
        elif role == "SC":
            plan.scheduler = host
        elif role == "DISPATCHER":
            plan.dispatcher = host
    # the paper's typical setup: SC + dispatcher colocated with the EL
    if plan.scheduler is None and plan.els:
        plan.scheduler = plan.els[0]
    if plan.dispatcher is None and plan.els:
        plan.dispatcher = plan.els[0]
    plan.validate()
    return plan
