"""Job results: what a completed (possibly faulty) MPI run reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..mpi.timing import CallTimer
from ..simnet.trace import Tracer

__all__ = ["JobResult"]


@dataclass
class JobResult:
    """Outcome of one simulated mpirun."""

    nprocs: int
    device: str
    elapsed: float  # simulated seconds, start to last rank's finalize
    results: list[Any]  # per-rank return values of the program
    timers: dict[int, CallTimer]  # per-rank call-time attribution
    tracer: Optional[Tracer] = None
    stats: dict[int, dict[str, Any]] = field(default_factory=dict)
    restarts: int = 0  # how many process restarts occurred
    checkpoints: int = 0  # how many checkpoints completed
    metrics: Optional[Any] = None  # the job's obs.Metrics registry
    audit: Optional[Any] = None  # obs.AuditReport when run with audit=True
    profile: Optional[Any] = None  # obs.KernelProfile when run with profile=True
    timeseries: Optional[Any] = None  # obs.TimeseriesSampler when sampled
    extras: dict[str, Any] = field(default_factory=dict)

    def stat(self, name: str, rank: Optional[int] = None,
             default: float = 0.0) -> float:
        """One registry metric's total (optionally for a single rank).

        Metrics a device never touches (e.g. ``el.roundtrips`` on a P4
        run) fall back to ``default``, so cross-device comparisons need
        no key juggling.
        """
        if self.metrics is None:
            return default
        return self.metrics.total(name, rank=rank, default=default)

    def timer_sum(self, cat: str) -> float:
        """Sum of one call category's time across all ranks."""
        return sum(t.get(cat) for t in self.timers.values())

    def comm_time(self, rank: int) -> float:
        """One rank's total non-compute (communication) time."""
        return self.timers[rank].comm_total()

    def compute_time(self, rank: int) -> float:
        """One rank's total computation time."""
        return self.timers[rank].get("compute")
