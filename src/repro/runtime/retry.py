"""Reconnection with capped exponential backoff (shared by every client).

The paper treats the event logger, the checkpoint server and the network
as reliable; a production runtime cannot.  Every component that talks to
a service that may be briefly gone — a daemon reconnecting to a crashed
event logger, the lower-rank peer re-establishing a flapped link, a
checkpoint push retrying against a restarting server — uses the same
retry shape: capped exponential backoff with deterministic jitter drawn
from the simulation's named RNG streams, so two runs with the same seed
retry at exactly the same simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..simnet.kernel import Future, Simulator
from ..simnet.node import Host
from ..simnet.streams import StreamEnd
from .config import TestbedConfig
from .fabric import ConnectionRefused, Fabric

__all__ = ["RetryPolicy", "connect_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``min(cap, base * factor**attempt)`` +/- jitter."""

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.25  # fraction of the delay, uniform both ways
    max_tries: int = 60

    @classmethod
    def from_config(
        cls, cfg: TestbedConfig, max_tries: Optional[int] = None
    ) -> "RetryPolicy":
        """The testbed's calibrated backoff (``max_tries`` overridable)."""
        return cls(
            base=cfg.reconnect_base,
            factor=cfg.reconnect_factor,
            cap=cfg.reconnect_cap,
            jitter=cfg.reconnect_jitter,
            max_tries=max_tries if max_tries is not None else cfg.reconnect_max_tries,
        )

    def delay(self, attempt: int, rng: Optional[Any] = None) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered via ``rng``."""
        d = min(self.cap, self.base * self.factor**attempt)
        if rng is not None and self.jitter > 0:
            d *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return d


def connect_with_retry(
    sim: Simulator,
    fabric: Fabric,
    host: Host,
    name: str,
    *,
    hello: Any = None,
    window: Optional[int] = None,
    policy: RetryPolicy,
    rng: Optional[Any] = None,
    on_retry: Optional[Callable[[int, float], None]] = None,
    giveup: Optional[Callable[[], bool]] = None,
) -> Generator[Future, Any, Optional[StreamEnd]]:
    """Connect to a named service, retrying refused attempts with backoff.

    Returns the stream end, or ``None`` once ``policy.max_tries`` refused
    attempts are exhausted (or ``giveup()`` turns true between attempts —
    e.g. another process already re-established the link).  ``on_retry``
    is called as ``(attempt, delay)`` before each backoff sleep, which is
    where callers account the ``outage.*`` metrics.
    """
    for attempt in range(policy.max_tries):
        if giveup is not None and giveup():
            return None
        try:
            return fabric.connect(host, name, hello=hello, window=window)
        except ConnectionRefused:
            d = policy.delay(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, d)
            yield sim.pause(d)
    return None
