"""The shared connection layer: framed sessions and the service lifecycle.

The paper's architecture is a set of separable services — event logger,
checkpoint server, checkpoint scheduler, dispatcher, channel memories —
each talking to daemon-side clients over ordered streams.  Before this
module existed, every one of those components hand-rolled the same three
mechanisms: a listen/accept-loop/unlisten lifecycle on the server side,
a typed-record framing discipline on the wire, and reconnect-with-backoff
machinery on the client side.  This module implements each exactly once:

* :class:`Session` — one client-side link to a named service.  It wraps
  a :class:`~repro.simnet.streams.StreamEnd` with

  - **typed record framing**: a wire message is either ``None`` (an
    in-flight segment of a chunked transfer, skipped), a tagged tuple
    ``("KIND", ...)``, or an explicitly allowed raw payload type (e.g.
    :class:`~repro.mpi.protocol.Packet` on peer/CM links).  Anything
    else is a *protocol error* — counted into the metrics registry and
    traced, never silently treated as payload (the CHUNK/COMMIT
    discipline ``repro.store`` introduced, now shared);
  - **reconnect epochs**: every (re)adoption of a stream bumps
    ``epoch``; loops capture the epoch they were started under and use
    :meth:`Session.stale` to reject work belonging to a replaced link;
  - **integrated backoff**: :meth:`Session.connect` retries refused
    connections under a :class:`~repro.runtime.retry.RetryPolicy` with
    deterministic jitter, reporting each retry through ``on_retry`` (the
    hook components use to account the ``outage.*`` metrics).

* :class:`ServiceBase` — the server-side lifecycle.  ``start()``
  registers the fabric listener and runs the accept loop; ``stop()``
  withdraws the listener, kills every service process and breaks every
  accepted connection (a *service-level* crash: in-flight requests die,
  durable state — owned by the subclass — survives for the supervised
  relaunch).  Subclasses implement :meth:`ServiceBase._serve` (one
  generator per accepted connection) or override
  :meth:`ServiceBase.on_accept` for bespoke connection handling.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..obs.registry import Metrics
from ..simnet.kernel import Future, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .fabric import Acceptor, Fabric
from .retry import RetryPolicy, connect_with_retry

__all__ = ["Session", "ServiceBase", "framed"]


def framed(msg: Any, payload_types: tuple = ()) -> bool:
    """Is ``msg`` a well-formed typed record (or an allowed raw payload)?

    A typed record is a non-empty tuple whose first element is a string
    tag.  ``payload_types`` widens the accepted set for links that carry
    raw application payloads (peer daemons, channel memories).
    """
    if isinstance(msg, tuple) and msg and isinstance(msg[0], str):
        return True
    return bool(payload_types) and isinstance(msg, payload_types)


class Session:
    """One framed, epoch-counted client link to a named service.

    A session survives the stream it currently wraps: when the link
    breaks, :meth:`drop` marks it down (rejecting stale notifications
    from replaced streams) and a later :meth:`connect` /
    :meth:`adopt` installs the replacement under a bumped epoch.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        host: Host,
        target: str,
        *,
        hello: Any = None,
        window: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        scope: str = "session",
        payload_types: tuple = (),
        labels: Optional[dict[str, Any]] = None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.target = target
        self.hello = hello
        self.window = window
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = rng
        self._on_retry = on_retry
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.scope = scope
        self.payload_types = tuple(payload_types)
        self._labels = dict(labels or {})
        m = metrics if metrics is not None else Metrics()
        self._metrics = m
        self._m_proto = m.counter(f"{scope}.protocol_errors", **self._labels)
        # backpressure visibility: stalled-write time and receive-queue
        # depth of the current stream, folded on every session I/O call
        # (the ``session.*`` family is shared across scopes; the target
        # label separates the links)
        _bp = dict(self._labels, target=target)
        self._m_stall_s = m.counter("session.stalled_write_s", **_bp)
        self._m_stalls = m.counter("session.stalled_writes", **_bp)
        self._m_depth = m.gauge("session.queue_depth", **_bp)
        self._bp_end: Optional[StreamEnd] = None
        self._bp_stall_s = 0.0
        self._bp_stalls = 0
        # heartbeat state (armed by :meth:`heartbeat`)
        self._hb_on = False
        self._m_rtt: Optional[Any] = None
        self._m_hb_timeouts: Optional[Any] = None
        self.last_pong = 0.0
        self.hb_suspect = False
        self.end: Optional[StreamEnd] = None
        self.epoch = 0  # bumps on every (re)adoption
        self.protocol_errors = 0

    # -- link state --------------------------------------------------------
    def up(self) -> bool:
        """Is the current stream alive?"""
        return self.end is not None and self.end.broken is None

    def stale(self, epoch: int) -> bool:
        """Does ``epoch`` belong to a replaced incarnation of this link?"""
        return epoch != self.epoch

    def adopt(self, end: StreamEnd) -> int:
        """Install ``end`` as the session's stream; returns the new epoch."""
        self.end = end
        self.epoch += 1
        return self.epoch

    def drop(self, end: Optional[StreamEnd] = None) -> bool:
        """Mark the link down.  Returns False for stale notifications —
        when ``end`` is given and is no longer the session's stream, a
        replaced loop noticed a break the session already moved past."""
        if self.end is None or (end is not None and self.end is not end):
            return False
        self.end = None
        return True

    # -- connecting --------------------------------------------------------
    def connect_now(self, adopt: bool = True) -> StreamEnd:
        """Single connection attempt (no retry); adopts on success.

        Raises :class:`~repro.runtime.fabric.ConnectionRefused` exactly
        as ``fabric.connect`` would — for links whose target is assumed
        reliable (e.g. a Channel Memory).  ``adopt=False`` returns the
        raw stream for callers whose adoption needs arbitration first
        (the peer layer's crossed-stream tie-break)."""
        end = self.fabric.connect(
            self.host, self.target, hello=self.hello, window=self.window
        )
        if adopt:
            self.adopt(end)
        return end

    def connect(
        self,
        giveup: Optional[Callable[[], bool]] = None,
        adopt: bool = True,
    ) -> Generator[Future, Any, Optional[StreamEnd]]:
        """Connect under the session's retry policy; adopts on success.

        Returns the new stream end, or ``None`` once the retry budget is
        exhausted (or ``giveup()`` turned true between attempts).
        ``adopt=False`` as in :meth:`connect_now`."""
        end = yield from connect_with_retry(
            self.sim, self.fabric, self.host, self.target,
            hello=self.hello, window=self.window,
            policy=self.policy, rng=self._rng,
            on_retry=self._on_retry, giveup=giveup,
        )
        if end is None:
            return None
        if adopt:
            self.adopt(end)
        return end

    # -- backpressure accounting -------------------------------------------
    def _note_io(self, end: StreamEnd) -> None:
        """Fold the stream's stall/backlog state into ``session.*``.

        Called on every session read/write: stalled-write deltas of the
        current end become counters (the baseline resets when the
        session adopts a replacement stream), and the receive backlog is
        sampled into a time-weighted gauge.
        """
        if end is not self._bp_end:
            self._bp_end = end
            self._bp_stall_s = end.stall_s
            self._bp_stalls = end.stall_count
        else:
            ds = end.stall_s - self._bp_stall_s
            if ds > 0.0:
                self._m_stall_s.inc(ds)
                self._bp_stall_s = end.stall_s
            dn = end.stall_count - self._bp_stalls
            if dn:
                self._m_stalls.inc(dn)
                self._bp_stalls = end.stall_count
        d = end.rx_depth
        if d or self._m_depth.value:
            self._m_depth.set(float(d), self.sim.now)

    # -- heartbeat ---------------------------------------------------------
    def heartbeat(
        self, interval: float, timeout: Optional[float] = None
    ) -> Generator[Future, Any, None]:
        """Periodic framed PING loop (run it as a process).

        Every ``interval`` simulated seconds a ``("PING", epoch, seq,
        now)`` record goes out on the live link; the peer's PONGs are
        absorbed by :meth:`read_record` (whichever loop is reading the
        link) into the ``session.rtt_s`` histogram.  When no PONG has
        arrived for ``timeout`` seconds on a link that still *looks* up
        — the partitioned-but-alive case a socket-disconnection detector
        cannot see — the session turns ``hb_suspect``, counts
        ``session.hb_timeouts`` and traces ``<scope>.hb_timeout``; the
        next PONG clears it with ``<scope>.hb_recover``.
        """
        self._hb_on = True
        if self._m_rtt is None:
            _hb = dict(self._labels, target=self.target)
            self._m_rtt = self._metrics.histogram("session.rtt_s", **_hb)
            self._m_hb_timeouts = self._metrics.counter(
                "session.hb_timeouts", **_hb
            )
        self.last_pong = self.sim.now
        seq = 0
        while True:
            yield self.sim.pause(interval)
            end = self.end
            if end is None or end.broken is not None:
                # a torn-down link is the socket detector's business,
                # not a heartbeat timeout
                self.last_pong = self.sim.now
                continue
            seq += 1
            try:
                yield from self.write(24, ("PING", self.epoch, seq, self.sim.now))
            except (Disconnected, HostDown):
                self.drop(end)
                continue
            if (
                timeout is not None
                and self.sim.now - self.last_pong > timeout
                and not self.hb_suspect
            ):
                self.hb_suspect = True
                self._m_hb_timeouts.inc()
                self.tracer.emit(
                    self.sim.now, f"{self.scope}.hb_timeout",
                    target=self.target,
                    age=self.sim.now - self.last_pong, **self._labels,
                )

    # -- framed I/O --------------------------------------------------------
    def write(self, nbytes: int, record: Any) -> Generator[Future, Any, None]:
        """Send one framed record on the current stream."""
        end = self.end
        if end is None:
            raise Disconnected(self.target, "session down")
        self._note_io(end)
        yield from end.write(nbytes, record)
        self._note_io(end)  # fold the stall this write just paid, if any

    def write_frame(
        self,
        nbytes: int,
        record: Any,
        mtu: Optional[int] = None,
        bulk: bool = False,
    ) -> Generator[Future, Any, None]:
        """Send one coalesced frame (``StreamEnd.write_frame``) with the
        session's backpressure accounting wrapped around it."""
        end = self.end
        if end is None:
            raise Disconnected(self.target, "session down")
        self._note_io(end)
        yield from end.write_frame(nbytes, record, mtu=mtu, bulk=bulk)
        self._note_io(end)

    def read_record(
        self, end: Optional[StreamEnd] = None
    ) -> Generator[Future, Any, Any]:
        """Next well-formed record: skips in-flight segments, rejects
        (counts + traces) unframed garbage instead of returning it.
        Heartbeat PONGs are absorbed here (RTT histogram), never
        returned to the caller."""
        src = end if end is not None else self.end
        self._note_io(src)
        while True:
            _, msg = yield src.read()
            if msg is None:
                continue  # an in-flight segment of a chunked transfer
            if (
                self._hb_on
                and type(msg) is tuple
                and len(msg) == 4
                and msg[0] == "PONG"
            ):
                now = self.sim.now
                self.last_pong = now
                self._m_rtt.observe(now - msg[3])
                if self.hb_suspect:
                    self.hb_suspect = False
                    self.tracer.emit(
                        now, f"{self.scope}.hb_recover",
                        target=self.target, **self._labels,
                    )
                continue
            if not framed(msg, self.payload_types):
                self.protocol_error(
                    f"unframed record of type {type(msg).__name__}"
                )
                continue
            return msg

    def protocol_error(self, why: str) -> None:
        """Count and trace one protocol violation on this link."""
        self.protocol_errors += 1
        self._m_proto.inc()
        self.tracer.emit(
            self.sim.now, f"{self.scope}.protocol_error",
            why=why, **self._labels,
        )


class ServiceBase:
    """The listen/accept-loop/unlisten lifecycle every service shares.

    ``start()`` is callable again after ``stop()``: the listener
    re-registers and whatever durable state the subclass keeps is served
    to reconnecting clients — the stop/start durability contract the
    :class:`~repro.ft.services.ServiceSupervisor` relies on.

    Subclasses implement :meth:`_serve` (one generator per accepted
    connection, spawned supervised) or override :meth:`on_accept`, and
    may hook :meth:`on_start` / :meth:`on_stop` for extra service loops
    and teardown.  ``metric_ns`` names the service's metric/trace
    namespace for protocol-error accounting (``<ns>.protocol_errors`` /
    ``<ns>.protocol_error``).
    """

    metric_ns = "svc"
    #: raw (non-tuple) wire payloads accepted as framed by ``_read_record``
    payload_types: tuple = ()

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        name: str,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.fabric = fabric
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else Metrics()
        self._m_proto = self.metrics.counter(
            f"{self.metric_ns}.protocol_errors", server=name
        )
        self._acceptor: Optional[Acceptor] = None
        self._procs: list = []
        self._conns: list[StreamEnd] = []

    # -- lifecycle ---------------------------------------------------------
    @property
    def listening(self) -> bool:
        """Is the service currently accepting connections?"""
        return self._acceptor is not None

    def start(self) -> None:
        """Register the listener and start accepting connections.

        Callable again after :meth:`stop`: the listener re-registers and
        the subclass's durable state is served to reconnecting clients.
        """
        self.listen()
        self.run_accept()
        self.on_start()

    def listen(self) -> None:
        """Register the fabric listener (phase one of :meth:`start`).

        Split from :meth:`run_accept` for components that must claim
        their name early but begin accepting later (the V2 daemon
        listens before recovery, accepts after)."""
        self._acceptor = self.fabric.listen(self.name, self.host)

    def run_accept(self) -> None:
        """Spawn the accept loop (phase two of :meth:`start`)."""
        self._spawn(self._accept_loop(self._acceptor), f"{self.name}.accept")

    def stop(self, cause: Any = "svc-crash") -> None:
        """Service-level crash: drop the listener and every connection.

        Durable state (owned by the subclass) survives — only in-flight
        requests and unacknowledged pushes are lost, which clients must
        retry or re-push.
        """
        if self._acceptor is not None:
            self.fabric.unlisten(self.name, self._acceptor)
            self._acceptor = None
        procs, self._procs = self._procs, []
        for p in procs:
            p.kill()
        conns, self._conns = self._conns, []
        for end in conns:
            if not end.stream.dead:
                end.stream.break_both(cause)
        self.on_stop(cause)

    def on_start(self) -> None:
        """Hook: spawn extra service loops (killed again by ``stop``)."""

    def on_stop(self, cause: Any) -> None:
        """Hook: reset volatile (non-durable) per-incarnation state."""

    # -- accepting ---------------------------------------------------------
    def _accept_loop(self, acceptor: Acceptor):
        while True:
            end, hello = yield acceptor.accept()
            self._conns.append(end)
            self.on_accept(end, hello)

    def on_accept(self, end: StreamEnd, hello: Any) -> None:
        """Handle one accepted connection (default: spawn ``_serve``)."""
        self._spawn(
            self._serve(end, hello), f"{self.name}.serve({hello})",
            supervised=True,
        )

    def _serve(self, end: StreamEnd, hello: Any):
        raise NotImplementedError  # pragma: no cover - subclass contract

    # -- helpers -----------------------------------------------------------
    def _spawn(self, gen, name: str, supervised: bool = False):
        """Spawn a service process tracked for :meth:`stop` teardown."""
        p = self.sim.spawn(gen, name=name, supervised=supervised)
        self.host.register(p)
        self._procs.append(p)
        return p

    def _protocol_error(self, why: str) -> None:
        """Count and trace one wire-protocol violation."""
        self._m_proto.inc()
        self.tracer.emit(
            self.sim.now, f"{self.metric_ns}.protocol_error",
            server=self.name, why=why,
        )

    def on_ping(self, end: StreamEnd, msg: tuple) -> None:
        """Hook: a client heartbeat arrived on ``end`` (before the PONG).

        ``msg`` is ``("PING", epoch, seq, t_sent)``.  The dispatcher's
        control listener uses this as its liveness signal."""

    def _read_record(self, end: StreamEnd) -> Generator[Future, Any, Any]:
        """Next well-formed record from a client: skips in-flight
        segments, rejects (counts + traces) unframed garbage.
        Heartbeat PINGs are answered in place (PONG echoing the
        client's timestamp) and reported via :meth:`on_ping`."""
        while True:
            _, msg = yield end.read()
            if msg is None:
                continue  # an in-flight segment of a chunked transfer
            if type(msg) is tuple and len(msg) == 4 and msg[0] == "PING":
                self.on_ping(end, msg)
                yield from end.write(24, ("PONG", msg[1], msg[2], msg[3]))
                continue
            if not framed(msg, self.payload_types):
                self._protocol_error(
                    f"unframed record of type {type(msg).__name__}"
                )
                continue
            return msg
