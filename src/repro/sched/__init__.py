"""The checkpoint-scheduling policy study of Section 4.6.2."""

from .policies import POLICY_NAMES, Adaptive, RoundRobin, make_policy
from .schemes import SCHEMES, Scheme, scheme
from .simulator import SchedOutcome, simulate

__all__ = [
    "Adaptive",
    "POLICY_NAMES",
    "RoundRobin",
    "make_policy",
    "SCHEMES",
    "Scheme",
    "scheme",
    "SchedOutcome",
    "simulate",
]
