"""Checkpoint-ordering policies for the §4.6.2 study."""

from __future__ import annotations


import numpy as np

__all__ = ["RoundRobin", "Adaptive", "POLICY_NAMES", "make_policy"]


class RoundRobin:
    """The paper's baseline: cycle through the nodes.

    "The main advantage of the round-robin algorithm is its lack of
    communication between the scheduler and the nodes. Its main problem
    comes from the asymmetry of some communication schemes."
    """

    name = "round_robin"

    def __init__(self, n: int) -> None:
        self.n = n
        self._next = 0

    def pick(self, logged: np.ndarray, sent: np.ndarray, recv: np.ndarray) -> int:
        """Next node to checkpoint."""
        node = self._next
        self._next = (self._next + 1) % self.n
        return node


class Adaptive:
    """The paper's adaptive policy.

    "considering the ratio 'amount of received messages' over 'amount of
    sent messages' for each computing node. It computes a scheduling
    following a decreasing order of this ratio across the nodes."

    The policy schedules whole *cycles*: at the start of each cycle it
    sorts the nodes by decreasing received-over-sent ratio and orders the
    checkpoints in that sequence.  Heavy receivers go first — their
    checkpoints garbage-collect the payload copies their senders hold —
    and heavy senders go last, by which point their logs have been
    collected and their images are small.  On a symmetric scheme the
    order degenerates to round-robin (the "never worse" half of the
    paper's claim); on an asynchronous broadcast it avoids ever moving
    the root's giant log (the "up to n times better" half).
    """

    name = "adaptive"

    def __init__(self, n: int) -> None:
        self.n = n
        self._queue: list[int] = []

    def pick(self, logged: np.ndarray, sent: np.ndarray, recv: np.ndarray) -> int:
        """Next node to checkpoint (cycle sorted by recv/sent ratio)."""
        if not self._queue:
            ratio = recv / np.maximum(sent, 1.0)
            # the schedule "does not have to be fair" (§4.6.2): nodes that
            # receive nothing gain nothing from a checkpoint — their logs
            # are freed by their *receivers'* checkpoints — and hauling
            # their images (proportional to the emitted bytes) is pure
            # waste.  Keep only the receivers, in decreasing-ratio order.
            useful = ratio > 0
            if not useful.any():
                useful[:] = True
            order = np.argsort(-ratio, kind="stable")
            self._queue = [int(i) for i in order if useful[i]]
        return self._queue.pop(0)


POLICY_NAMES = ("round_robin", "adaptive")


def make_policy(name: str, n: int):
    """Instantiate a policy by name (round_robin or adaptive)."""
    if name == "round_robin":
        return RoundRobin(n)
    if name == "adaptive":
        return Adaptive(n)
    raise ValueError(f"unknown policy {name!r}")
