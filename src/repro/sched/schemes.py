"""Communication schemes for the checkpoint-scheduling study (§4.6.2).

The paper: "We have built a simulator and have compared the two policies
with classical communication schemes (point to point, synchronous all to
all, broadcasts and reduces)."  A scheme is a matrix of steady-state
traffic rates: ``rate[j, i]`` bytes/s flow from node j to node i — every
such byte is retained in j's sender-based log until *i* checkpoints
(garbage collection removes, on each sender, the copies destined to the
checkpointed receiver).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Scheme", "SCHEMES", "scheme"]


@dataclass(frozen=True)
class Scheme:
    """Steady-state pairwise traffic of one communication pattern."""

    name: str
    rate: np.ndarray  # rate[j, i]: bytes/s logged on j, destined to i

    @property
    def n(self) -> int:
        """Number of computing nodes in the scheme."""
        return self.rate.shape[0]

    def send_rate(self) -> np.ndarray:
        """Per-node bytes/s logged (summed over destinations)."""
        return self.rate.sum(axis=1)

    def recv_rate(self) -> np.ndarray:
        """Per-node bytes/s received (summed over senders)."""
        return self.rate.sum(axis=0)


def point_to_point(n: int, rate: float = 1e6) -> Scheme:
    """Ring of symmetric pairwise exchanges."""
    m = np.zeros((n, n))
    for j in range(n):
        m[j, (j + 1) % n] = rate
        m[j, (j - 1) % n] = rate
    return Scheme("point_to_point", m)


def all_to_all(n: int, rate: float = 1e6) -> Scheme:
    """Synchronous all-to-all: perfectly symmetric."""
    m = np.full((n, n), rate)
    np.fill_diagonal(m, 0.0)
    return Scheme("all_to_all", m)


def broadcast(n: int, rate: float = 1e6) -> Scheme:
    """Asynchronous broadcast from a flat root: the pathological case.

    The root's log grows (n-1) times faster than anything else; a fair
    round-robin scheduler garbage-collects it only piecemeal and hauls
    its giant image once per cycle, while the adaptive policy (highest
    received-over-sent ratio first) keeps checkpointing the receivers —
    which is what actually frees the root's log.
    """
    m = np.zeros((n, n))
    m[0, 1:] = rate
    return Scheme("broadcast", m)


def reduce_(n: int, rate: float = 1e6) -> Scheme:
    """Flat reduce to a root: every leaf logs its contributions."""
    m = np.zeros((n, n))
    m[1:, 0] = rate
    return Scheme("reduce", m)


SCHEMES = {
    "point_to_point": point_to_point,
    "all_to_all": all_to_all,
    "broadcast": broadcast,
    "reduce": reduce_,
}


def scheme(name: str, n: int, rate: float = 1e6) -> Scheme:
    """Build the named scheme for ``n`` nodes at ``rate`` bytes/s."""
    return SCHEMES[name](n, rate)
