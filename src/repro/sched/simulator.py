"""The checkpoint-scheduling simulator of Section 4.6.2.

Continuous checkpointing over an abstract traffic model: the scheduler
always has one checkpoint in flight; a checkpoint of node *i*

* transfers an image of ``footprint + L_i`` bytes at the checkpoint
  bandwidth (``L_i`` — i's own sender-based log — is serialized into the
  image, which is the traffic the paper wants to minimize: "Checkpointing
  the communication daemon induces a traffic proportional to the size of
  the emitted messages");
* afterwards garbage-collects, on every sender j, the copies destined to
  i (``pending[j, i] = 0``).

Metrics per policy/scheme: checkpoint bytes moved per second (the
bandwidth utilization of the paper's comparison), and the peak and mean
per-node log occupancy.  The paper's finding — "the adaptive algorithm
never provides a worse scheduling (w.r.t. bandwidth utilization) and
often provides better (up to n times better, n being the number of
computing nodes, for asynchronous broadcast)" — is reproduced by the
accompanying benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .policies import make_policy
from .schemes import Scheme

__all__ = ["SchedOutcome", "simulate"]


@dataclass(frozen=True)
class SchedOutcome:
    """Aggregate result of one (scheme, policy) simulation."""

    scheme: str
    policy: str
    n: int
    horizon: float
    checkpoints: int
    ckpt_bytes: float  # total image bytes moved
    ckpt_bandwidth: float  # image bytes per second (the paper's metric)
    peak_log: float  # max per-node log occupancy observed
    mean_log: float  # time-averaged mean per-node occupancy


def simulate(
    scheme: Scheme,
    policy_name: str,
    horizon: float = 600.0,
    ckpt_bw: float = 11.3e6,
    footprint: float = 8e6,
    min_gap: float = 1.0,
) -> SchedOutcome:
    """Run continuous checkpointing under ``policy_name`` for ``horizon`` s."""
    n = scheme.n
    policy = make_policy(policy_name, n)
    pending = np.zeros((n, n))  # pending[j, i]: bytes logged on j for i
    sent_total = np.zeros(n)
    recv_total = np.zeros(n)
    now = 0.0
    ckpt_bytes = 0.0
    checkpoints = 0
    peak_log = 0.0
    log_integral = 0.0

    while now < horizon:
        logged = pending.sum(axis=1)
        target = policy.pick(logged, sent_total, recv_total)
        image = footprint + logged[target]
        duration = max(min_gap, image / ckpt_bw)
        # traffic accumulates while the image is being pushed
        pending += scheme.rate * duration
        sent_total += scheme.send_rate() * duration
        recv_total += scheme.recv_rate() * duration
        now += duration
        occupancy = pending.sum(axis=1)
        peak_log = max(peak_log, float(occupancy.max()))
        log_integral += float(occupancy.mean()) * duration
        # the checkpoint completes: image moved, receiver's copies freed
        ckpt_bytes += image
        checkpoints += 1
        pending[:, target] = 0.0

    return SchedOutcome(
        scheme=scheme.name,
        policy=policy_name,
        n=n,
        horizon=now,
        checkpoints=checkpoints,
        ckpt_bytes=ckpt_bytes,
        ckpt_bandwidth=ckpt_bytes / now,
        peak_log=peak_log,
        mean_log=log_integral / now,
    )
