"""Multi-job serving: a gang-scheduling control plane over one cluster.

``repro serve --jobs plan.json`` (or the programmatic
:class:`ControlPlane` API) runs many MPI jobs concurrently on a single
shared simulated cluster, with fair-share admission between tenants,
all-or-nothing gang placement, per-job namespaces on the shared
event-logger and checkpoint-store deployments, and per-job fault
isolation — one job's rank kill recovers inside that job while its
neighbours keep running, with clean audits to prove it.
"""

from __future__ import annotations

from typing import Optional

from .namespace import JobNamespace, TraceRouter
from .plan import JobSpec, load_plan, resolve_fault, resolve_program
from .plane import ControlPlane, JobHandle, Tenant

__all__ = [
    "ControlPlane",
    "JobHandle",
    "JobNamespace",
    "JobSpec",
    "Tenant",
    "TraceRouter",
    "load_plan",
    "resolve_fault",
    "resolve_program",
    "run_plan",
]


def run_plan(
    path: str,
    cfg=None,
    seed: int = 0,
    capacity: Optional[int] = None,
    svc_slots: Optional[int] = None,
    trace: bool = False,
    limit: Optional[float] = None,
) -> tuple[ControlPlane, list[JobHandle]]:
    """Run a plan file to completion; returns the plane and its handles.

    Jobs enter the admission queue at their ``at`` times; the plane
    drains every one of them (``limit`` bounds total simulated seconds).
    Call :meth:`ControlPlane.finish` on the returned plane for the
    multi-tenant summary.
    """
    from ..runtime.config import DEFAULT_TESTBED

    tenants, jobs = load_plan(path)
    plane = ControlPlane(
        cfg if cfg is not None else DEFAULT_TESTBED,
        seed=seed, capacity=capacity, svc_slots=svc_slots,
        trace=trace, tenants=tenants,
    )
    handles = [plane.submit(spec, at=spec.at) for spec in jobs]
    plane.drain(limit=limit)
    return plane, handles
