"""``repro serve``: run a multi-job plan and report per-job/per-tenant.

The argparse wiring lives in :mod:`repro.cli`; this module is the
command body, kept here so the serving logic and its reporting stay
next to the control plane they drive.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Callable

from . import run_plan

__all__ = ["cmd_serve"]


def cmd_serve(
    args: argparse.Namespace,
    store_cfg: Callable,
    format_table: Callable,
) -> int:
    """Run the plan; exit 1 if any job's audit reported violations."""
    from ..runtime.config import DEFAULT_TESTBED

    cfg = store_cfg(args, DEFAULT_TESTBED)
    plane, handles = run_plan(
        args.jobs, cfg=cfg, seed=args.seed,
        capacity=args.capacity, svc_slots=args.svc_slots, limit=args.limit,
    )
    job_rows: list[list[Any]] = []
    job_docs: list[dict[str, Any]] = []
    violations = 0
    for h in handles:
        res = h.result
        verdict = res.audit.verdict if res.audit is not None else "-"
        if res.audit is not None:
            violations += len(res.audit.violations)
        job_rows.append([
            h.job_id, res.extras["tenant"], res.device, res.nprocs,
            round(h.wait_s or 0.0, 4), round(res.elapsed, 4),
            res.restarts, verdict,
        ])
        job_docs.append({
            "job": h.job_id,
            "tenant": res.extras["tenant"],
            "device": res.device,
            "nranks": res.nprocs,
            "wait_s": h.wait_s,
            "elapsed_s": res.elapsed,
            "restarts": res.restarts,
            "timed_out": bool(res.extras.get("timed_out")),
            "audit": verdict,
        })
    print(format_table(
        ["job", "tenant", "device", "ranks", "wait s", "elapsed s",
         "restarts", "audit"],
        job_rows,
    ))
    summary = plane.finish()
    tenant_rows = [
        [name, t["weight"], t["completed"], t["served_ranks"]]
        for name, t in summary["tenants"].items()
    ]
    print()
    print(format_table(
        ["tenant", "weight", "completed", "ranks served"], tenant_rows
    ))
    print(
        f"{summary['completed']}/{summary['jobs']} jobs in "
        f"{summary['elapsed']:.2f} simulated s; "
        f"{summary['timeouts']} timeouts, {violations} audit violations"
    )
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({"summary": summary, "jobs": job_docs}, fh, indent=2)
        print(f"wrote summary to {args.json_out}")
    return 1 if violations else 0
