"""Per-job identity over shared infrastructure.

One control plane runs many jobs over a single simulated cluster, a
single fabric name table, and shared event-logger / checkpoint-store
deployments.  Everything those share is keyed, and the key is the
:class:`JobNamespace`:

* **fabric names** — each job sees the fabric through a
  :class:`~repro.runtime.fabric.ScopedFabric` that prefixes every
  service name with ``j<id>/`` except the shared ones (the plane's EL
  shards and store replicas), so two dispatchers both listening on
  ``"dispatcher"`` land on different names instead of silently stealing
  each other's listeners;
* **server-side state** — the EL and store servers key their state by
  whatever opaque "rank" value the client sent; the namespace's
  :meth:`~JobNamespace.key` turns a job's rank ``r`` into the tuple
  ``("j<id>", r)`` so co-resident jobs' events, manifests and GC floors
  never collide (and a finished job's keys can be evicted precisely);
* **traces** — the shared servers emit onto the *cluster* tracer with
  tuple-keyed ranks; the :class:`TraceRouter` translates those back to
  bare ranks and forwards each record into the owning job's private
  tracer, so per-job auditors and MTTR attribution see exactly the
  stream a dedicated deployment would have produced.
"""

from __future__ import annotations

from typing import Any, Optional

from ..runtime.fabric import Fabric, ScopedFabric
from ..simnet.trace import Tracer

__all__ = ["JobNamespace", "TraceRouter"]


class JobNamespace:
    """The identity of one job on the shared cluster."""

    def __init__(self, job_id: int) -> None:
        self.job_id = job_id
        #: opaque tag carried in server-side keys ("j3")
        self.tag = f"j{job_id}"
        #: fabric-name prefix ("j3/") — also the job's RNG-stream prefix
        self.prefix = f"{self.tag}/"

    def key(self, rank: int) -> tuple:
        """The rank's identity on shared EL/store services."""
        return (self.tag, rank)

    def fabric_view(self, fabric: Fabric, shared: frozenset) -> ScopedFabric:
        """The job's view of the shared fabric (``shared`` passes through)."""
        return ScopedFabric(fabric, self.prefix, shared=shared)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobNamespace({self.tag})"


class TraceRouter:
    """Demultiplex shared-service trace events into per-job tracers.

    The shared EL and store servers emit onto the cluster tracer with
    the namespaced tuple keys in their ``rank`` field.  The router
    subscribes to exactly those kinds, translates the tuple back to the
    job's bare rank, and re-emits into the owning job's tracer — which
    is where that job's online auditor and (when tracing) its retained
    records live.  ``store.gc`` carries no rank (a sweep may free many
    jobs' garbage at once) and is broadcast to every registered job:
    each auditor checks the dropped digests against *its own* manifests,
    so a sweep of job A's chunks can never raise a violation in job B.
    """

    #: the shared-service kinds worth routing (everything else a job
    #: needs is emitted by its own components, directly onto its tracer)
    KINDS = frozenset({"el.store", "el.download", "store.commit", "store.gc"})

    def __init__(self, tracer: Tracer) -> None:
        self._cluster_tracer = tracer
        self._jobs: dict[str, Tracer] = {}
        tracer.subscribe(self._route, kinds=self.KINDS)

    def register(self, tag: str, tracer: Tracer) -> None:
        """Start routing ``tag``'s shared-service events to ``tracer``."""
        self._jobs[tag] = tracer

    def unregister(self, tag: str) -> None:
        """Stop routing for a finished job."""
        self._jobs.pop(tag, None)

    def close(self) -> None:
        """Detach from the cluster tracer (plane shutdown)."""
        self._cluster_tracer.unsubscribe(self._route)
        self._jobs.clear()

    def _route(self, time: float, kind: str, fields: dict) -> None:
        if kind == "store.gc":
            for tracer in self._jobs.values():
                tracer.emit(time, kind, **fields)
            return
        rank = fields.get("rank")
        job: Optional[Any] = None
        if isinstance(rank, tuple) and len(rank) == 2:
            job = self._jobs.get(rank[0])
            if job is not None:
                fields = dict(fields)
                fields["rank"] = rank[1]
        if job is not None:
            job.emit(time, kind, **fields)
