"""Job specifications and serve plans.

A :class:`JobSpec` is everything the control plane needs to run one job:
workload, rank count, device, tenant, optional checkpointing and fault
schedule, and a per-job simulated-time budget.  A *plan* is a JSON file
describing tenants (with fair-share weights) and a list of jobs with
submit times — the input of ``repro serve --jobs plan.json``:

.. code-block:: json

    {
      "tenants": {"alpha": 3, "beta": 1},
      "jobs": [
        {"workload": "token_ring", "nranks": 4, "device": "v2",
         "tenant": "alpha", "at": 0.0, "checkpointing": true,
         "fault": {"kind": "kill", "rank": 1, "at": 5.0}}
      ]
    }

A bare JSON list is accepted as a plan with a single default tenant.
Workloads resolve by name — ``token_ring``, ``pingpong`` or any NAS
kernel (``cg``/``mg``/``ft``/``lu``/``bt``/``sp``, with ``klass``) — or
a spec built programmatically may carry the program callable directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from ..ft.failure import ExplicitFaults, RandomFaults

__all__ = ["JobSpec", "load_plan", "resolve_program", "resolve_fault"]


@dataclass
class JobSpec:
    """One job as submitted to the control plane."""

    workload: Union[str, Callable]  # name or the program generator itself
    nranks: int
    device: str = "p4"  # "p4" | "v2"
    tenant: str = "default"
    klass: str = "T"  # NAS class when the workload is a kernel name
    params: dict[str, Any] = field(default_factory=dict)
    checkpointing: bool = False
    ckpt_interval: float = 30.0
    fault: Optional[Any] = None  # dict (from JSON) or a FaultPlan object
    at: float = 0.0  # submit time within a plan run
    limit: Optional[float] = None  # sim-seconds budget (cfg default if None)
    trace: bool = False  # retain this job's trace records
    audit: bool = True  # attach the online protocol auditor

    def __post_init__(self) -> None:
        if self.device not in ("p4", "v2"):
            raise ValueError(
                f"serve supports devices p4/v2, not {self.device!r}"
            )
        if self.nranks < 1:
            raise ValueError("a job needs at least one rank")
        if self.fault is not None and self.device != "v2":
            raise ValueError("fault injection requires the v2 device")


def resolve_program(spec: JobSpec) -> tuple[Callable, dict[str, Any]]:
    """The (program, params) pair a spec's workload names."""
    if callable(spec.workload):
        return spec.workload, dict(spec.params)
    name = spec.workload
    if name == "token_ring":
        from ..workloads import token_ring

        params = {"rounds": 20, "nbytes": 4096}
        params.update(spec.params)
        return token_ring, params
    if name == "pingpong":
        from ..workloads import pingpong

        return pingpong, dict(spec.params)
    from ..workloads import nas

    if name in nas.KERNELS:
        params = {"klass": spec.klass}
        params.update(spec.params)
        return nas.KERNELS[name].program, params
    raise ValueError(f"unknown workload {name!r}")


def resolve_fault(spec: JobSpec) -> Optional[Any]:
    """The spec's fault plan (dicts from JSON become plan objects)."""
    fault = spec.fault
    if fault is None or not isinstance(fault, dict):
        return fault
    kind = fault.get("kind", "kill")
    if kind == "kill":
        return ExplicitFaults(
            schedule=[(float(fault.get("at", 1.0)), int(fault.get("rank", 0)))]
        )
    if kind == "explicit":
        return ExplicitFaults(
            schedule=[(float(t), int(r)) for t, r in fault["schedule"]]
        )
    if kind == "random":
        return RandomFaults(
            interval=float(fault.get("interval", 10.0)),
            count=int(fault.get("count", 1)),
            seed=int(fault.get("seed", 0)),
            first_at=fault.get("first_at"),
        )
    raise ValueError(f"unknown fault kind {kind!r}")


_SPEC_KEYS = frozenset(JobSpec.__dataclass_fields__)


def load_plan(path: str) -> tuple[dict[str, float], list[JobSpec]]:
    """Parse a plan file into (tenant weights, job specs)."""
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        tenants: dict[str, float] = {}
        raw_jobs = doc
    else:
        tenants = {
            str(name): float(w) for name, w in doc.get("tenants", {}).items()
        }
        raw_jobs = doc.get("jobs", [])
    jobs = []
    for i, raw in enumerate(raw_jobs):
        unknown = set(raw) - _SPEC_KEYS
        if unknown:
            raise ValueError(f"job {i}: unknown keys {sorted(unknown)}")
        jobs.append(JobSpec(**raw))
    for spec in jobs:
        tenants.setdefault(spec.tenant, 1.0)
    return tenants, jobs
