"""The gang-scheduling control plane: many jobs, one shared cluster.

A :class:`ControlPlane` owns one simulated cluster and runs a stream of
MPI jobs over it concurrently:

* **admission queue + gang scheduler** — a job launches only when *all*
  its ranks (plus, for v2 jobs, one service host for its dispatcher and
  checkpoint scheduler) fit in the shared pools; never a partial gang.
  Among tenants the queue is fair-share — the tenant with the lowest
  rank-weighted service per unit weight goes first — and FIFO within a
  tenant.  A head job that cannot fit does not let later jobs of its
  tenant leapfrog it, and once it has starved past
  ``cfg.serve_starve_s`` the plane reserves draining capacity for it
  instead of admitting smaller jobs around it.
* **shared services, namespaced state** — every job talks to the same
  event-logger shards and checkpoint-store replicas, but under its
  :class:`~repro.serve.namespace.JobNamespace`: fabric names are
  prefixed per job, and EL/store keys (including GC floors) carry the
  job tag, so checkpoints, logged events and garbage collection never
  cross job boundaries.  A finished job's keys are evicted.
* **isolated supervision** — each v2 job gets its own
  :class:`~repro.ft.dispatcher.Dispatcher` with its own tracer, metrics
  registry and online auditor, so a rank kill in one job is detected,
  restarted and audited entirely inside that job while co-resident jobs
  keep running.

The plane itself is reachable over the wire: a
:class:`~repro.runtime.session.ServiceBase` listener on ``plane:0``
accepts ``SUBMIT``/``WAIT`` records, mirroring the programmatic
:meth:`ControlPlane.submit` / :meth:`ControlPlane.wait` API.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..ft.ckpt_scheduler import CheckpointScheduler
from ..ft.deploy import deploy_el_groups, deploy_store
from ..ft.dispatcher import Dispatcher
from ..ft.failure import ComposedFaults
from ..ft.services import ServiceSupervisor
from ..mpi.api import MPI
from ..obs.collect import fold_cluster, fold_device_stats
from ..obs.registry import Metrics
from ..runtime.cluster import Cluster
from ..runtime.config import DEFAULT_TESTBED, TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.results import JobResult
from ..runtime.session import ServiceBase
from ..simnet.kernel import Future, all_of, any_of
from ..simnet.streams import Disconnected
from ..simnet.trace import Tracer
from .namespace import JobNamespace, TraceRouter
from .plan import JobSpec, resolve_fault, resolve_program

__all__ = ["ControlPlane", "JobHandle", "Tenant"]


class Tenant:
    """One fair-share principal: a weight, a FIFO queue, service served."""

    def __init__(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {name!r} needs a positive weight")
        self.name = name
        self.weight = weight
        self.queue: deque[JobHandle] = deque()
        #: rank-weighted service admitted so far (the fair-share deficit
        #: denominator: next goes the tenant minimizing served/weight)
        self.served = 0.0
        self.completed = 0


class JobHandle:
    """The submitter's view of one job: identity, state, completion."""

    def __init__(self, job_id: int, spec: JobSpec, done: Future) -> None:
        self.job_id = job_id
        self.spec = spec
        self.done = done  # resolves with the JobResult
        self.state = "created"  # created -> queued -> running -> done
        self.submit_t: Optional[float] = None
        self.start_t: Optional[float] = None
        self.result: Optional[JobResult] = None

    @property
    def wait_s(self) -> Optional[float]:
        """Queue wait (admission minus submission), once admitted."""
        if self.submit_t is None or self.start_t is None:
            return None
        return self.start_t - self.submit_t


class _PlaneListener(ServiceBase):
    """The plane's wire API: SUBMIT a job spec, WAIT on a job id."""

    metric_ns = "plane"

    def __init__(self, plane: "ControlPlane", *args: Any, **kw: Any) -> None:
        super().__init__(*args, **kw)
        self.plane = plane

    def _serve(self, end, hello):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return
            kind = msg[0]
            if kind == "SUBMIT":
                spec = msg[1]
                if isinstance(spec, dict):
                    spec = JobSpec(**spec)
                handle = self.plane.submit(spec)
                try:
                    yield from end.write(64, ("JOB", handle.job_id))
                except Disconnected:
                    return
            elif kind == "WAIT":
                handle = self.plane.handles.get(msg[1])
                if handle is None:
                    reply = ("ERR", f"unknown job {msg[1]!r}")
                else:
                    if not handle.done.done:
                        yield handle.done
                    reply = ("DONE", handle.job_id, handle.state)
                try:
                    yield from end.write(64, reply)
                except Disconnected:
                    return
            else:
                self._protocol_error(f"plane got {kind!r}")
                return


class ControlPlane:
    """Run many jobs concurrently over one shared simulated cluster."""

    def __init__(
        self,
        cfg: TestbedConfig = DEFAULT_TESTBED,
        seed: int = 0,
        capacity: Optional[int] = None,
        svc_slots: Optional[int] = None,
        trace: bool = False,
        tenants: Optional[dict[str, float]] = None,
    ) -> None:
        self.cfg = cfg
        self.capacity = capacity if capacity is not None else cfg.serve_capacity
        self.svc_slots = (
            svc_slots if svc_slots is not None else cfg.serve_svc_slots
        )
        self.cluster = Cluster(cfg, seed=seed, trace=trace)
        self.sim = self.cluster.sim
        self.fabric = Fabric(self.cluster)
        #: the plane's own registry (admission/tenant metrics; never a
        #: job's — each job gets a private Metrics at admission)
        self.metrics = self.cluster.metrics

        # host pools: CN slots for rank gangs, service hosts for per-job
        # dispatchers + checkpoint schedulers (v2 jobs take one each)
        self.plane_host = self.cluster.add_aux("plane")
        self._free_cn = [
            self.cluster.add_cn(f"cn{i}") for i in range(self.capacity)
        ]
        self._free_svc = [
            self.cluster.add_aux(f"svc{i}") for i in range(self.svc_slots)
        ]

        # shared services, deployed once (same topology helpers as a
        # dedicated run_v2_job deployment)
        self.supervisor = ServiceSupervisor(
            self.sim, cfg,
            tracer=self.cluster.tracer, metrics=self.cluster.metrics,
        )
        n_shards = max(1, cfg.el_servers)
        el_hosts = [
            self.cluster.add_aux(f"el-host{s}") for s in range(n_shards)
        ]
        self.el_groups, self.loggers = deploy_el_groups(
            self.cluster, self.fabric, cfg, el_hosts,
            n_shards=n_shards, supervisor=self.supervisor,
        )
        cs_hosts = [
            self.cluster.add_aux("cs-host" if i == 0 else f"cs-host{i}")
            for i in range(max(1, cfg.ckpt_servers))
        ]
        self.cs_names, self.servers = deploy_store(
            self.cluster, self.fabric, cfg, cs_hosts,
            supervisor=self.supervisor,
        )
        #: fabric names every job may address un-prefixed
        self.shared_names = (
            frozenset(n for g in self.el_groups for n in g)
            | frozenset(self.cs_names)
            | frozenset({"plane:0"})
        )
        self.router = TraceRouter(self.cluster.tracer)
        self.listener = _PlaneListener(
            self, self.sim, self.plane_host, self.fabric, "plane:0",
            tracer=self.cluster.tracer, metrics=self.metrics,
        )
        self.listener.start()

        self.tenants: dict[str, Tenant] = {}
        for name, weight in (tenants or {}).items():
            self.add_tenant(name, weight)
        self.handles: dict[int, JobHandle] = {}
        self._next_id = 0
        self._running: set[int] = set()
        m = self.metrics
        self._m_running = m.gauge("serve.running")
        self._m_queued = m.gauge("serve.queued")
        self._finished = False

    # -- tenants -------------------------------------------------------------
    def add_tenant(self, name: str, weight: float = 1.0) -> Tenant:
        """Register a fair-share principal (idempotent on the name)."""
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self.tenants[name] = Tenant(name, weight)
        return tenant

    # -- submission ----------------------------------------------------------
    def submit(self, spec: JobSpec, at: Optional[float] = None) -> JobHandle:
        """Queue a job (optionally at a future simulated time)."""
        if self._finished:
            raise RuntimeError("the control plane has been finished")
        if spec.nranks > self.capacity:
            raise ValueError(
                f"job needs {spec.nranks} ranks; the pool has {self.capacity}"
            )
        handle = JobHandle(
            self._next_id, spec, Future(self.sim, name=f"job{self._next_id}")
        )
        self._next_id += 1
        self.handles[handle.job_id] = handle
        if at is None or at <= self.sim.now:
            self._enqueue(handle)
        else:
            self.sim.at(at, lambda: self._enqueue(handle))
        return handle

    def _enqueue(self, handle: JobHandle) -> None:
        spec = handle.spec
        tenant = self.add_tenant(spec.tenant)
        handle.submit_t = self.sim.now
        handle.state = "queued"
        tenant.queue.append(handle)
        self.metrics.counter("serve.submitted", tenant=tenant.name).inc()
        self.cluster.tracer.emit(
            self.sim.now, "serve.submit",
            job=handle.job_id, tenant=tenant.name, nranks=spec.nranks,
        )
        self._pump()

    # -- the gang scheduler --------------------------------------------------
    def _fits(self, spec: JobSpec) -> bool:
        if len(self._free_cn) < spec.nranks:
            return False
        return spec.device != "v2" or len(self._free_svc) >= 1

    def _pick(self) -> Optional[Tenant]:
        """The tenant whose head job is admitted next (None = nothing).

        Tenants with queued work are visited in fair-share order —
        lowest ``served / weight`` first, name as the tie-break — and
        within a tenant strictly FIFO (its head blocks its later jobs).
        If a more-deserving tenant's head does not fit *and* has starved
        past ``serve_starve_s``, nothing behind it is admitted either:
        the capacity now draining is reserved for it.
        """
        backlog = [t for t in self.tenants.values() if t.queue]
        backlog.sort(key=lambda t: (t.served / t.weight, t.name))
        for tenant in backlog:
            head = tenant.queue[0]
            if self._fits(head.spec):
                return tenant
            starved_s = self.sim.now - (head.submit_t or 0.0)
            if starved_s > self.cfg.serve_starve_s:
                return None
        return None

    def _pump(self) -> None:
        while True:
            tenant = self._pick()
            if tenant is None:
                break
            self._admit(tenant, tenant.queue.popleft())
        self._m_queued.set(
            float(sum(len(t.queue) for t in self.tenants.values())),
            self.sim.now,
        )

    def _admit(self, tenant: Tenant, handle: JobHandle) -> None:
        spec = handle.spec
        cn_hosts = [self._free_cn.pop() for _ in range(spec.nranks)]
        svc_host = self._free_svc.pop() if spec.device == "v2" else None
        tenant.served += spec.nranks
        handle.start_t = self.sim.now
        handle.state = "running"
        self._running.add(handle.job_id)
        m = self.metrics
        m.counter("serve.admitted", tenant=tenant.name).inc()
        m.counter("serve.ranks_admitted", tenant=tenant.name).inc(spec.nranks)
        m.histogram("serve.wait_s", tenant=tenant.name).observe(
            handle.wait_s or 0.0
        )
        self._m_running.set(float(len(self._running)), self.sim.now)
        self.cluster.tracer.emit(
            self.sim.now, "serve.admit",
            job=handle.job_id, tenant=tenant.name, nranks=spec.nranks,
            wait_s=handle.wait_s,
        )
        driver = (
            self._run_v2(handle, cn_hosts, svc_host)
            if spec.device == "v2"
            else self._run_p4(handle, cn_hosts)
        )
        proc = self.sim.spawn(driver, name=f"serve.job{handle.job_id}")
        self.plane_host.register(proc)

    # -- job drivers ---------------------------------------------------------
    def _run_v2(self, handle: JobHandle, cn_hosts: list, svc_host):
        sim = self.sim
        spec = handle.spec
        ns = JobNamespace(handle.job_id)
        program, params = resolve_program(spec)
        job_tracer = Tracer(enabled=spec.trace)
        job_metrics = Metrics()
        auditor = None
        if spec.audit:
            from ..obs.audit import ProtocolAuditor

            auditor = ProtocolAuditor().attach(job_tracer)
        self.router.register(ns.tag, job_tracer)
        fabric = ns.fabric_view(self.fabric, self.shared_names)

        scheduler = None
        sched_name = None
        if spec.checkpointing:
            scheduler = CheckpointScheduler(
                sim, svc_host, fabric, self.cfg, spec.nranks,
                interval=spec.ckpt_interval,
                rng=self.cluster.rng.stream(f"{ns.prefix}ckpt-sched"),
                tracer=job_tracer, metrics=job_metrics,
                cs_names=tuple(self.cs_names),
                key_of=ns.key,
            )
            scheduler.start()
            sched_name = "sched:0"  # scoped per job by the fabric view

        keys = [ns.key(r) for r in range(spec.nranks)]

        def wipe_logs() -> None:
            # a global restart wipes *this job's* logged history only
            for el in self.loggers:
                el.evict(keys)
            for srv in self.servers:
                srv.evict(keys)
            if scheduler is not None:
                scheduler.reset_store_state()

        dispatcher = Dispatcher(
            self.cluster, fabric, svc_host, program, params, spec.nranks,
            cn_hosts, [], self.el_groups, sched_name, list(self.cs_names),
            wipe_logs=wipe_logs,
            tracer=job_tracer, metrics=job_metrics,
            job_key=ns.key, rng_ns=ns.prefix,
        )
        dispatcher.start()

        fault = resolve_fault(spec)
        if fault is not None:
            if isinstance(fault, (list, tuple)):
                fault = ComposedFaults(tuple(fault))
            proc = sim.spawn(
                fault.driver(dispatcher.fault_context()),
                name=f"{ns.tag}.faults",
            )
            svc_host.register(proc)

        limit = spec.limit if spec.limit is not None else self.cfg.serve_job_limit
        yield any_of(sim, [dispatcher.done, sim.timeout(limit)])
        timed_out = not dispatcher.done.done

        # teardown, in dependency order: resolve `done` first so every
        # crash callback / monitor loop guard sees a finished job, then
        # withdraw the control listener, then reclaim the machines
        dispatcher.done.resolve_if_pending(None)
        dispatcher.stop("job-complete")
        if scheduler is not None:
            scheduler.stop("job-complete")
        for host in cn_hosts:
            host.crash()  # kills any leftover daemon processes
            host.on_crash.clear()  # stale dispatcher callbacks
            host.restart()
        # stop routing before evicting: the reclaim's store.gc sweep is
        # end-of-job bookkeeping, not part of the job's audited history
        self.router.unregister(ns.tag)
        for el in self.loggers:
            el.evict(keys)
        for srv in self.servers:
            srv.evict(keys)

        device_stats = {
            st.rank: st.mpi.device.stats
            for st in dispatcher.states
            if st.mpi is not None
        }
        stats = fold_device_stats(job_metrics, device_stats, "v2")
        report = auditor.finish() if auditor is not None else None
        results = dispatcher.done.value if not timed_out else []
        start_t = handle.start_t or 0.0
        elapsed = (
            max(st.finish_time for st in dispatcher.states) - start_t
            if not timed_out
            else sim.now - start_t
        )
        result = JobResult(
            nprocs=spec.nranks,
            device="v2",
            elapsed=elapsed,
            results=results or [],
            timers={
                st.rank: st.mpi.timer
                for st in dispatcher.states
                if st.mpi is not None
            },
            tracer=job_tracer,
            stats=stats,
            restarts=dispatcher.total_restarts,
            checkpoints=int(job_metrics.total("ckpt.images")),
            metrics=job_metrics,
            audit=report,
            extras={
                "job_id": handle.job_id,
                "tenant": spec.tenant,
                "namespace": ns.tag,
                "timed_out": timed_out,
                "wait_s": handle.wait_s,
                "global_restarts": dispatcher.global_restarts,
                "mttr": self._mttr(job_tracer, spec),
                "faults": fault,
            },
        )
        self._release(handle, result, cn_hosts, svc_host)

    def _run_p4(self, handle: JobHandle, cn_hosts: list):
        from ..devices.p4 import P4Device
        from ..runtime.mpirun import rank_main

        sim = self.sim
        spec = handle.spec
        ns = JobNamespace(handle.job_id)
        program, params = resolve_program(spec)
        job_tracer = Tracer(enabled=spec.trace)
        job_metrics = Metrics()
        auditor = None
        if spec.audit:
            from ..obs.audit import ProtocolAuditor

            auditor = ProtocolAuditor().attach(job_tracer)

        # the P4 driver's process cannot service receptions while pushing
        for host in cn_hosts:
            host.full_duplex = False
        n = spec.nranks
        devices = [
            P4Device(sim, self.cfg, r, n, cn_hosts[r], tracer=job_tracer)
            for r in range(n)
        ]
        ends: list[dict[int, Any]] = [dict() for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                s = self.cluster.connect(cn_hosts[i], cn_hosts[j])
                ends[i][j] = s.end_for(cn_hosts[i])
                ends[j][i] = s.end_for(cn_hosts[j])
        for r in range(n):
            devices[r].wire(ends[r])
        mpis = [
            MPI(sim, r, n, devices[r], tracer=job_tracer) for r in range(n)
        ]
        procs = []
        for r in range(n):
            p = sim.spawn(
                rank_main(mpis[r], program, params), name=f"{ns.tag}.rank{r}"
            )
            cn_hosts[r].register(p)
            procs.append(p)

        done = all_of(sim, [p.done for p in procs])
        limit = spec.limit if spec.limit is not None else self.cfg.serve_job_limit
        yield any_of(sim, [done, sim.timeout(limit)])
        timed_out = not done.done

        # reclaim: crash kills straggler processes and breaks the job's
        # streams; restart hands the machine back clean
        for host in cn_hosts:
            host.crash()
            host.on_crash.clear()
            host.restart()
            host.full_duplex = True

        stats = fold_device_stats(
            job_metrics, {r: devices[r].stats for r in range(n)}, "p4"
        )
        report = auditor.finish() if auditor is not None else None
        outcome = done.value if not timed_out else [(sim.now, None)] * n
        result = JobResult(
            nprocs=n,
            device="p4",
            elapsed=max(t for t, _ in outcome) - (handle.start_t or 0.0),
            results=[res for _, res in outcome],
            timers={r: mpis[r].timer for r in range(n)},
            tracer=job_tracer,
            stats=stats,
            metrics=job_metrics,
            audit=report,
            extras={
                "job_id": handle.job_id,
                "tenant": spec.tenant,
                "namespace": ns.tag,
                "timed_out": timed_out,
                "wait_s": handle.wait_s,
            },
        )
        self._release(handle, result, cn_hosts, None)

    @staticmethod
    def _mttr(job_tracer: Tracer, spec: JobSpec) -> Optional[Any]:
        if not spec.trace:
            return None
        from ..obs.timeline import RecoveryAttribution

        return RecoveryAttribution.from_trace(job_tracer)

    # -- completion ----------------------------------------------------------
    def _release(
        self,
        handle: JobHandle,
        result: JobResult,
        cn_hosts: list,
        svc_host,
    ) -> None:
        self._free_cn.extend(cn_hosts)
        if svc_host is not None:
            self._free_svc.append(svc_host)
        self._running.discard(handle.job_id)
        tenant = self.tenants[handle.spec.tenant]
        tenant.completed += 1
        m = self.metrics
        m.counter("serve.completed", tenant=tenant.name).inc()
        if result.extras.get("timed_out"):
            m.counter("serve.timeouts", tenant=tenant.name).inc()
        if result.audit is not None and not result.audit.clean:
            m.counter("serve.audit_violations", tenant=tenant.name).inc(
                len(result.audit.violations)
            )
        m.histogram("serve.job_s", tenant=tenant.name).observe(result.elapsed)
        self._m_running.set(float(len(self._running)), self.sim.now)
        self.cluster.tracer.emit(
            self.sim.now, "serve.done",
            job=handle.job_id, tenant=tenant.name,
            elapsed=result.elapsed, restarts=result.restarts,
            timed_out=bool(result.extras.get("timed_out")),
        )
        handle.result = result
        handle.state = "done"
        handle.done.resolve(result)
        self._pump()

    # -- blocking API --------------------------------------------------------
    def wait(
        self, handle: JobHandle, limit: Optional[float] = None
    ) -> JobResult:
        """Drive the simulation until ``handle``'s job completes."""
        return self.sim.run_until(handle.done, limit=limit)

    def drain(self, limit: Optional[float] = None) -> list[JobResult]:
        """Drive the simulation until every submitted job completes."""
        pending = all_of(
            self.sim, [h.done for h in self.handles.values()]
        )
        return self.sim.run_until(pending, limit=limit)

    def finish(self) -> dict[str, Any]:
        """Stop the plane and report the multi-tenant summary."""
        if not self._finished:
            self._finished = True
            self.listener.stop("plane-shutdown")
            self.router.close()
            fold_cluster(self.cluster)
        m = self.metrics
        violations = int(m.total("serve.audit_violations", default=0.0))
        return {
            "jobs": self._next_id,
            "completed": sum(t.completed for t in self.tenants.values()),
            "timeouts": int(m.total("serve.timeouts", default=0.0)),
            "audit_violations": violations,
            "tenants": {
                name: {
                    "weight": t.weight,
                    "served_ranks": t.served,
                    "completed": t.completed,
                    "queued": len(t.queue),
                }
                for name, t in sorted(self.tenants.items())
            },
            "elapsed": self.sim.now,
        }
