"""Discrete-event simulation substrate: kernel, hosts, network, streams.

This package replaces the paper's physical testbed (32-node Athlon cluster
on switched 100 Mbit/s Ethernet): everything above it -- the MPI stack, the
channel devices, the fault-tolerance runtime -- is implemented exactly as
the paper describes, but runs on simulated time.
"""

from .kernel import (
    DeadlockError,
    Future,
    Gate,
    Killed,
    Process,
    Queue,
    Semaphore,
    SimError,
    Simulator,
    all_of,
    any_of,
    wait,
)
from .network import DegradeWindow, LinkConfig, Network, PartitionWindow
from .node import Host, HostDown
from .rng import RngRegistry
from .streams import DEFAULT_WINDOW, Disconnected, Stream, StreamEnd
from .trace import Tracer, TraceRecord

__all__ = [
    "DeadlockError",
    "Future",
    "Gate",
    "Killed",
    "Process",
    "Queue",
    "Semaphore",
    "SimError",
    "Simulator",
    "all_of",
    "any_of",
    "wait",
    "LinkConfig",
    "Network",
    "PartitionWindow",
    "DegradeWindow",
    "Host",
    "HostDown",
    "RngRegistry",
    "DEFAULT_WINDOW",
    "Disconnected",
    "Stream",
    "StreamEnd",
    "TraceRecord",
    "Tracer",
]
