"""Discrete-event simulation kernel.

The kernel executes *simulated processes* — plain Python generators that
``yield`` :class:`Future` objects when they block.  Time advances only
through scheduled events; the simulation is fully deterministic given the
order of scheduling calls (ties on the event heap are broken by a
monotonically increasing sequence number).

Conventions used throughout the code base:

* a *primitive* blocking operation returns a :class:`Future`; a process
  blocks on it with ``value = yield fut``;
* a *composite* blocking operation is a generator function and is invoked
  with ``value = yield from op(...)``.

Processes can be killed abruptly (modelling a node crash): a killed
process is never resumed again and its completion future fails with
:class:`Killed`.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Killed",
    "Future",
    "Process",
    "Simulator",
    "Queue",
    "Gate",
    "Semaphore",
    "wait",
    "all_of",
    "any_of",
]


class SimError(Exception):
    """Base class for simulation-kernel errors."""


class DeadlockError(SimError):
    """The event queue drained while some process was still blocked."""


class Killed(SimError):
    """Raised into the completion future of a killed process."""


class Future:
    """A one-shot completion token.

    A future is resolved with a value exactly once (or failed with an
    exception exactly once).  Callbacks registered with
    :meth:`add_done_callback` fire synchronously at resolution time, in
    registration order.
    """

    __slots__ = ("_sim", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    # -- inspection ------------------------------------------------------
    @property
    def done(self) -> bool:
        """Has the future been resolved or failed?"""
        return self._done

    @property
    def value(self) -> Any:
        """The result; raises the stored exception for failed futures."""
        if not self._done:
            raise SimError(f"future {self.name!r} not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The stored exception, or None (also while pending)."""
        return self._exc if self._done else None

    # -- resolution ------------------------------------------------------
    def resolve(self, value: Any = None) -> None:
        """Complete the future with ``value`` (exactly once)."""
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception (exactly once)."""
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exc = exc
        self._fire()

    def resolve_if_pending(self, value: Any = None) -> bool:
        """Resolve unless already done; returns whether it resolved now."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def fail_if_pending(self, exc: BaseException) -> bool:
        """Fail unless already done; returns whether it failed now."""
        if self._done:
            return False
        self.fail(exc)
        return True

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` at resolution (immediately if already done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self.name!r} {state}>"


def wait(fut: Future) -> Generator[Future, Any, Any]:
    """Composite form of blocking on a future (``yield from wait(f)``)."""
    value = yield fut
    return value


def all_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """A future resolved (with the list of values) when all inputs are.

    Fails with the first failure among the inputs.
    """
    futures = list(futures)
    out = Future(sim, name="all_of")
    remaining = len(futures)
    if remaining == 0:
        out.resolve([])
        return out

    state = {"left": remaining}

    def on_done(f: Future) -> None:
        if out.done:
            return
        if f.exception is not None:
            out.fail(f.exception)
            return
        state["left"] -= 1
        if state["left"] == 0:
            out.resolve([fut.value for fut in futures])

    for f in futures:
        f.add_done_callback(on_done)
    return out


def any_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """A future resolved with ``(index, value)`` of the first completion."""
    futures = list(futures)
    out = Future(sim, name="any_of")
    if not futures:
        raise ValueError("any_of() requires at least one future")

    def make_cb(i: int) -> Callable[[Future], None]:
        def on_done(f: Future) -> None:
            if out.done:
                return
            if f.exception is not None:
                out.fail(f.exception)
            else:
                out.resolve((i, f.value))

        return on_done

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out


class Process:
    """Drives a generator as a simulated process.

    The generator may ``yield`` futures (blocking) and ``return`` a final
    value, which resolves :attr:`done`.  Unhandled exceptions fail
    :attr:`done`; unless the process was spawned with ``supervised=True``
    the simulator records it as a crash and re-raises at the end of
    :meth:`Simulator.run`.
    """

    __slots__ = ("sim", "gen", "name", "alive", "done", "supervised", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Future, Any, Any],
        name: str,
        supervised: bool = False,
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.supervised = supervised
        self.done = Future(sim, name=f"{name}.done")
        self._waiting_on: Optional[Future] = None
        sim._processes.append(self)
        sim.after(0.0, lambda: self._step(None, None))

    def kill(self) -> None:
        """Abruptly terminate the process (models a crash).

        The generator is closed, the completion future fails with
        :class:`Killed` and the process is never resumed again.
        """
        if not self.alive:
            return
        self.alive = False
        self._waiting_on = None
        try:
            self.gen.close()
        except Exception:  # pragma: no cover - close() misbehaving apps
            pass
        self.done.fail_if_pending(Killed(self.name))

    # -- stepping --------------------------------------------------------
    def _resume(self, fut: Future) -> None:
        if not self.alive or self.sim._stopped:
            return
        if fut.exception is not None:
            self._step(None, fut.exception)
        else:
            self._step(fut._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # per-service CPU attribution: when a kernel probe is installed
        # and the current dispatch is a sampled one (probe.sampling), the
        # resume is timed under the process's name; the disabled path
        # pays one attribute load and a None check
        probe = self.sim._probe
        if probe is not None and probe.sampling:
            t0 = perf_counter()
            self._step_inner(value, exc)
            probe.step_done(self.name, perf_counter() - t0)
        else:
            self._step_inner(value, exc)

    def _step_inner(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        while True:
            try:
                if exc is not None:
                    yielded = self.gen.throw(exc)
                else:
                    yielded = self.gen.send(value)
            except StopIteration as stop:
                self.alive = False
                self.done.resolve_if_pending(stop.value)
                return
            except Killed as killed:
                self.alive = False
                self.done.fail_if_pending(killed)
                return
            except BaseException as err:
                self.alive = False
                self.done.fail_if_pending(err)
                if not self.supervised:
                    self.sim._crashes.append((self, err))
                return
            if not isinstance(yielded, Future):
                err2 = SimError(
                    f"process {self.name!r} yielded {type(yielded).__name__}, "
                    "expected a Future"
                )
                self.alive = False
                self.done.fail_if_pending(err2)
                self.sim._crashes.append((self, err2))
                return
            if yielded._done:
                # an already-resolved future: continue the process inline,
                # iteratively.  The callback path below would recurse
                # (add_done_callback fires synchronously when done), and a
                # process draining a long backlog of immediately-ready
                # futures — a queue refilled during a connection outage,
                # say — would exhaust the interpreter stack.
                if not self.alive or self.sim._stopped:
                    return
                if yielded._exc is not None:
                    value, exc = None, yielded._exc
                else:
                    value, exc = yielded._value, None
                continue
            self._waiting_on = yielded
            yielded.add_done_callback(self._resume)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._crashes: list[tuple[Process, BaseException]] = []
        self._stopped = False
        self._probe: Optional[Any] = None

    # -- instrumentation -------------------------------------------------
    def set_probe(self, probe: Optional[Any]) -> None:
        """Install (or clear, with ``None``) the kernel probe.

        A probe observes the event loop at dispatch granularity:
        ``probe.dispatch(time, fn, qsize)`` is called *instead of*
        ``fn()`` for every popped event (the probe must invoke ``fn``).
        While the probe has ``probe.sampling`` set, process resumes are
        timed and reported via ``probe.step_done(name, dt)`` for
        per-service CPU attribution.  With no probe installed the run
        loops below are exactly the uninstrumented ones — dispatch costs
        nothing — which is the property ``benchmarks/bench_kernel.py``
        fences at 2%.
        """
        self._probe = probe

    # -- scheduling ------------------------------------------------------
    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def timeout(self, delay: float, value: Any = None) -> Future:
        """A future that resolves ``delay`` seconds from now."""
        fut = Future(self, name=f"timeout({delay:g})")
        self.after(delay, lambda: fut.resolve_if_pending(value))
        return fut

    def future(self, name: str = "") -> Future:
        """Allocate an unresolved future."""
        return Future(self, name=name)

    def spawn(
        self,
        gen: Generator[Future, Any, Any],
        name: str = "proc",
        supervised: bool = False,
    ) -> Process:
        """Start a new simulated process from a generator."""
        return Process(self, gen, name=name, supervised=supervised)

    def sleep(self, delay: float) -> Generator[Future, Any, None]:
        """Composite sleep: ``yield from sim.sleep(dt)``."""
        yield self.timeout(delay)

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or simulated ``until`` passes.

        Re-raises the first unsupervised process crash, if any.
        """
        if self._probe is not None:
            return self._run_probed(until)
        while self._heap and not self._stopped:
            time, _, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            self.now = time
            fn()
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def run_until(self, fut: Future, limit: Optional[float] = None) -> Any:
        """Run until ``fut`` resolves; raise :class:`DeadlockError` if the
        event queue drains first, or :class:`SimError` if ``limit`` simulated
        seconds pass first."""
        if self._probe is not None:
            return self._run_until_probed(fut, limit)
        while not fut.done and self._heap and not self._stopped:
            time, _, fn = heapq.heappop(self._heap)
            if limit is not None and time > limit:
                raise SimError(
                    f"simulated time limit {limit} exceeded waiting for "
                    f"{fut.name!r} (now={time})"
                )
            self.now = time
            fn()
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if not fut.done:
            raise DeadlockError(
                f"event queue drained; {fut.name!r} never resolved; "
                f"blocked: {self.blocked_processes()}"
            )
        return fut.value

    # probed twins of the two run loops: identical control flow, with
    # every dispatch routed through the probe.  Kept separate so the
    # default loops above stay byte-for-byte the uninstrumented ones.
    def _run_probed(self, until: Optional[float]) -> None:
        probe = self._probe
        while self._heap and not self._stopped:
            time, _, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._heap)
            self.now = time
            probe.dispatch(time, fn, len(self._heap))
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def _run_until_probed(self, fut: Future, limit: Optional[float]) -> Any:
        probe = self._probe
        while not fut.done and self._heap and not self._stopped:
            time, _, fn = heapq.heappop(self._heap)
            if limit is not None and time > limit:
                raise SimError(
                    f"simulated time limit {limit} exceeded waiting for "
                    f"{fut.name!r} (now={time})"
                )
            self.now = time
            probe.dispatch(time, fn, len(self._heap))
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if not fut.done:
            raise DeadlockError(
                f"event queue drained; {fut.name!r} never resolved; "
                f"blocked: {self.blocked_processes()}"
            )
        return fut.value

    def stop(self) -> None:
        """Stop the event loop at the current time."""
        self._stopped = True

    # -- diagnostics -----------------------------------------------------
    def blocked_processes(self) -> list[str]:
        """Human-readable list of alive processes and their waits."""
        out = []
        for p in self._processes:
            if p.alive and p._waiting_on is not None:
                out.append(f"{p.name} on {p._waiting_on.name or '<future>'}")
        return out


class Queue:
    """An unbounded FIFO mailbox usable by simulated processes.

    ``put`` is immediate; ``get`` blocks until an item is available.
    A queue can be *broken* (e.g. the peer crashed): pending and future
    ``get`` calls then fail with the supplied exception.
    """

    def __init__(self, sim: Simulator, name: str = "queue") -> None:
        self.sim = sim
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Future] = []
        self._watchers: list[Future] = []
        self._broken: Optional[BaseException] = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item (never blocks); wakes one getter."""
        if self._broken is not None:
            return  # messages to a broken queue are dropped
        if self._getters:
            self._getters.pop(0).resolve(item)
        else:
            self._items.append(item)
            watchers, self._watchers = self._watchers, []
            for fut in watchers:
                fut.resolve_if_pending(None)

    def get(self) -> Future:
        """A future for the next item (primitive form: ``yield q.get()``)."""
        fut = Future(self.sim, name=f"{self.name}.get")
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._items:
            fut.resolve(self._items.pop(0))
        else:
            self._getters.append(fut)
        return fut

    def try_get(self) -> tuple[bool, Any]:
        """Nonblocking get: (ok, item)."""
        if self._items:
            return True, self._items.pop(0)
        return False, None

    def when_nonempty(self) -> Future:
        """A future resolved once an item is available (without taking it).

        After it resolves, the caller should re-check with :meth:`try_get`
        (another consumer may have raced it in the same tick).
        """
        fut = Future(self.sim, name=f"{self.name}.nonempty")
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._items:
            fut.resolve(None)
        else:
            self._watchers.append(fut)
        return fut

    def peek_all(self) -> list[Any]:
        """Snapshot of the queued items (not consumed)."""
        return list(self._items)

    def break_(self, exc: BaseException) -> None:
        """Fail all pending and future gets (peer disconnected/crashed)."""
        self._broken = exc
        getters, self._getters = self._getters, []
        for fut in getters:
            fut.fail_if_pending(exc)
        watchers, self._watchers = self._watchers, []
        for fut in watchers:
            fut.fail_if_pending(exc)


class Gate:
    """A level-triggered condition: processes wait until the gate opens."""

    def __init__(self, sim: Simulator, opened: bool = False, name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._open = opened
        self._waiters: list[Future] = []

    @property
    def is_open(self) -> bool:
        """Is the gate currently open?"""
        return self._open

    def open(self) -> None:
        """Open the gate; wakes every waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.resolve_if_pending(None)

    def close(self) -> None:
        """Close the gate; future waiters block."""
        self._open = False

    def waitfor(self) -> Future:
        """A future resolved when (or while) the gate is open."""
        fut = Future(self.sim, name=f"{self.name}.wait")
        if self._open:
            fut.resolve(None)
        else:
            self._waiters.append(fut)
        return fut


class Semaphore:
    """A counting semaphore with FIFO acquire ordering."""

    def __init__(self, sim: Simulator, tokens: int, name: str = "sem") -> None:
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        self.sim = sim
        self.name = name
        self._tokens = tokens
        self._waiters: list[tuple[int, Future]] = []
        self._observers: list[tuple[int, Future]] = []
        self._broken: Optional[BaseException] = None

    @property
    def tokens(self) -> int:
        """Currently available tokens."""
        return self._tokens

    def acquire(self, n: int = 1) -> Future:
        """A future resolved once ``n`` tokens have been taken."""
        fut = Future(self.sim, name=f"{self.name}.acquire({n})")
        if self._broken is not None:
            fut.fail(self._broken)
        elif not self._waiters and self._tokens >= n:
            self._tokens -= n
            fut.resolve(None)
        else:
            self._waiters.append((n, fut))
        return fut

    def release(self, n: int = 1) -> None:
        """Return ``n`` tokens; wakes waiters FIFO."""
        self._tokens += n
        while self._waiters and self._tokens >= self._waiters[0][0]:
            need, fut = self._waiters.pop(0)
            self._tokens -= need
            fut.resolve_if_pending(None)
        if self._observers:
            still = []
            for need, fut in self._observers:
                if self._tokens >= need:
                    fut.resolve_if_pending(None)
                else:
                    still.append((need, fut))
            self._observers = still

    def break_(self, exc: BaseException) -> None:
        """Fail all pending and future acquires (resource vanished)."""
        self._broken = exc
        waiters, self._waiters = self._waiters, []
        for _, fut in waiters:
            fut.fail_if_pending(exc)
        observers, self._observers = self._observers, []
        for _, fut in observers:
            fut.fail_if_pending(exc)

    def when_available(self, n: int = 1) -> Future:
        """A future resolved once ``n`` tokens exist (without taking them).

        The caller must re-check (and possibly wait again): tokens may be
        taken by another process in the same tick.
        """
        fut = Future(self.sim, name=f"{self.name}.avail({n})")
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._tokens >= n:
            fut.resolve(None)
        else:
            self._observers.append((n, fut))
        return fut
