"""Discrete-event simulation kernel.

The kernel executes *simulated processes* — plain Python generators that
``yield`` :class:`Future` objects when they block.  Time advances only
through scheduled events; the simulation is fully deterministic given the
order of scheduling calls (ties on the event heap are broken by a
monotonically increasing sequence number).

Conventions used throughout the code base:

* a *primitive* blocking operation returns a :class:`Future`; a process
  blocks on it with ``value = yield fut``;
* a *composite* blocking operation is a generator function and is invoked
  with ``value = yield from op(...)``.

Processes can be killed abruptly (modelling a node crash): a killed
process is never resumed again and its completion future fails with
:class:`Killed`.

Flat events
-----------

Heap entries are flat ``(time, seq, slot, a, b)`` tuples.  ``slot``
selects the handler; the hot slots are inlined in the run loops so the
common events cost no closure allocation and no attribute lookups:

* ``EV_CALL`` (0) — legacy callable: run ``a()``.  Everything scheduled
  through :meth:`Simulator.at`/:meth:`Simulator.after` uses this slot.
* ``EV_RESOLVE`` (1) — resolve :class:`Future` ``a`` with value ``b``
  unless it is already done (the :meth:`Simulator.timeout` fast path).
* ``EV_START`` (2) — bootstrap :class:`Process` ``a`` (first ``_step``).
* ``EV_WAKE`` (3) — resume :class:`Process` ``a`` with value ``b`` (the
  :meth:`Simulator.pause` sleep fast path: no future, no callbacks).

Subsystems register additional slots with :func:`register_slot`; the run
loops dispatch those through the module-level handler table with a plain
list index.  The module flag :data:`FLAT_DISPATCH` (mirrored per-instance
as ``Simulator.flat``) selects between the flat fast path and the legacy
closure forms at every call site; both schedule exactly one heap entry at
exactly the same point, so event order — ``(time, seq)`` for every
event — is byte-identical between the two modes.  The parity test in
``tests/test_kernel_parity.py`` holds us to that.
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "DeadlockError",
    "Killed",
    "Future",
    "Process",
    "Simulator",
    "Queue",
    "Gate",
    "Semaphore",
    "wait",
    "all_of",
    "any_of",
    "EV_CALL",
    "EV_RESOLVE",
    "EV_START",
    "EV_WAKE",
    "FLAT_DISPATCH",
    "SLOT_NAMES",
    "register_slot",
    "run_slot",
]


class SimError(Exception):
    """Base class for simulation-kernel errors."""


class DeadlockError(SimError):
    """The event queue drained while some process was still blocked."""


class Killed(SimError):
    """Raised into the completion future of a killed process."""


# -- the flat-event slot table ------------------------------------------

#: Run-loop fast path on (the default) vs. legacy closure scheduling
#: (the reference twin the parity test compares against).  Read once per
#: Simulator at construction; flip the module global *before* building a
#: simulator to select a mode.
FLAT_DISPATCH = True

EV_CALL = 0  # a: callable        b: unused   — run a()
EV_RESOLVE = 1  # a: Future      b: value    — a.resolve_if_pending(b)
EV_START = 2  # a: Process       b: unused   — first step of a process
EV_WAKE = 3  # a: Process        b: value    — resume a sleeping process

#: slot → human label, used by the kernel profiler to classify flat
#: events (``KernelProfiler.dispatch_flat``) without touching handlers
SLOT_NAMES: dict[int, str] = {
    EV_CALL: "call",
    EV_RESOLVE: "timeout",
    EV_START: "proc.start",
    EV_WAKE: "sleep",
}

# Slots 0-3 are inlined in the run loops; their table entries exist only
# so ``run_slot`` (the profiler's sampled-execution helper) can execute
# any slot uniformly.
_SLOT_HANDLERS: list[Optional[Callable[[Any, Any], None]]] = [
    None, None, None, None,
]


def register_slot(handler: Callable[[Any, Any], None], name: str) -> int:
    """Register a subscriber slot; returns its index for ``sched`` calls.

    ``handler(a, b)`` runs when a ``(time, seq, slot, a, b)`` event with
    this slot is dispatched.  Registration happens at module import time
    (e.g. ``simnet.streams`` registers its segment-arrival slot), so slot
    indices are stable for the life of the interpreter.
    """
    slot = len(_SLOT_HANDLERS)
    _SLOT_HANDLERS.append(handler)
    SLOT_NAMES[slot] = name
    return slot


def run_slot(slot: int, a: Any, b: Any) -> None:
    """Execute one flat event outside the run loop (profiler sampling)."""
    if slot == 1:
        if not a._done:
            a._done = True
            a._value = b
            a._fire()
    elif slot == 3:
        a._step(b, None)
    elif slot == 2:
        a._step(None, None)
    elif slot == 0:
        a()
    else:
        _SLOT_HANDLERS[slot](a, b)


class _Pause:
    """The singleton sleep token (see :meth:`Simulator.pause`)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<pause>"


_PAUSE = _Pause()


class Future:
    """A one-shot completion token.

    A future is resolved with a value exactly once (or failed with an
    exception exactly once).  Callbacks registered with
    :meth:`add_done_callback` fire synchronously at resolution time, in
    registration order.
    """

    __slots__ = ("_sim", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        # None | a single callable | a list of callables: most futures
        # take exactly one callback (the waiting process), so the common
        # case allocates no list
        self._callbacks: Any = None
        self.name = name

    # -- inspection ------------------------------------------------------
    @property
    def done(self) -> bool:
        """Has the future been resolved or failed?"""
        return self._done

    @property
    def value(self) -> Any:
        """The result; raises the stored exception for failed futures."""
        if not self._done:
            raise SimError(f"future {self.name!r} not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The stored exception, or None (also while pending)."""
        return self._exc if self._done else None

    # -- resolution ------------------------------------------------------
    def resolve(self, value: Any = None) -> None:
        """Complete the future with ``value`` (exactly once)."""
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, exc: BaseException) -> None:
        """Complete the future with an exception (exactly once)."""
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exc = exc
        self._fire()

    def resolve_if_pending(self, value: Any = None) -> bool:
        """Resolve unless already done; returns whether it resolved now."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def fail_if_pending(self, exc: BaseException) -> bool:
        """Fail unless already done; returns whether it failed now."""
        if self._done:
            return False
        self.fail(exc)
        return True

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Run ``fn(self)`` at resolution (immediately if already done)."""
        if self._done:
            fn(self)
            return
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = fn
        elif cbs.__class__ is list:
            cbs.append(fn)
        else:
            self._callbacks = [cbs, fn]

    def _fire(self) -> None:
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            if callbacks.__class__ is list:
                for fn in callbacks:
                    fn(self)
            else:
                callbacks(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Future {self.name!r} {state}>"


def wait(fut: Future) -> Generator[Future, Any, Any]:
    """Composite form of blocking on a future (``yield from wait(f)``)."""
    value = yield fut
    return value


def all_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """A future resolved (with the list of values) when all inputs are.

    Fails with the first failure among the inputs.
    """
    futures = list(futures)
    out = Future(sim, name="all_of")
    remaining = len(futures)
    if remaining == 0:
        out.resolve([])
        return out

    state = {"left": remaining}

    def on_done(f: Future) -> None:
        if out.done:
            return
        if f.exception is not None:
            out.fail(f.exception)
            return
        state["left"] -= 1
        if state["left"] == 0:
            out.resolve([fut.value for fut in futures])

    for f in futures:
        f.add_done_callback(on_done)
    return out


def any_of(sim: "Simulator", futures: Iterable[Future]) -> Future:
    """A future resolved with ``(index, value)`` of the first completion."""
    futures = list(futures)
    out = Future(sim, name="any_of")
    if not futures:
        raise ValueError("any_of() requires at least one future")

    def make_cb(i: int) -> Callable[[Future], None]:
        def on_done(f: Future) -> None:
            if out.done:
                return
            if f.exception is not None:
                out.fail(f.exception)
            else:
                out.resolve((i, f.value))

        return on_done

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out


class Process:
    """Drives a generator as a simulated process.

    The generator may ``yield`` futures (blocking) and ``return`` a final
    value, which resolves :attr:`done`.  Unhandled exceptions fail
    :attr:`done`; unless the process was spawned with ``supervised=True``
    the simulator records it as a crash and re-raises at the end of
    :meth:`Simulator.run`.
    """

    __slots__ = (
        "sim", "gen", "name", "alive", "done", "supervised",
        "_waiting_on", "_resume_cb",
    )

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Future, Any, Any],
        name: str,
        supervised: bool = False,
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.alive = True
        self.supervised = supervised
        self.done = Future(sim, name=f"{name}.done")
        self._waiting_on: Optional[Future] = None
        # bound once: every blocking yield registers this callback, and
        # binding a method per block is measurable at CG event rates
        self._resume_cb = self._resume
        sim._processes.append(self)
        if sim.flat:
            sim.sched(sim.now, EV_START, self)
        else:
            sim.after(0.0, lambda: self._step(None, None))

    def kill(self) -> None:
        """Abruptly terminate the process (models a crash).

        The generator is closed, the completion future fails with
        :class:`Killed` and the process is never resumed again.
        """
        if not self.alive:
            return
        self.alive = False
        self._waiting_on = None
        try:
            self.gen.close()
        except Exception:  # pragma: no cover - close() misbehaving apps
            pass
        self.done.fail_if_pending(Killed(self.name))

    # -- stepping --------------------------------------------------------
    def _resume(self, fut: Future) -> None:
        if not self.alive or self.sim._stopped:
            return
        if fut._exc is not None:
            self._step(None, fut._exc)
        else:
            self._step(fut._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        # per-service CPU attribution: when a kernel probe is installed
        # and the current dispatch is a sampled one (probe.sampling), the
        # resume is timed under the process's name; the disabled path
        # pays one attribute load and a None check
        probe = self.sim._probe
        if probe is not None and probe.sampling:
            t0 = perf_counter()
            self._step_inner(value, exc)
            probe.step_done(self.name, perf_counter() - t0)
        else:
            self._step_inner(value, exc)

    def _step_inner(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        while True:
            try:
                if exc is not None:
                    yielded = self.gen.throw(exc)
                else:
                    yielded = self.gen.send(value)
            except StopIteration as stop:
                self.alive = False
                self.done.resolve_if_pending(stop.value)
                return
            except Killed as killed:
                self.alive = False
                self.done.fail_if_pending(killed)
                return
            except BaseException as err:
                self.alive = False
                self.done.fail_if_pending(err)
                if not self.supervised:
                    self.sim._crashes.append((self, err))
                return
            if yielded is _PAUSE:
                # sleep fast path: the pause call just stashed its wake
                # time/value on the simulator — push the wake event and
                # suspend, with no future and no callback registration
                sim = self.sim
                seq = sim._seq
                sim._seq = seq + 1
                heapq.heappush(
                    sim._heap,
                    (sim._pause_time, seq, 3, self, sim._pause_value),
                )
                return
            if yielded.__class__ is not Future and not isinstance(yielded, Future):
                err2 = SimError(
                    f"process {self.name!r} yielded {type(yielded).__name__}, "
                    "expected a Future"
                )
                self.alive = False
                self.done.fail_if_pending(err2)
                self.sim._crashes.append((self, err2))
                return
            if yielded._done:
                # an already-resolved future: continue the process inline,
                # iteratively.  The callback path below would recurse
                # (add_done_callback fires synchronously when done), and a
                # process draining a long backlog of immediately-ready
                # futures — a queue refilled during a connection outage,
                # say — would exhaust the interpreter stack.
                if not self.alive or self.sim._stopped:
                    return
                if yielded._exc is not None:
                    value, exc = None, yielded._exc
                else:
                    value, exc = yielded._value, None
                continue
            self._waiting_on = yielded
            yielded.add_done_callback(self._resume_cb)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a heap of flat ``(time, seq, slot, a, b)`` entries."""

    def __init__(self, flat: Optional[bool] = None) -> None:
        self.now: float = 0.0
        self.flat: bool = FLAT_DISPATCH if flat is None else flat
        self._heap: list[tuple[float, int, int, Any, Any]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._crashes: list[tuple[Process, BaseException]] = []
        self._stopped = False
        self._probe: Optional[Any] = None
        # scratch for the pause() fast path: the token is consumed by the
        # very next yield, so one slot per simulator suffices
        self._pause_time = 0.0
        self._pause_value: Any = None

    # -- instrumentation -------------------------------------------------
    def set_probe(self, probe: Optional[Any]) -> None:
        """Install (or clear, with ``None``) the kernel probe.

        A probe observes the event loop at dispatch granularity: for
        legacy callable events (slot ``EV_CALL``),
        ``probe.dispatch(time, fn, qsize)`` is called *instead of*
        ``fn()`` (the probe must invoke ``fn``); for every other slot,
        ``probe.dispatch_flat(time, slot, a, b, qsize)`` is called and
        must execute the event via :func:`run_slot`.  While the probe has
        ``probe.sampling`` set, process resumes are timed and reported
        via ``probe.step_done(name, dt)`` for per-service CPU
        attribution.  With no probe installed the run loops below are
        exactly the uninstrumented ones — dispatch costs nothing — which
        is the property ``benchmarks/bench_kernel.py`` fences at 2%.
        """
        self._probe = probe

    # -- scheduling ------------------------------------------------------
    def sched(self, time: float, slot: int, a: Any, b: Any = None) -> None:
        """Schedule a flat event ``(slot, a, b)`` at absolute ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, slot, a, b))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, 0, fn, None))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def timeout(self, delay: float, value: Any = None) -> Future:
        """A future that resolves ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        fut = Future(self, name="timeout")
        if self.flat:
            self.sched(self.now + delay, EV_RESOLVE, fut, value)
        else:
            self.at(self.now + delay, lambda: fut.resolve_if_pending(value))
        return fut

    def pause(self, delay: float, value: Any = None) -> Any:
        """Sleep token: ``value = yield sim.pause(delay)``.

        The allocation-free twin of :meth:`timeout` for the dominant
        event shape — advance simulated time, then resume the calling
        process.  The returned token must be yielded *immediately* by
        the running process (the kernel stashes the wake time on the
        simulator and the next yield consumes it); for anything fancier
        — handing the future around, racing it in ``any_of`` — use
        :meth:`timeout`.  In legacy dispatch mode this *is*
        :meth:`timeout`, so call sites stay mode-agnostic and event
        order stays byte-identical between the modes.
        """
        if self.flat:
            if delay < 0:
                raise SimError(f"negative delay {delay}")
            self._pause_time = self.now + delay
            self._pause_value = value
            return _PAUSE
        return self.timeout(delay, value)

    def future(self, name: str = "") -> Future:
        """Allocate an unresolved future."""
        return Future(self, name=name)

    def spawn(
        self,
        gen: Generator[Future, Any, Any],
        name: str = "proc",
        supervised: bool = False,
    ) -> Process:
        """Start a new simulated process from a generator."""
        return Process(self, gen, name=name, supervised=supervised)

    def sleep(self, delay: float) -> Generator[Future, Any, None]:
        """Composite sleep: ``yield from sim.sleep(dt)``."""
        yield self.pause(delay)

    # -- running ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or simulated ``until`` passes.

        Re-raises the first unsupervised process crash, if any.
        """
        if self._probe is not None:
            return self._run_probed(until)
        heap = self._heap
        pop = heapq.heappop
        handlers = _SLOT_HANDLERS
        while heap and not self._stopped:
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                break
            pop(heap)
            self.now = time
            slot = entry[2]
            a = entry[3]
            # probe is None in these loops by construction, so process
            # resumes skip _step's probe check and go straight in
            if slot == 3:
                a._step_inner(entry[4], None)
            elif slot > 3:
                handlers[slot](a, entry[4])
            elif slot == 0:
                a()
            elif slot == 1:
                if not a._done:
                    a._done = True
                    a._value = entry[4]
                    a._fire()
            else:
                a._step_inner(None, None)
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def run_until(self, fut: Future, limit: Optional[float] = None) -> Any:
        """Run until ``fut`` resolves; raise :class:`DeadlockError` if the
        event queue drains first, or :class:`SimError` if ``limit`` simulated
        seconds pass first."""
        if self._probe is not None:
            return self._run_until_probed(fut, limit)
        heap = self._heap
        pop = heapq.heappop
        handlers = _SLOT_HANDLERS
        while not fut._done and heap and not self._stopped:
            entry = pop(heap)
            time = entry[0]
            if limit is not None and time > limit:
                raise SimError(
                    f"simulated time limit {limit} exceeded waiting for "
                    f"{fut.name!r} (now={time})"
                )
            self.now = time
            slot = entry[2]
            a = entry[3]
            # probe is None in these loops by construction, so process
            # resumes skip _step's probe check and go straight in
            if slot == 3:
                a._step_inner(entry[4], None)
            elif slot > 3:
                handlers[slot](a, entry[4])
            elif slot == 0:
                a()
            elif slot == 1:
                if not a._done:
                    a._done = True
                    a._value = entry[4]
                    a._fire()
            else:
                a._step_inner(None, None)
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if not fut._done:
            raise DeadlockError(
                f"event queue drained; {fut.name!r} never resolved; "
                f"blocked: {self.blocked_processes()}"
            )
        return fut.value

    # probed twins of the two run loops: identical control flow, with
    # every dispatch routed through the probe (legacy callables through
    # ``dispatch``, flat slots through ``dispatch_flat``).  Kept separate
    # so the default loops above stay byte-for-byte the uninstrumented
    # ones.
    def _run_probed(self, until: Optional[float]) -> None:
        probe = self._probe
        heap = self._heap
        pop = heapq.heappop
        while heap and not self._stopped:
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                break
            pop(heap)
            self.now = time
            slot = entry[2]
            if slot == 0:
                probe.dispatch(time, entry[3], len(heap))
            else:
                probe.dispatch_flat(time, slot, entry[3], entry[4], len(heap))
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def _run_until_probed(self, fut: Future, limit: Optional[float]) -> Any:
        probe = self._probe
        heap = self._heap
        pop = heapq.heappop
        while not fut._done and heap and not self._stopped:
            entry = pop(heap)
            time = entry[0]
            if limit is not None and time > limit:
                raise SimError(
                    f"simulated time limit {limit} exceeded waiting for "
                    f"{fut.name!r} (now={time})"
                )
            self.now = time
            slot = entry[2]
            if slot == 0:
                probe.dispatch(time, entry[3], len(heap))
            else:
                probe.dispatch_flat(time, slot, entry[3], entry[4], len(heap))
            if self._crashes:
                proc, err = self._crashes[0]
                raise SimError(f"process {proc.name!r} crashed") from err
        if not fut._done:
            raise DeadlockError(
                f"event queue drained; {fut.name!r} never resolved; "
                f"blocked: {self.blocked_processes()}"
            )
        return fut.value

    def stop(self) -> None:
        """Stop the event loop at the current time."""
        self._stopped = True

    # -- diagnostics -----------------------------------------------------
    def blocked_processes(self) -> list[str]:
        """Human-readable list of alive processes and their waits."""
        out = []
        for p in self._processes:
            if p.alive and p._waiting_on is not None:
                out.append(f"{p.name} on {p._waiting_on.name or '<future>'}")
        return out


class Queue:
    """An unbounded FIFO mailbox usable by simulated processes.

    ``put`` is immediate; ``get`` blocks until an item is available.
    A queue can be *broken* (e.g. the peer crashed): pending and future
    ``get`` calls then fail with the supplied exception.
    """

    __slots__ = (
        "sim", "name", "_items", "_getters", "_watchers", "_broken",
        "_get_name", "_nonempty_name",
    )

    def __init__(self, sim: Simulator, name: str = "queue") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Future] = deque()
        self._watchers: list[Future] = []
        self._broken: Optional[BaseException] = None
        # precomputed once: the hot path allocates no f-strings per call
        self._get_name = f"{name}.get"
        self._nonempty_name = f"{name}.nonempty"

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item (never blocks); wakes one getter."""
        if self._broken is not None:
            return  # messages to a broken queue are dropped
        if self._getters:
            self._getters.popleft().resolve(item)
        else:
            self._items.append(item)
            if self._watchers:
                watchers, self._watchers = self._watchers, []
                for fut in watchers:
                    fut.resolve_if_pending(None)

    def get(self) -> Future:
        """A future for the next item (primitive form: ``yield q.get()``)."""
        fut = Future(self.sim, name=self._get_name)
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._items:
            fut._done = True
            fut._value = self._items.popleft()
        else:
            self._getters.append(fut)
        return fut

    def try_get(self) -> tuple[bool, Any]:
        """Nonblocking get: (ok, item); a broken queue yields nothing."""
        if self._items and self._broken is None:
            return True, self._items.popleft()
        return False, None

    def when_nonempty(self) -> Future:
        """A future resolved once an item is available (without taking it).

        After it resolves, the caller should re-check with :meth:`try_get`
        (another consumer may have raced it in the same tick).
        """
        fut = Future(self.sim, name=self._nonempty_name)
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._items:
            fut.resolve(None)
        else:
            self._watchers.append(fut)
        return fut

    def peek_all(self) -> list[Any]:
        """Snapshot of the queued items (not consumed)."""
        return list(self._items)

    def break_(self, exc: BaseException) -> None:
        """Fail all pending and future gets (peer disconnected/crashed)."""
        self._broken = exc
        getters, self._getters = self._getters, deque()
        for fut in getters:
            fut.fail_if_pending(exc)
        watchers, self._watchers = self._watchers, []
        for fut in watchers:
            fut.fail_if_pending(exc)


class Gate:
    """A level-triggered condition: processes wait until the gate opens."""

    __slots__ = ("sim", "name", "_open", "_waiters", "_wait_name")

    def __init__(self, sim: Simulator, opened: bool = False, name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._open = opened
        self._waiters: list[Future] = []
        self._wait_name = f"{name}.wait"

    @property
    def is_open(self) -> bool:
        """Is the gate currently open?"""
        return self._open

    def open(self) -> None:
        """Open the gate; wakes every waiter."""
        self._open = True
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for fut in waiters:
                fut.resolve_if_pending(None)

    def close(self) -> None:
        """Close the gate; future waiters block."""
        self._open = False

    def waitfor(self) -> Future:
        """A future resolved when (or while) the gate is open."""
        fut = Future(self.sim, name=self._wait_name)
        if self._open:
            fut._done = True
        else:
            self._waiters.append(fut)
        return fut


class Semaphore:
    """A counting semaphore with FIFO acquire ordering."""

    __slots__ = (
        "sim", "name", "_tokens", "_waiters", "_observers", "_broken",
        "_acquire_name", "_avail_name",
    )

    def __init__(self, sim: Simulator, tokens: int, name: str = "sem") -> None:
        if tokens < 0:
            raise ValueError("tokens must be >= 0")
        self.sim = sim
        self.name = name
        self._tokens = tokens
        self._waiters: deque[tuple[int, Future]] = deque()
        self._observers: list[tuple[int, Future]] = []
        self._broken: Optional[BaseException] = None
        self._acquire_name = f"{name}.acquire"
        self._avail_name = f"{name}.avail"

    @property
    def tokens(self) -> int:
        """Currently available tokens."""
        return self._tokens

    def acquire(self, n: int = 1) -> Future:
        """A future resolved once ``n`` tokens have been taken."""
        fut = Future(self.sim, name=self._acquire_name)
        if self._broken is not None:
            fut.fail(self._broken)
        elif not self._waiters and self._tokens >= n:
            self._tokens -= n
            fut._done = True
        else:
            self._waiters.append((n, fut))
        return fut

    def try_acquire(self, n: int = 1) -> bool:
        """Take ``n`` tokens now, or none: the allocation-free fast path.

        Exactly :meth:`acquire`'s synchronous-success condition (FIFO
        order respected — queued waiters refuse the shortcut), without
        building a future for it.
        """
        if (
            self._broken is not None
            or self._waiters
            or self._tokens < n
        ):
            return False
        self._tokens -= n
        return True

    def release(self, n: int = 1) -> None:
        """Return ``n`` tokens; wakes waiters FIFO."""
        self._tokens += n
        waiters = self._waiters
        while waiters and self._tokens >= waiters[0][0]:
            need, fut = waiters.popleft()
            self._tokens -= need
            fut.resolve_if_pending(None)
        if self._observers:
            still = []
            for need, fut in self._observers:
                if self._tokens >= need:
                    fut.resolve_if_pending(None)
                else:
                    still.append((need, fut))
            self._observers = still

    def break_(self, exc: BaseException) -> None:
        """Fail all pending and future acquires (resource vanished)."""
        self._broken = exc
        waiters, self._waiters = self._waiters, deque()
        for _, fut in waiters:
            fut.fail_if_pending(exc)
        observers, self._observers = self._observers, []
        for _, fut in observers:
            fut.fail_if_pending(exc)

    def when_available(self, n: int = 1) -> Future:
        """A future resolved once ``n`` tokens exist (without taking them).

        The caller must re-check (and possibly wait again): tokens may be
        taken by another process in the same tick.
        """
        fut = Future(self.sim, name=self._avail_name)
        if self._broken is not None:
            fut.fail(self._broken)
        elif self._tokens >= n:
            fut.resolve(None)
        else:
            self._observers.append((n, fut))
        return fut
