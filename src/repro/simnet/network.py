"""The switched-Ethernet network model.

The paper's testbed is a 48-port 100 Mbit/s switch: a non-blocking fabric
where only the per-port NICs serialize traffic.  A segment transfer of
``nbytes`` from host A to host B costs::

    tx_start = when A's transmit side is free
    duration = (nbytes + frame_overhead) / bandwidth + per_segment_gap
    arrival  = B's receive side free after (tx_start + wire_latency),
               plus the same duration (store-and-forward at the endpoint)

plus fixed per-segment CPU costs at both endpoints (protocol stack
traversal), which dominate small-message latency: the P4 0-byte one-way
latency of ~77 microseconds is reproduced as
``send_cpu + wire_latency + frame_time + recv_cpu``.

Loopback (A == B) transfers move at memory-copy speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .kernel import Simulator
from .node import Host, HostDown
from .trace import Tracer

__all__ = ["LinkConfig", "Network", "PartitionWindow", "DegradeWindow"]


@dataclass(frozen=True)
class LinkConfig:
    """Calibrated link parameters (defaults: the paper's Fast Ethernet)."""

    bandwidth: float = 11.42e6  # effective payload bytes/s on the wire
    wire_latency: float = 28e-6  # propagation + switch latency, seconds
    frame_overhead: int = 58  # header bytes charged per segment
    send_cpu: float = 4e-6  # per-segment NIC/DMA setup on the send side
    recv_cpu: float = 18e-6  # per-segment receiver stack traversal
    per_segment_gap: float = 4e-6  # interframe gap on the NIC
    loopback_bandwidth: float = 400e6  # same-host memcpy speed
    loopback_latency: float = 4e-6
    # wide-area parameters for Grid deployments (hosts on different sites):
    # a 2003-era inter-site path — a few ms one way, shared capacity below
    # the cluster's Fast Ethernet
    wan_latency: float = 2.5e-3
    wan_bandwidth: float = 6e6


@dataclass
class PartitionWindow:
    """A transient cut between two host groups.

    While active, segments crossing the cut are *deferred*, not lost —
    the simulated analogue of TCP retransmission riding out a switch
    hiccup: streams stay up, writers eventually stall on window credit,
    and the buffered traffic is released when the partition heals.
    """

    group_a: frozenset
    group_b: frozenset
    until: float
    healed: bool = False
    deferred: list = field(default_factory=list)

    def separates(self, a: str, b: str) -> bool:
        """Does the cut lie between hosts ``a`` and ``b``?"""
        if self.healed:
            return False
        return (a in self.group_a and b in self.group_b) or (
            a in self.group_b and b in self.group_a
        )


@dataclass
class DegradeWindow:
    """A transient service-degradation window on matching hosts.

    ``bw_factor`` divides effective bandwidth, ``latency_factor``
    multiplies wire latency, for any transfer touching one of ``hosts``
    (or every non-loopback transfer, when ``hosts`` is ``None``).
    """

    hosts: Optional[frozenset]
    bw_factor: float
    latency_factor: float
    until: float

    def matches(self, a: str, b: str, now: float) -> bool:
        if now >= self.until:
            return False
        return self.hosts is None or a in self.hosts or b in self.hosts


class Network:
    """Schedules segment transfers between hosts."""

    def __init__(
        self,
        sim: Simulator,
        link: Optional[LinkConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.link = link or LinkConfig()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.hosts: dict[str, Host] = {}
        self.bytes_moved = 0.0
        self.segments_moved = 0
        # link-level fault state (kept off the hot path: lists empty unless
        # a fault plan is actively degrading the fabric)
        self._partitions: list[PartitionWindow] = []
        self._degrades: list[DegradeWindow] = []
        self.partitions_injected = 0
        self.segments_deferred = 0
        self.links_broken = 0

    # -- topology ---------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        """Attach a host to the switch (names must be unique)."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        return self.hosts[name]

    # -- transfers --------------------------------------------------------
    def transfer(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        on_arrival: Any,
        bulk: bool = False,
        segments: int = 1,
    ) -> float:
        """Schedule a one-way frame; returns the arrival time.

        ``on_arrival`` is either a callable (legacy closure delivery) or
        a flat ``(slot, a, b)`` event tuple scheduled directly on the
        kernel heap — the zero-allocation path the streams layer uses.

        ``segments`` models a coalesced frame: one transfer call moving
        what the wire carries as N segments.  Wire time is honest — the
        payload pays ``frame_overhead`` and ``per_segment_gap`` once per
        segment, exactly as N separate transfers would — but the endpoint
        CPU (``send_cpu``/``recv_cpu``) is paid once per *call*, which is
        the syscall-batching/scatter-gather win coalescing buys.

        The caller is responsible for flow control (see ``streams``); the
        network itself never queues unboundedly per-stream because writers
        block on window credit.
        """
        if src.failed:
            raise HostDown(src.name)
        now = self.sim.now
        link = self.link
        if src is dst:
            arrival = (
                now
                + link.loopback_latency
                + nbytes / link.loopback_bandwidth
            )
            if on_arrival.__class__ is tuple:
                self.sim.sched(arrival, on_arrival[0], on_arrival[1], on_arrival[2])
            else:
                self.sim.at(arrival, on_arrival)
            return arrival

        if self._partitions:
            win = self._crossing(src.name, dst.name)
            if win is not None:
                # hold the frame at the cut; it re-enters transfer()
                # when the partition heals (and re-checks the remaining
                # cuts, so overlapping partitions compose)
                self.segments_deferred += segments
                self.tracer.emit(
                    now, "net.defer", src=src.name, dst=dst.name,
                    nbytes=nbytes, until=win.until,
                )
                win.deferred.append(
                    lambda: self._retry_deferred(
                        src, dst, nbytes, on_arrival, bulk, segments
                    )
                )
                return win.until

        same_site = src.site == dst.site
        bandwidth = (
            link.bandwidth
            if same_site
            else min(link.bandwidth, link.wan_bandwidth)
        )
        latency = link.wire_latency if same_site else link.wan_latency
        if self._degrades:
            bwf, latf = self._degradation(src.name, dst.name)
            bandwidth /= bwf
            latency *= latf
        duration = (
            (nbytes + link.frame_overhead * segments) / bandwidth
            + link.per_segment_gap * segments
        )
        coupling = nbytes if bulk else 0
        tx_start = src.reserve_tx(now + link.send_cpu, duration, coupling)
        rx_end = dst.reserve_rx(tx_start + latency, duration, coupling)
        arrival = rx_end + link.recv_cpu

        self.bytes_moved += nbytes
        self.segments_moved += segments
        if self.tracer.hot:
            self.tracer.emit(
                now, "net.xfer",
                src=src.name, dst=dst.name, nbytes=nbytes, arrival=arrival,
            )
        if on_arrival.__class__ is tuple:
            self.sim.sched(arrival, on_arrival[0], on_arrival[1], on_arrival[2])
        else:
            self.sim.at(arrival, on_arrival)
        return arrival

    def _retry_deferred(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        on_arrival: Any,
        bulk: bool,
        segments: int = 1,
    ) -> None:
        if src.failed or dst.failed:
            return  # the crash already broke the stream; the segment dies
        self.transfer(src, dst, nbytes, on_arrival, bulk=bulk, segments=segments)

    # -- link-level faults -------------------------------------------------
    def partition(
        self,
        group_a: Iterable[Host],
        group_b: Iterable[Host],
        duration: float,
    ) -> PartitionWindow:
        """Cut the fabric between two host groups for ``duration`` seconds.

        Hosts stay alive and streams stay connected; traffic crossing the
        cut is buffered and released at heal time.
        """
        names_a = frozenset(h.name for h in group_a)
        names_b = frozenset(h.name for h in group_b) - names_a
        win = PartitionWindow(names_a, names_b, self.sim.now + duration)
        self._partitions.append(win)
        self.partitions_injected += 1
        self.tracer.emit(
            self.sim.now, "net.partition",
            a=tuple(sorted(names_a)), b=tuple(sorted(names_b)),
            until=win.until,
        )
        self.sim.at(win.until, lambda: self._heal(win))
        return win

    def _heal(self, win: PartitionWindow) -> None:
        if win.healed:
            return
        win.healed = True
        if win in self._partitions:
            self._partitions.remove(win)
        self.tracer.emit(
            self.sim.now, "net.heal",
            a=tuple(sorted(win.group_a)), b=tuple(sorted(win.group_b)),
            released=len(win.deferred),
        )
        retries, win.deferred = win.deferred, []
        for retry in retries:
            retry()

    def _crossing(self, a: str, b: str) -> Optional[PartitionWindow]:
        for win in self._partitions:
            if win.separates(a, b):
                return win
        return None

    def partitioned(self, a: Host, b: Host) -> bool:
        """Is there an active cut between hosts ``a`` and ``b``?"""
        return a is not b and self._crossing(a.name, b.name) is not None

    def degrade(
        self,
        hosts: Optional[Iterable[Host]],
        duration: float,
        bw_factor: float = 1.0,
        latency_factor: float = 1.0,
    ) -> DegradeWindow:
        """Degrade links touching ``hosts`` (or all, when ``None``)."""
        names = None if hosts is None else frozenset(h.name for h in hosts)
        win = DegradeWindow(
            names, bw_factor, latency_factor, self.sim.now + duration
        )
        self._degrades.append(win)
        self.tracer.emit(
            self.sim.now, "net.degrade",
            hosts=None if names is None else tuple(sorted(names)),
            bw_factor=bw_factor, latency_factor=latency_factor,
            until=win.until,
        )
        self.sim.at(win.until, lambda: self._expire_degrade(win))
        return win

    def _expire_degrade(self, win: DegradeWindow) -> None:
        if win in self._degrades:
            self._degrades.remove(win)

    def _degradation(self, a: str, b: str) -> tuple[float, float]:
        bwf, latf = 1.0, 1.0
        now = self.sim.now
        for win in self._degrades:
            if win.matches(a, b, now):
                bwf *= win.bw_factor
                latf *= win.latency_factor
        return bwf, latf

    def break_links(
        self, a: Host, b: Optional[Host] = None, cause: Any = "link-break"
    ) -> int:
        """Forcibly break live streams of ``a`` (to ``b`` only, if given).

        Models a link reset: every affected reader/writer raises
        :class:`~repro.simnet.streams.Disconnected` exactly as if the
        peer host crashed — but both hosts stay up, so the endpoints must
        reconnect and resynchronize.  Returns the number of streams broken.
        """
        broken = 0
        for stream in list(a._streams):
            if stream.dead:
                continue
            other = stream.b.host if stream.a.host is a else stream.a.host
            if b is not None and other is not b:
                continue
            stream.break_both(cause)
            broken += 1
        a._streams = [s for s in a._streams if not s.dead]
        if b is not None:
            b._streams = [s for s in b._streams if not s.dead]
        if broken:
            self.links_broken += broken
            self.tracer.emit(
                self.sim.now, "net.link_break",
                host=a.name, peer=None if b is None else b.name,
                streams=broken, cause=str(cause),
            )
        return broken

    def one_way_time(self, nbytes: int) -> float:
        """Analytic unloaded one-way time for a single segment (no queueing)."""
        return (
            self.link.send_cpu
            + self.link.wire_latency
            + (nbytes + self.link.frame_overhead) / self.link.bandwidth
            + self.link.per_segment_gap
            + self.link.recv_cpu
        )
