"""The switched-Ethernet network model.

The paper's testbed is a 48-port 100 Mbit/s switch: a non-blocking fabric
where only the per-port NICs serialize traffic.  A segment transfer of
``nbytes`` from host A to host B costs::

    tx_start = when A's transmit side is free
    duration = (nbytes + frame_overhead) / bandwidth + per_segment_gap
    arrival  = B's receive side free after (tx_start + wire_latency),
               plus the same duration (store-and-forward at the endpoint)

plus fixed per-segment CPU costs at both endpoints (protocol stack
traversal), which dominate small-message latency: the P4 0-byte one-way
latency of ~77 microseconds is reproduced as
``send_cpu + wire_latency + frame_time + recv_cpu``.

Loopback (A == B) transfers move at memory-copy speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .kernel import Simulator
from .node import Host, HostDown
from .trace import Tracer

__all__ = ["LinkConfig", "Network"]


@dataclass(frozen=True)
class LinkConfig:
    """Calibrated link parameters (defaults: the paper's Fast Ethernet)."""

    bandwidth: float = 11.42e6  # effective payload bytes/s on the wire
    wire_latency: float = 28e-6  # propagation + switch latency, seconds
    frame_overhead: int = 58  # header bytes charged per segment
    send_cpu: float = 4e-6  # per-segment NIC/DMA setup on the send side
    recv_cpu: float = 18e-6  # per-segment receiver stack traversal
    per_segment_gap: float = 4e-6  # interframe gap on the NIC
    loopback_bandwidth: float = 400e6  # same-host memcpy speed
    loopback_latency: float = 4e-6
    # wide-area parameters for Grid deployments (hosts on different sites):
    # a 2003-era inter-site path — a few ms one way, shared capacity below
    # the cluster's Fast Ethernet
    wan_latency: float = 2.5e-3
    wan_bandwidth: float = 6e6


class Network:
    """Schedules segment transfers between hosts."""

    def __init__(
        self,
        sim: Simulator,
        link: Optional[LinkConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.link = link or LinkConfig()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.hosts: dict[str, Host] = {}
        self.bytes_moved = 0.0
        self.segments_moved = 0

    # -- topology ---------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        """Attach a host to the switch (names must be unique)."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        return self.hosts[name]

    # -- transfers --------------------------------------------------------
    def transfer(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        on_arrival: Callable[[], None],
        bulk: bool = False,
    ) -> float:
        """Schedule a one-way segment; returns the arrival time.

        The caller is responsible for flow control (see ``streams``); the
        network itself never queues unboundedly per-stream because writers
        block on window credit.
        """
        if src.failed:
            raise HostDown(src.name)
        now = self.sim.now
        if src is dst:
            arrival = (
                now
                + self.link.loopback_latency
                + nbytes / self.link.loopback_bandwidth
            )
            self.sim.at(arrival, on_arrival)
            return arrival

        same_site = src.site == dst.site
        bandwidth = (
            self.link.bandwidth
            if same_site
            else min(self.link.bandwidth, self.link.wan_bandwidth)
        )
        latency = self.link.wire_latency if same_site else self.link.wan_latency
        duration = (
            (nbytes + self.link.frame_overhead) / bandwidth
            + self.link.per_segment_gap
        )
        coupling = nbytes if bulk else 0
        tx_start = src.reserve_tx(now + self.link.send_cpu, duration, coupling)
        rx_end = dst.reserve_rx(tx_start + latency, duration, coupling)
        arrival = rx_end + self.link.recv_cpu

        self.bytes_moved += nbytes
        self.segments_moved += 1
        self.tracer.emit(
            now, "net.xfer", src=src.name, dst=dst.name, nbytes=nbytes, arrival=arrival
        )
        self.sim.at(arrival, on_arrival)
        return arrival

    def one_way_time(self, nbytes: int) -> float:
        """Analytic unloaded one-way time for a single segment (no queueing)."""
        return (
            self.link.send_cpu
            + self.link.wire_latency
            + (nbytes + self.link.frame_overhead) / self.link.bandwidth
            + self.link.per_segment_gap
            + self.link.recv_cpu
        )
