"""Simulated hosts.

A :class:`Host` models one machine of the paper's testbed: a CPU with a
sustained compute rate, RAM and swap budgets (used by the sender-based
message log accounting), and a network interface.  The NIC is modelled by
two scalar "free at" times — transmit and receive — which serialize
transfers; a *half-duplex endpoint* (used for the MPICH-P4 driver, whose
process does not service receptions while pushing a message) shares a
single resource for both directions.

Crashing a host kills every simulated process registered on it and breaks
every attached stream; this is the fault model of the paper (fail-stop,
detected through socket disconnection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .kernel import Process, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .streams import Stream

__all__ = ["Host", "HostDown"]


class HostDown(Exception):
    """Raised by operations attempted on or against a crashed host."""


class Host:
    """One simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_flops: float = 3.0e8,
        ram_bytes: int = 1 << 30,
        swap_bytes: int = 1 << 30,
        disk_bw: float = 10e6,
        full_duplex: bool = True,
        reliable: bool = False,
        site: str = "site0",
    ) -> None:
        self.sim = sim
        self.name = name
        #: Grid deployments span several clusters: hosts on different
        #: sites communicate over the wide-area parameters of the link
        self.site = site
        self.cpu_flops = cpu_flops
        self.ram_bytes = ram_bytes
        self.swap_bytes = swap_bytes
        self.disk_bw = disk_bw
        self.full_duplex = full_duplex
        self.reliable = reliable

        self.failed = False
        self.incarnation = 0
        # NIC serialization state (absolute simulated times)
        self._tx_free = 0.0
        self._rx_free = 0.0
        # cumulative NIC busy seconds (folded into the metrics registry
        # at job end; plain floats keep the reservation path allocation-free)
        self.nic_tx_busy_s = 0.0
        self.nic_rx_busy_s = 0.0
        self._processes: list[Process] = []
        self._streams: list["Stream"] = []
        self.on_crash: list[Callable[["Host"], None]] = []

    #: frames below this size never couple tx/rx on a half-duplex
    #: endpoint: the P4 driver's read starvation only matters while it is
    #: busy pushing bulk payload chunks, not for small control frames
    HALF_DUPLEX_MIN_BYTES = 8192

    # -- NIC resource ----------------------------------------------------
    def _coupled(self, nbytes: int) -> bool:
        return not self.full_duplex and nbytes >= self.HALF_DUPLEX_MIN_BYTES

    def reserve_tx(self, start: float, duration: float, nbytes: int = 0) -> float:
        """Reserve the transmit side; returns actual transmission start."""
        begin = self._tx_free
        if not self.full_duplex and nbytes >= 8192:  # inlined _coupled
            if self._rx_free > begin:
                begin = self._rx_free
            if start > begin:
                begin = start
            end = begin + duration
            self._tx_free = end
            if end > self._rx_free:
                self._rx_free = end
        else:
            if start > begin:
                begin = start
            self._tx_free = begin + duration
        self.nic_tx_busy_s += duration
        return begin

    def reserve_rx(self, start: float, duration: float, nbytes: int = 0) -> float:
        """Reserve the receive side; returns the reception completion time."""
        begin = self._rx_free
        if not self.full_duplex and nbytes >= 8192:  # inlined _coupled
            if self._tx_free > begin:
                begin = self._tx_free
            if start > begin:
                begin = start
            end = begin + duration
            self._rx_free = end
            if end > self._tx_free:
                self._tx_free = end
        else:
            if start > begin:
                begin = start
            end = begin + duration
            self._rx_free = end
        self.nic_rx_busy_s += duration
        return end

    # -- process / stream registry ---------------------------------------
    def register(self, proc: Process) -> None:
        """Bind a simulated process to this machine (dies with it)."""
        if self.failed:
            raise HostDown(self.name)
        self._processes.append(proc)

    def attach_stream(self, stream: "Stream") -> None:
        """Track a stream so a crash can break it."""
        self._streams.append(stream)

    # -- failure ---------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: kill all local processes and break all streams."""
        if self.failed:
            return
        if self.reliable:
            raise HostDown(f"reliable host {self.name} cannot be crashed")
        self.failed = True
        procs, self._processes = self._processes, []
        for p in procs:
            p.kill()
        streams, self._streams = self._streams, []
        for s in streams:
            s.break_both(self)
        for cb in list(self.on_crash):
            cb(self)

    def restart(self) -> None:
        """Bring the machine back up (empty, a fresh boot)."""
        if not self.failed:
            return
        self.failed = False
        self.incarnation += 1
        self._tx_free = self.sim.now
        self._rx_free = self.sim.now

    # -- compute ---------------------------------------------------------
    def compute_seconds(self, flops: float) -> float:
        """Wall time for ``flops`` floating point operations."""
        return flops / self.cpu_flops

    def __repr__(self) -> str:  # pragma: no cover
        state = "down" if self.failed else "up"
        return f"<Host {self.name} {state}>"
