"""Deterministic per-component random streams.

Every stochastic component (failure injector, random checkpoint policy,
workload data generators, ...) draws from its own named stream so that
adding randomness to one component never perturbs another.  Streams are
derived from a master seed with :func:`numpy.random.SeedSequence` spawning
keyed by the component name, which is stable across runs and process
orderings.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, reproducible :class:`numpy.random.Generator`."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.master_seed, key])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """A registry with an independent master seed (for sub-experiments)."""
        return RngRegistry(master_seed=self.master_seed * 1_000_003 + salt)
