"""Flow-controlled, ordered byte streams (the simulated TCP connections).

A :class:`Stream` joins two endpoints on two hosts.  Each direction has a
*window* (the peer's receive buffer, default 64 KiB): a writer blocks once
it has that many bytes outstanding that the reader has not consumed.  This
is the mechanism behind Figure 9 of the paper — the P4 driver does not
drain incoming segments while pushing a message, so its peer stalls on a
full window, serializing the two directions; the V2 daemon drains after
every chunk and keeps both directions flowing.

Streams deliver segments in order and break atomically when either host
crashes: pending and future reads/writes fail with :class:`Disconnected`
(the paper's fault detector is exactly this socket-disconnection signal),
and in-flight segments are dropped — matching the paper's assumption that
"a message is always completely received or not at all".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .kernel import Future, Semaphore, register_slot
from .network import Network
from .node import Host

__all__ = ["Disconnected", "Stream", "StreamEnd", "DEFAULT_WINDOW", "EV_ARRIVE"]

DEFAULT_WINDOW = 64 * 1024


class Disconnected(Exception):
    """The peer endpoint vanished (host crash or explicit close)."""

    def __init__(self, stream_name: str, cause: Any = None) -> None:
        super().__init__(f"stream {stream_name} disconnected ({cause})")
        self.stream_name = stream_name
        self.cause = cause


def _arrive(end: "StreamEnd", segment: tuple) -> None:
    # dropped on the floor when a crash raced the transfer — matching the
    # paper's "a message is completely received or not at all"
    if not end.stream.dead and end.broken is None:
        end._deliver(segment)


#: the flat-dispatch slot for segment delivery: ``(EV_ARRIVE, receiving
#: end, segment)`` heap entries replace the per-segment arrive closures
EV_ARRIVE = register_slot(_arrive, "streams.arrive")


class StreamEnd:
    """One side of a stream."""

    def __init__(self, stream: "Stream", host: Host, label: str) -> None:
        self.stream = stream
        self.host = host
        self.label = label
        self.peer: "StreamEnd" = None  # type: ignore[assignment]  # set by Stream
        # credit tokens = free bytes in the *peer's* receive buffer
        self._wcredit = Semaphore(
            stream.net.sim, stream.window, name=f"{stream.name}.{label}.credit"
        )
        # the receive side, inlined (no kernel Queue): segments are
        # handed straight to a waiting reader at arrival time — one
        # future and zero closures per read on the hot path
        self._rx_items: deque[tuple] = deque()
        self._rx_getters: deque[Future] = deque()
        self._rx_watchers: list[Future] = []
        self.broken: Optional[Disconnected] = None
        self.bytes_written = 0
        self.bytes_read = 0
        # window-stall accounting (folded into the metrics registry at
        # job end): time writers spent blocked on the peer's window.
        # A stall is one *blocked write call* — a coalesced frame counts
        # once however many wire segments it spans.
        self.stall_count = 0
        self.stall_s = 0.0
        self._read_name = f"{stream.name}.{label}.read"

    # -- writing ----------------------------------------------------------
    def _xfer(
        self, nbytes: int, charge: int, payload: Any, bulk: bool, nsegs: int
    ) -> None:
        """Hand one (possibly coalesced) frame to the network."""
        net = self.stream.net
        peer = self.peer
        segment = (nbytes, charge, payload)
        if net.sim.flat:
            net.transfer(
                self.host, peer.host, nbytes, (EV_ARRIVE, peer, segment),
                bulk=bulk, segments=nsegs,
            )
        else:
            stream = self.stream

            def arrive() -> None:
                if stream.dead or peer.broken is not None:
                    return  # dropped on the floor: crash during transfer
                peer._deliver(segment)

            net.transfer(
                self.host, peer.host, nbytes, arrive, bulk=bulk, segments=nsegs
            )
        self.bytes_written += nbytes

    def write(
        self, nbytes: int, payload: Any = None, bulk: bool = False
    ) -> Generator[Future, Any, None]:
        """Send one segment; blocks while the peer's window is full.

        ``nbytes`` drives the timing model; ``payload`` is an opaque object
        delivered to the reader (protocol headers, message chunks, ...).
        ``bulk`` marks a payload push made by a driver that starves its
        receive side meanwhile (the P4 eager path) — on a half-duplex
        endpoint such segments serialize against reception.
        Returns once the segment has been handed to the network.
        """
        charge = max(1, min(nbytes, self.stream.window))
        if self.broken is not None:
            raise self.broken
        if not self._wcredit.try_acquire(charge):
            # blocked — whether on missing tokens or FIFO order behind
            # earlier waiters (the old tokens>=charge check missed those)
            self.stall_count += 1
            t0 = self.stream.net.sim.now
            yield self._wcredit.acquire(charge)
            self.stall_s += self.stream.net.sim.now - t0
            if self.broken is not None:
                raise self.broken
        self._xfer(nbytes, charge, payload, bulk, 1)

    def write_frame(
        self,
        nbytes: int,
        record: Any = None,
        mtu: Optional[int] = None,
        bulk: bool = False,
    ) -> Generator[Future, Any, None]:
        """Send one length-prefixed frame, coalescing its wire segments.

        Replaces the ``N-1 × write(None) + write(record)`` segment loops:
        when the whole frame fits in the peer's receive window, its
        window credit is charged once and the network moves it as a
        single transfer of ``ceil(nbytes / mtu)`` wire segments — one
        kernel event and one reader wakeup instead of N (wire time is
        unchanged; endpoint CPU is paid once, the syscall-batching win).
        The reader sees exactly one ``(nbytes, record)`` segment.

        A frame larger than the window cannot coalesce without breaking
        flow control (the reader must drain mid-transfer — the Figure 9
        stall mechanism), so it falls back to window-respecting segments
        with ``record`` riding the last one.  Either way a blocked call
        counts at most one window stall.
        """
        if self.broken is not None:
            raise self.broken
        window = self.stream.window
        if mtu is None or mtu <= 0:
            mtu = window
        if nbytes <= window:
            charge = max(1, nbytes)
            if not self._wcredit.try_acquire(charge):
                self.stall_count += 1
                t0 = self.stream.net.sim.now
                yield self._wcredit.acquire(charge)
                self.stall_s += self.stream.net.sim.now - t0
                if self.broken is not None:
                    raise self.broken
            nsegs = -(-nbytes // mtu) if nbytes > 0 else 1
            self._xfer(nbytes, charge, record, bulk, nsegs)
            return
        remaining = nbytes
        stalled = False
        while remaining > 0:
            seg = mtu if remaining > mtu else remaining
            charge = max(1, min(seg, window))
            if not self._wcredit.try_acquire(charge):
                if not stalled:
                    stalled = True
                    self.stall_count += 1
                t0 = self.stream.net.sim.now
                yield self._wcredit.acquire(charge)
                self.stall_s += self.stream.net.sim.now - t0
                if self.broken is not None:
                    raise self.broken
            remaining -= seg
            self._xfer(seg, charge, record if remaining <= 0 else None, bulk, 1)

    def write_nowait(self, nbytes: int, payload: Any = None, bulk: bool = False) -> bool:
        """Non-blocking write; returns False if the window is full/broken.

        FIFO order is respected: queued writers go first (try_acquire
        refuses while waiters exist).
        """
        charge = max(1, min(nbytes, self.stream.window))
        if self.broken is not None or not self._wcredit.try_acquire(charge):
            return False
        self._xfer(nbytes, charge, payload, bulk, 1)
        return True

    @property
    def writable(self) -> bool:
        """Window credit available and connection alive?"""
        return self.broken is None and self._wcredit.tokens > 0

    # -- reading ----------------------------------------------------------
    def _deliver(self, segment: tuple) -> None:
        """Hand one arrived segment to the receive side.

        A waiting reader gets it immediately — credit released and its
        read future resolved right here, with no intermediate queue hop
        — otherwise the segment is parked for the next read call.
        """
        getters = self._rx_getters
        if getters:
            nbytes, charge, payload = segment
            self.bytes_read += nbytes
            if self.peer.broken is None:
                self.peer._wcredit.release(charge)
            getters.popleft().resolve((nbytes, payload))
            return
        self._rx_items.append(segment)
        if self._rx_watchers:
            watchers, self._rx_watchers = self._rx_watchers, []
            for fut in watchers:
                fut.resolve_if_pending(None)

    def read(self) -> Future:
        """A future for the next segment ``(nbytes, payload)``.

        Reading releases window credit back to the peer writer — a device
        that delays reads (P4 while sending) therefore stalls its peer.
        """
        items = self._rx_items
        if items and self.broken is None:
            # hot path: a segment is already queued — pop it, release the
            # credit and return a pre-resolved future
            nbytes, charge, payload = items.popleft()
            self.bytes_read += nbytes
            if self.peer.broken is None:
                self.peer._wcredit.release(charge)
            fut = Future(self.stream.net.sim, name=self._read_name)
            fut._done = True
            fut._value = (nbytes, payload)
            return fut
        fut = Future(self.stream.net.sim, name=self._read_name)
        if self.broken is not None:
            fut.fail(self.broken)
        else:
            self._rx_getters.append(fut)
        return fut

    def try_read(self) -> tuple[bool, int, Any]:
        """Non-blocking read: ``(ok, nbytes, payload)``."""
        items = self._rx_items
        if not items:
            return False, 0, None
        nbytes, charge, payload = items.popleft()
        self.bytes_read += nbytes
        if self.peer.broken is None:
            self.peer._wcredit.release(charge)
        return True, nbytes, payload

    @property
    def readable(self) -> bool:
        """Is a segment waiting to be read?"""
        return len(self._rx_items) > 0

    @property
    def rx_depth(self) -> int:
        """Segments received but not yet read (the receive backlog)."""
        return len(self._rx_items)

    def when_readable(self) -> Future:
        """A future resolved when a segment is (or becomes) available."""
        fut = Future(self.stream.net.sim, name=self._read_name)
        if self.broken is not None:
            fut.fail(self.broken)
        elif self._rx_items:
            fut.resolve(None)
        else:
            self._rx_watchers.append(fut)
        return fut

    def when_writable(self, nbytes: int) -> Future:
        """A future resolved when window credit for ``nbytes`` exists."""
        charge = max(1, min(nbytes, self.stream.window))
        return self._wcredit.when_available(charge)

    # -- teardown ---------------------------------------------------------
    def _break(self, cause: Any) -> None:
        if self.broken is not None:
            return
        exc = Disconnected(self.stream.name, cause)
        self.broken = exc
        getters, self._rx_getters = self._rx_getters, deque()
        for fut in getters:
            fut.fail_if_pending(exc)
        watchers, self._rx_watchers = self._rx_watchers, []
        for fut in watchers:
            fut.fail_if_pending(exc)
        self._wcredit.break_(exc)


class Stream:
    """A bidirectional connection between two hosts."""

    _counter = 0

    def __init__(
        self,
        net: Network,
        host_a: Host,
        host_b: Host,
        window: int = DEFAULT_WINDOW,
        name: Optional[str] = None,
    ) -> None:
        self.net = net
        self.window = window
        if name is None:
            Stream._counter += 1
            name = f"s{Stream._counter}:{host_a.name}<->{host_b.name}"
        self.name = name
        self.dead = False
        self.a = StreamEnd(self, host_a, "a")
        self.b = StreamEnd(self, host_b, "b")
        self.a.peer = self.b
        self.b.peer = self.a
        host_a.attach_stream(self)
        if host_b is not host_a:
            host_b.attach_stream(self)

    def end_for(self, host: Host) -> StreamEnd:
        """The endpoint attached to ``host``."""
        if host is self.a.host:
            return self.a
        if host is self.b.host:
            return self.b
        raise ValueError(f"{host.name} is not an endpoint of {self.name}")

    def break_both(self, cause: Any) -> None:
        """Tear the connection down (both directions)."""
        if self.dead:
            return
        self.dead = True
        self.a._break(cause)
        self.b._break(cause)
