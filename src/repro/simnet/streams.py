"""Flow-controlled, ordered byte streams (the simulated TCP connections).

A :class:`Stream` joins two endpoints on two hosts.  Each direction has a
*window* (the peer's receive buffer, default 64 KiB): a writer blocks once
it has that many bytes outstanding that the reader has not consumed.  This
is the mechanism behind Figure 9 of the paper — the P4 driver does not
drain incoming segments while pushing a message, so its peer stalls on a
full window, serializing the two directions; the V2 daemon drains after
every chunk and keeps both directions flowing.

Streams deliver segments in order and break atomically when either host
crashes: pending and future reads/writes fail with :class:`Disconnected`
(the paper's fault detector is exactly this socket-disconnection signal),
and in-flight segments are dropped — matching the paper's assumption that
"a message is always completely received or not at all".
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .kernel import Future, Queue, Semaphore
from .network import Network
from .node import Host

__all__ = ["Disconnected", "Stream", "StreamEnd", "DEFAULT_WINDOW"]

DEFAULT_WINDOW = 64 * 1024


class Disconnected(Exception):
    """The peer endpoint vanished (host crash or explicit close)."""

    def __init__(self, stream_name: str, cause: Any = None) -> None:
        super().__init__(f"stream {stream_name} disconnected ({cause})")
        self.stream_name = stream_name
        self.cause = cause


class StreamEnd:
    """One side of a stream."""

    def __init__(self, stream: "Stream", host: Host, label: str) -> None:
        self.stream = stream
        self.host = host
        self.label = label
        self.peer: "StreamEnd" = None  # type: ignore[assignment]  # set by Stream
        # credit tokens = free bytes in the *peer's* receive buffer
        self._wcredit = Semaphore(
            stream.net.sim, stream.window, name=f"{stream.name}.{label}.credit"
        )
        self._rx: Queue = Queue(stream.net.sim, name=f"{stream.name}.{label}.rx")
        self.broken: Optional[Disconnected] = None
        self.bytes_written = 0
        self.bytes_read = 0
        # window-stall accounting (folded into the metrics registry at
        # job end): time writers spent blocked on the peer's window
        self.stall_count = 0
        self.stall_s = 0.0

    # -- writing ----------------------------------------------------------
    def write(
        self, nbytes: int, payload: Any = None, bulk: bool = False
    ) -> Generator[Future, Any, None]:
        """Send one segment; blocks while the peer's window is full.

        ``nbytes`` drives the timing model; ``payload`` is an opaque object
        delivered to the reader (protocol headers, message chunks, ...).
        ``bulk`` marks a payload push made by a driver that starves its
        receive side meanwhile (the P4 eager path) — on a half-duplex
        endpoint such segments serialize against reception.
        Returns once the segment has been handed to the network.
        """
        charge = max(1, min(nbytes, self.stream.window))
        if self.broken is not None:
            raise self.broken
        if self._wcredit.tokens >= charge:
            yield self._wcredit.acquire(charge)
        else:
            self.stall_count += 1
            t0 = self.stream.net.sim.now
            yield self._wcredit.acquire(charge)
            self.stall_s += self.stream.net.sim.now - t0
        if self.broken is not None:
            raise self.broken
        net = self.stream.net
        peer = self.peer
        segment = (nbytes, charge, payload)

        def arrive() -> None:
            if self.stream.dead or peer.broken is not None:
                return  # dropped on the floor: crash during transfer
            peer._rx.put(segment)

        net.transfer(self.host, peer.host, nbytes, arrive, bulk=bulk)
        self.bytes_written += nbytes

    def write_nowait(self, nbytes: int, payload: Any = None, bulk: bool = False) -> bool:
        """Non-blocking write; returns False if the window is full/broken."""
        charge = max(1, min(nbytes, self.stream.window))
        if self.broken is not None or self._wcredit.tokens < charge:
            return False
        # acquire resolves synchronously when tokens suffice
        self._wcredit.acquire(charge)
        net = self.stream.net
        peer = self.peer
        segment = (nbytes, charge, payload)

        def arrive() -> None:
            if self.stream.dead or peer.broken is not None:
                return
            peer._rx.put(segment)

        net.transfer(self.host, peer.host, nbytes, arrive, bulk=bulk)
        self.bytes_written += nbytes
        return True

    @property
    def writable(self) -> bool:
        """Window credit available and connection alive?"""
        return self.broken is None and self._wcredit.tokens > 0

    # -- reading ----------------------------------------------------------
    def read(self) -> Future:
        """A future for the next segment ``(nbytes, payload)``.

        Reading releases window credit back to the peer writer — a device
        that delays reads (P4 while sending) therefore stalls its peer.
        """
        fut = Future(self.stream.net.sim, name=f"{self.stream.name}.{self.label}.read")
        raw = self._rx.get()

        def done(f: Future) -> None:
            if f.exception is not None:
                fut.fail_if_pending(f.exception)
                return
            nbytes, charge, payload = f.value
            self.bytes_read += nbytes
            if self.peer.broken is None:
                self.peer._wcredit.release(charge)
            fut.resolve_if_pending((nbytes, payload))

        raw.add_done_callback(done)
        return fut

    def try_read(self) -> tuple[bool, int, Any]:
        """Non-blocking read: ``(ok, nbytes, payload)``."""
        ok, segment = self._rx.try_get()
        if not ok:
            return False, 0, None
        nbytes, charge, payload = segment
        self.bytes_read += nbytes
        if self.peer.broken is None:
            self.peer._wcredit.release(charge)
        return True, nbytes, payload

    @property
    def readable(self) -> bool:
        """Is a segment waiting to be read?"""
        return len(self._rx) > 0

    @property
    def rx_depth(self) -> int:
        """Segments received but not yet read (the receive backlog)."""
        return len(self._rx)

    def when_readable(self) -> Future:
        """A future resolved when a segment is (or becomes) available."""
        return self._rx.when_nonempty()

    def when_writable(self, nbytes: int) -> Future:
        """A future resolved when window credit for ``nbytes`` exists."""
        charge = max(1, min(nbytes, self.stream.window))
        return self._wcredit.when_available(charge)

    # -- teardown ---------------------------------------------------------
    def _break(self, cause: Any) -> None:
        if self.broken is not None:
            return
        exc = Disconnected(self.stream.name, cause)
        self.broken = exc
        self._rx.break_(exc)
        self._wcredit.break_(exc)


class Stream:
    """A bidirectional connection between two hosts."""

    _counter = 0

    def __init__(
        self,
        net: Network,
        host_a: Host,
        host_b: Host,
        window: int = DEFAULT_WINDOW,
        name: Optional[str] = None,
    ) -> None:
        self.net = net
        self.window = window
        if name is None:
            Stream._counter += 1
            name = f"s{Stream._counter}:{host_a.name}<->{host_b.name}"
        self.name = name
        self.dead = False
        self.a = StreamEnd(self, host_a, "a")
        self.b = StreamEnd(self, host_b, "b")
        self.a.peer = self.b
        self.b.peer = self.a
        host_a.attach_stream(self)
        if host_b is not host_a:
            host_b.attach_stream(self)

    def end_for(self, host: Host) -> StreamEnd:
        """The endpoint attached to ``host``."""
        if host is self.a.host:
            return self.a
        if host is self.b.host:
            return self.b
        raise ValueError(f"{host.name} is not an endpoint of {self.name}")

    def break_both(self, cause: Any) -> None:
        """Tear the connection down (both directions)."""
        if self.dead:
            return
        self.dead = True
        self.a._break(cause)
        self.b._break(cause)
