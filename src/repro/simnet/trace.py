"""Execution tracing.

A :class:`Tracer` collects typed trace records during a simulation.  The
protocol-invariant tests (e.g. the pessimistic-logging property of
Definition 3 in the paper) are implemented as *post-hoc* checks over these
traces, so the protocol code itself stays free of assertion scaffolding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    ``kind`` is a short dotted tag (``"v2.deliver"``, ``"net.xfer"``,
    ``"ft.restart"``, ...); ``time`` is simulated seconds; ``fields``
    carries kind-specific data.
    """

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only trace sink with prefix filtering and live subscribers.

    Tracing is cheap when disabled (a single branch per call); benchmarks
    run with tracing off, tests with tracing on.  ``max_records`` bounds
    memory for soak runs: the sink becomes a ring buffer that drops the
    *oldest* record on overflow and counts the drops in ``dropped`` (and
    in a bound drop counter, when one is attached) — a truncated stream
    can no longer prove anything, so post-hoc checks must not call it
    clean.

    **Subscribers** see every event as it is emitted, even when record
    *retention* is off — this is what lets the online protocol auditor
    watch a run live without the memory cost of a full trace.  A
    subscriber is called as ``callback(time, kind, fields)`` (no
    :class:`TraceRecord` is built unless retention needs one) and may
    declare the exact ``kinds`` it wants; emits outside the union of all
    subscriptions stay on the one-branch fast path.
    """

    def __init__(
        self, enabled: bool = False, max_records: Optional[int] = None
    ) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        self.drop_counter: Optional[Any] = None  # obs.Counter, bound late
        self._subs: list[tuple[Callable[[float, str, dict], None],
                               Optional[frozenset]]] = []
        self._interest: Optional[frozenset] = frozenset()  # union; None=all
        #: False only when *no* emit can have an effect (retention off,
        #: no subscribers).  Hot paths guard ``if tracer.hot:`` before
        #: building an emit's keyword dict — the dict construction, not
        #: the emit call, is what shows up at CG event rates.
        self.hot = enabled
        if max_records is not None:
            self.records: Any = deque(maxlen=max_records)
        else:
            self.records = []

    # -- subscribers -------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[float, str, dict], None],
        kinds: Optional[frozenset] = None,
    ) -> None:
        """Stream every emitted event (of ``kinds``, or all) to ``callback``."""
        self._subs.append((callback, frozenset(kinds) if kinds else None))
        self._recompute_interest()

    def unsubscribe(self, callback: Callable[[float, str, dict], None]) -> None:
        """Detach a subscriber added with :meth:`subscribe`."""
        self._subs = [(cb, k) for cb, k in self._subs if cb is not callback]
        self._recompute_interest()

    def _recompute_interest(self) -> None:
        if any(k is None for _, k in self._subs):
            self._interest = None  # at least one wants everything
        else:
            acc: set = set()
            for _, k in self._subs:
                acc |= k
            self._interest = frozenset(acc)
        self.hot = self.enabled or bool(self._subs)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one event (no-op when disabled and nobody subscribed)."""
        interest = self._interest
        if interest is not None and kind not in interest:
            # no subscriber wants this kind: retention-only path
            if not self.enabled:
                return
        else:
            for cb, kinds in self._subs:
                if kinds is None or kind in kinds:
                    cb(time, kind, fields)
            if not self.enabled:
                return
        if (
            self.max_records is not None
            and len(self.records) == self.max_records
        ):
            self.dropped += 1  # deque(maxlen) evicts the oldest
            if self.drop_counter is not None:
                self.drop_counter.inc()
        self.records.append(TraceRecord(time, kind, fields))

    def select(self, prefix: str) -> list[TraceRecord]:
        """All records whose kind equals or starts with ``prefix``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [
            r for r in self.records if r.kind == prefix or r.kind.startswith(dotted)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all recorded events (and reset the overflow count)."""
        self.records.clear()
        self.dropped = 0
