"""Execution tracing.

A :class:`Tracer` collects typed trace records during a simulation.  The
protocol-invariant tests (e.g. the pessimistic-logging property of
Definition 3 in the paper) are implemented as *post-hoc* checks over these
traces, so the protocol code itself stays free of assertion scaffolding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    ``kind`` is a short dotted tag (``"v2.deliver"``, ``"net.xfer"``,
    ``"ft.restart"``, ...); ``time`` is simulated seconds; ``fields``
    carries kind-specific data.
    """

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Append-only trace sink with prefix filtering.

    Tracing is cheap when disabled (a single branch per call); benchmarks
    run with tracing off, tests with tracing on.  ``max_records`` bounds
    memory for soak runs: the sink becomes a ring buffer that drops the
    *oldest* record on overflow and counts the drops in ``dropped``.
    """

    def __init__(
        self, enabled: bool = False, max_records: Optional[int] = None
    ) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.dropped = 0
        if max_records is not None:
            self.records: Any = deque(maxlen=max_records)
        else:
            self.records = []

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record one event (no-op when tracing is disabled)."""
        if self.enabled:
            if (
                self.max_records is not None
                and len(self.records) == self.max_records
            ):
                self.dropped += 1  # deque(maxlen) evicts the oldest
            self.records.append(TraceRecord(time, kind, fields))

    def select(self, prefix: str) -> list[TraceRecord]:
        """All records whose kind equals or starts with ``prefix``."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [
            r for r in self.records if r.kind == prefix or r.kind.startswith(dotted)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all recorded events (and reset the overflow count)."""
        self.records.clear()
        self.dropped = 0
