"""repro.store: replicated, content-addressed checkpoint storage.

The paper's Checkpoint Server is a single reliable node storing one full
process image per rank (Section 4.6.1).  This package generalizes it
into a small storage engine:

* an image is a :class:`~repro.store.chunks.Manifest` (rank, seq, the
  ordered chunk references) plus content-addressed chunks, so unchanged
  chunks deduplicate across successive checkpoints (incremental mode
  pushes only the dirty ones);
* :class:`~repro.store.replica.StoreReplica` instances replicate the
  store across N checkpoint servers; a push is durable once a
  write-quorum of K replicas committed the manifest;
* :class:`~repro.store.client.StoreClient` runs the daemon side: the
  quorum push, and the streamed restart fetch that fails over to another
  replica mid-transfer without losing the chunks already received;
* garbage collection is manifest-aware: a chunk is collectable only when
  no surviving manifest references it, and the checkpoint scheduler only
  releases manifests below each rank's latest quorum-complete sequence.
"""

from .chunks import Chunk, ChunkRef, Manifest, assemble_image, chunk_image, stable_digest
from .client import StoreClient
from .replica import StoreReplica

__all__ = [
    "Chunk",
    "ChunkRef",
    "Manifest",
    "StoreClient",
    "StoreReplica",
    "assemble_image",
    "chunk_image",
    "stable_digest",
]
