"""Content-addressed chunking of checkpoint images.

A checkpoint image is decomposed into a :class:`Manifest` — the rank,
the checkpoint sequence number, and the *ordered* list of chunk
references — plus the chunks themselves, addressed by a stable digest of
their logical content.  Identical content produces identical digests, so
a replica holding a chunk never stores (or receives) it twice: that is
what makes incremental checkpoints cheap, and what lets an interrupted
restart fetch resume on another replica with the chunks it already has.

The byte layout mirrors :attr:`CheckpointImage.image_bytes` exactly
(application footprint, then the sender-log payloads, then a fixed
4 KiB process header), and the chunker guarantees two structural
properties the transfer paths rely on (property-tested in
``tests/test_property_based.py``):

* the chunk sizes sum to ``image_bytes`` — nothing is double-counted or
  dropped;
* every chunk is at most ``chunk_bytes`` — oversized sender-log payloads
  are split into addressed parts.

Dedup boundaries are chosen for stability under mutation:

* **memory regions** sit on a fixed ``chunk_bytes`` grid and are
  digested by ``(rank, region index, region version)`` — the
  deterministic dirty-region model of :class:`~repro.core.v2_device.
  V2Daemon` bumps a region's version when the application writes it, so
  clean regions keep their digest across checkpoints;
* **sender-log chunks** group entries per destination and per
  ``SAVED_WINDOW`` of sender clocks, so garbage collection (which drops
  per-destination sclock prefixes) invalidates whole chunks instead of
  shifting every boundary after the cut;
* the **header** (clocks, delivery log, sequences) changes every
  checkpoint and is always pushed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, NamedTuple, Optional

from ..devices.base import segment_sizes

if TYPE_CHECKING:  # imported lazily below: core.v2_device imports this module
    from ..core.replay import CheckpointImage

__all__ = [
    "SAVED_WINDOW",
    "HEADER_BYTES",
    "BufferSlice",
    "Chunk",
    "ChunkRef",
    "ImageBuffer",
    "Manifest",
    "assemble_image",
    "chunk_image",
    "stable_digest",
]

#: sender-log entries are grouped per destination and per this many
#: sender clocks: GC of a checkpointed prefix drops whole windows
SAVED_WINDOW = 64

#: the fixed process-header part of ``CheckpointImage.image_bytes``
HEADER_BYTES = 4096


def stable_digest(*parts: Any) -> int:
    """A 64-bit content digest, stable across runs and processes.

    Python's builtin ``hash`` is salted per process; checkpoint chunk
    identity must survive any such boundary (and stay deterministic for
    the tests), so digest the repr through blake2b instead.
    """
    h = hashlib.blake2b(repr(parts).encode(), digest_size=8)
    return int.from_bytes(h.digest(), "big")


class ChunkRef(NamedTuple):
    """One manifest entry: which chunk, and how many image bytes it covers."""

    digest: int
    nbytes: int


class ImageBuffer:
    """The single backing allocation of one serialized checkpoint image.

    The simulation carries no real checkpoint bytes, so the buffer is
    *virtual*: it models the one contiguous serialization a daemon would
    produce, and every chunk of the image carries a :class:`BufferSlice`
    into it — the ``memoryview`` analogue.  Any code that would have to
    materialize a private copy of chunk bytes (re-serialize, re-buffer)
    must call :meth:`BufferSlice.materialize`, which bumps :attr:`copies`;
    the zero-copy contract of the store path is therefore testable:
    after push → replica → fetch the chunk still holds a slice of the
    *original* buffer and ``copies`` is 0.
    """

    __slots__ = ("rank", "seq", "nbytes", "copies")

    def __init__(self, rank: Any, seq: int, nbytes: int) -> None:
        self.rank = rank
        self.seq = seq
        self.nbytes = nbytes
        self.copies = 0  # materializations — 0 along the zero-copy path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ImageBuffer r{self.rank}/seq{self.seq} {self.nbytes}B>"


class BufferSlice(NamedTuple):
    """A borrowed window into an :class:`ImageBuffer` (no bytes owned)."""

    buf: ImageBuffer
    offset: int
    nbytes: int

    def materialize(self) -> tuple[int, int]:
        """Model copying the slice out of its backing buffer.

        Returns ``(offset, nbytes)`` and charges one copy against the
        buffer — the operation the flat framing path never performs.
        """
        self.buf.copies += 1
        return (self.offset, self.nbytes)


@dataclass(frozen=True)
class Chunk:
    """One content-addressed piece of a checkpoint image.

    ``view`` — the chunk's :class:`BufferSlice` into the image's backing
    buffer — is transport bookkeeping: excluded from equality and repr so
    content addressing stays purely digest-driven (two images producing
    an identical region chunk still dedup although their views differ).
    """

    digest: int
    nbytes: int
    payload: Any  # ("mem", idx, version) | ("sav", entries) | ("hdr", ...) | ("pad",)
    view: Optional[BufferSlice] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Manifest:
    """The recipe for one checkpoint image: ordered chunk references."""

    rank: int
    seq: int
    image_bytes: int
    chunks: tuple[ChunkRef, ...]

    @property
    def digests(self) -> tuple[int, ...]:
        """The referenced chunk digests, in image order."""
        return tuple(ref.digest for ref in self.chunks)

    @property
    def wire_bytes(self) -> int:
        """Transfer size of the manifest record itself."""
        return 64 + 16 * len(self.chunks)


def _saved_chunk(dst: int, group: list, gbytes: int) -> Chunk:
    ident = tuple(
        (env.src, sclock, env.tag, env.context, env.nbytes)
        for sclock, env in group
    )
    return Chunk(
        stable_digest("sav", dst, ident),
        gbytes,
        ("sav", tuple((dst, sclock, env) for sclock, env in group)),
    )


def chunk_image(
    image: CheckpointImage, chunk_bytes: int
) -> tuple[Manifest, dict[int, Chunk]]:
    """Split ``image`` into a manifest plus content-addressed chunks.

    Returns ``(manifest, chunks)`` where ``chunks`` maps digest to
    :class:`Chunk`.  Deterministic: the same image yields the same
    manifest and digests on every call.
    """
    chunk_bytes = max(1, int(chunk_bytes))
    out: list[Chunk] = []

    # 1. application memory, on the fixed region grid of the dirty model
    regions = image.regions
    left, idx = image.app_footprint, 0
    while left > 0:
        nbytes = min(chunk_bytes, left)
        version = regions[idx] if idx < len(regions) else 0
        out.append(
            Chunk(
                stable_digest("mem", image.rank, idx, version, nbytes),
                nbytes,
                ("mem", idx, version),
            )
        )
        left -= nbytes
        idx += 1

    # 2. sender-log payloads, grouped per destination and sclock window
    by_dst: dict[int, list] = {}
    for dst, sclock, env in image.saved:
        by_dst.setdefault(dst, []).append((sclock, env))
    for dst in sorted(by_dst):
        group: list = []
        gbytes = 0
        gwindow = None
        for sclock, env in sorted(by_dst[dst], key=lambda t: t[0]):
            window = sclock // SAVED_WINDOW
            ebytes = env.nbytes
            if group and (window != gwindow or gbytes + ebytes > chunk_bytes):
                out.append(_saved_chunk(dst, group, gbytes))
                group, gbytes = [], 0
            gwindow = window
            if ebytes > chunk_bytes:
                # oversized payload: the first part carries the entry,
                # the rest are padding parts addressed by (entry, part)
                ident = (dst, env.src, sclock, env.tag, env.context, ebytes)
                sizes = segment_sizes(ebytes, chunk_bytes)
                out.append(
                    Chunk(
                        stable_digest("sav", *ident, 0),
                        sizes[0],
                        ("sav", ((dst, sclock, env),)),
                    )
                )
                for part, nbytes in enumerate(sizes[1:], start=1):
                    out.append(
                        Chunk(
                            stable_digest("sav", *ident, part),
                            nbytes,
                            ("pad",),
                        )
                    )
                continue
            group.append((sclock, env))
            gbytes += ebytes
        if group:
            out.append(_saved_chunk(dst, group, gbytes))

    # 3. the process header: sequences, clocks, and the delivery log
    # (the delivery log rides in the header payload — like the paper's
    # whole-image transfer, its bytes are not part of image_bytes)
    hdr_ident = (
        image.rank,
        image.seq,
        image.op_count,
        image.clock.send_seq,
        image.clock.recv_seq,
        len(image.delivery_log),
        len(image.saved),
    )
    hdr_payload = (
        "hdr",
        image.rank,
        image.seq,
        image.op_count,
        image.clock,
        tuple(image.delivery_log),
        image.app_footprint,
        tuple(image.regions),
    )
    sizes = segment_sizes(HEADER_BYTES, chunk_bytes)
    out.append(Chunk(stable_digest("hdr", *hdr_ident, 0), sizes[0], hdr_payload))
    for part, nbytes in enumerate(sizes[1:], start=1):
        out.append(Chunk(stable_digest("hdr", *hdr_ident, part), nbytes, ("pad",)))

    # 4. one backing buffer for the whole serialized image: each chunk
    # carries a slice of it (image order → running offsets), so the
    # push/fetch paths hand references around instead of copies
    buf = ImageBuffer(image.rank, image.seq, image.image_bytes)
    offset = 0
    viewed: list[Chunk] = []
    for c in out:
        viewed.append(
            Chunk(c.digest, c.nbytes, c.payload, BufferSlice(buf, offset, c.nbytes))
        )
        offset += c.nbytes

    manifest = Manifest(
        rank=image.rank,
        seq=image.seq,
        image_bytes=image.image_bytes,
        chunks=tuple(ChunkRef(c.digest, c.nbytes) for c in viewed),
    )
    return manifest, {c.digest: c for c in viewed}


def assemble_image(
    manifest: Manifest, chunks: Mapping[int, Chunk]
) -> CheckpointImage:
    """Rebuild a :class:`CheckpointImage` from a manifest and a chunk map.

    ``chunks`` may be any superset of the manifest's chunks (a replica's
    whole store, or a restart fetch's accumulated set).  Raises
    ``KeyError`` when a referenced chunk is missing — an incomplete
    manifest must never be served as an image.
    """
    from ..core.replay import CheckpointImage

    hdr = None
    saved: list = []
    for ref in manifest.chunks:
        payload = chunks[ref.digest].payload
        kind = payload[0]
        if kind == "hdr":
            hdr = payload
        elif kind == "sav":
            saved.extend(payload[1])
    if hdr is None:
        raise KeyError(f"manifest r{manifest.rank}/seq{manifest.seq} has no header chunk")
    _, rank, seq, op_count, clock, delivery_log, app_footprint, regions = hdr
    saved.sort(key=lambda t: (t[0], t[1]))
    return CheckpointImage(
        rank=rank,
        seq=seq,
        op_count=op_count,
        clock=clock,
        saved=list(saved),
        delivery_log=list(delivery_log),
        app_footprint=app_footprint,
        regions=tuple(regions),
    )
