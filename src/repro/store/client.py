"""The daemon-side client of the replicated checkpoint store.

Two jobs, both running over persistent per-replica
:class:`~repro.runtime.session.Session` links (one framed, reconnecting
stream per replica, shared by every push and fetch this incarnation
makes):

* **quorum push** — stream the image's chunks to every replica
  concurrently; the push is durable (and the daemon may GC its sender
  log, prune the event logger, and report CKPT_DONE) as soon as
  ``ckpt_replicas`` replicas acknowledge a complete COMMIT.  Stragglers
  keep filling in the background; a replica that dies mid-push simply
  fails its leg — durability already came from the quorum.  In
  incremental mode the client first asks each replica which chunk
  digests it is missing (HAVE → MISSING) and streams only those, which
  is where content addressing turns into bytes saved.

* **streamed restart fetch** — probe every replica for its newest
  sequence (HEAD), fetch from the best one, and accumulate chunks as
  they arrive.  If that replica dies mid-stream, the chunks already
  received are kept and the retry (against the next-best live replica)
  asks only for the rest — a mid-restart failover moves the tail of the
  transfer, not the whole image.

Because the stream to each replica is shared, push legs serialize per
replica: overlapping pushes (periodic-mode scheduling can order a new
checkpoint while a straggler leg is still streaming) would otherwise
interleave their records and replies.  The serialization is a chained
future per replica that costs no yield when uncontended.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import ConnectionRefused, Fabric
from ..runtime.retry import RetryPolicy
from ..runtime.session import Session
from ..simnet.kernel import Future, Simulator
from ..simnet.node import Host, HostDown
from ..simnet.streams import Disconnected
from ..simnet.trace import Tracer
from .chunks import Chunk, Manifest, assemble_image

if TYPE_CHECKING:  # lazy: core.v2_device sits between this package and core
    from ..core.replay import CheckpointImage

__all__ = ["StoreClient"]


class StoreClient:
    """One rank's interface to the replicated checkpoint store."""

    def __init__(
        self,
        sim: Simulator,
        cfg: TestbedConfig,
        fabric: Fabric,
        host: Host,
        names: tuple[str, ...],
        rank: int,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        rng: Optional[Any] = None,
        on_retry: Optional[Callable[[int, float], None]] = None,
        key: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.cfg = cfg
        self.fabric = fabric
        self.host = host
        self.names = tuple(names)
        self.rank = rank
        #: the identity images are stored under on the (possibly shared)
        #: replicas: the bare rank alone, a job-qualified key under the
        #: control plane.  Manifests carry the same key in their ``rank``
        #: field, so HEAD/FETCH and GC floors select this job's images.
        self.key = rank if key is None else key
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._rng = rng
        self._on_retry = on_retry
        #: write quorum: how many complete COMMITs make a push durable
        self.quorum = max(1, min(cfg.ckpt_replicas, len(self.names)))
        #: why the last failed push failed ("refused" | "disconnected")
        self.last_push_why = "refused"
        self._metrics = metrics if metrics is not None else Metrics()
        m = self._metrics
        self._m_push_bytes = m.counter("store.push_bytes", rank=rank)
        self._m_dedup_bytes = m.counter("store.dedup_bytes", rank=rank)
        self._m_quorum_s = m.histogram("store.quorum_s", rank=rank)
        self._m_failover = m.counter("store.failover", rank=rank)
        self._m_fetch_bytes = m.counter("store.fetch_bytes", rank=rank)
        self._sessions: dict[str, Session] = {}
        # replica name -> tail of the push-leg chain (the per-stream lock)
        self._push_tail: dict[str, Future] = {}

    def _session(self, name: str) -> Session:
        """The (lazily created) persistent session to one replica."""
        sess = self._sessions.get(name)
        if sess is None:
            sess = Session(
                self.sim, self.fabric, self.host, name,
                window=self.cfg.stream_window,
                policy=RetryPolicy.from_config(
                    self.cfg, max_tries=self.cfg.cs_fetch_tries
                ),
                rng=self._rng, on_retry=self._on_retry,
                tracer=self.tracer, metrics=self._metrics,
                scope="store", labels={"rank": self.rank},
            )
            self._sessions[name] = sess
        return sess

    def _spawn(self, gen, label: str) -> None:
        p = self.sim.spawn(gen, name=f"store.c{self.rank}.{label}", supervised=False)
        self.host.register(p)

    def _note_retry(self, attempt: int, delay: float) -> None:
        if self._on_retry is not None:
            self._on_retry(attempt, delay)

    # ------------------------------------------------------------------
    # quorum push
    # ------------------------------------------------------------------
    def push(
        self, manifest: Manifest, chunks: dict[int, Chunk], incremental: bool
    ) -> Generator[Future, Any, bool]:
        """Push one checkpoint to the replica set; True once K committed.

        Resolves as soon as the write quorum is reached (remaining
        replicas continue in the background) or once enough legs failed
        that the quorum has become unreachable.
        """
        t0 = self.sim.now
        done: Future = Future(self.sim, name=f"store.c{self.rank}.quorum")
        state = {"acks": 0, "fails": 0, "why": "refused"}
        n = len(self.names)
        need = self.quorum

        def leg_done(ok: bool, why: str) -> None:
            if ok:
                state["acks"] += 1
                if state["acks"] == need:
                    done.resolve_if_pending(True)
            else:
                state["fails"] += 1
                state["why"] = why
                if state["fails"] > n - need:
                    done.resolve_if_pending(False)

        for name in self.names:
            self._spawn(
                self._push_one(name, manifest, chunks, incremental, leg_done),
                f"push{manifest.seq}.{name}",
            )
        ok = yield done
        if ok:
            self._m_quorum_s.observe(self.sim.now - t0)
            self.tracer.emit(
                self.sim.now,
                "store.quorum",
                rank=self.rank,
                seq=manifest.seq,
                acks=state["acks"],
                quorum=need,
                replicas=n,
                wait_s=self.sim.now - t0,
            )
        else:
            self.last_push_why = state["why"]
        return ok

    def _push_one(
        self,
        name: str,
        manifest: Manifest,
        chunks: dict[int, Chunk],
        incremental: bool,
        leg_done: Callable[[bool, str], None],
    ):
        sess = self._session(name)
        # the replica stream is shared: a later push's leg must not start
        # until the previous leg on this replica is finished, or their
        # records and replies would interleave.  Chained-future lock;
        # the uncontended path does not yield.
        prev = self._push_tail.get(name)
        gate = Future(self.sim, name=f"store.c{self.rank}.leg.{name}")
        self._push_tail[name] = gate
        try:
            if prev is not None and not prev.done:
                yield prev
            try:
                if not sess.up():
                    # the connect sits inside the handler below: a leg woken
                    # by its predecessor's gate while the local host is
                    # crashing must fail cleanly, not crash the process
                    end = yield from sess.connect()
                    if end is None:
                        leg_done(False, "refused")
                        return
                send = list(manifest.digests)
                if incremental:
                    yield from sess.write(
                        16 + 8 * len(send), ("HAVE", manifest.rank, tuple(send))
                    )
                    reply = yield from sess.read_record()
                    missing = frozenset(reply[1])
                    skipped = sum(
                        ref.nbytes
                        for ref in manifest.chunks
                        if ref.digest not in missing
                    )
                    self._m_dedup_bytes.inc(skipped)
                    send = [d for d in send if d in missing]
                yield from self._send_chunks(
                    sess, (chunks[d] for d in dict.fromkeys(send))
                )
                for _ in range(2):  # COMMIT, once more if a GC raced the chunks
                    yield from sess.write(manifest.wire_bytes, ("COMMIT", manifest))
                    ack = yield from sess.read_record()
                    if ack[0] == "STORED":
                        leg_done(True, "")
                        return
                    # INCOMPLETE: re-send the holes and commit again
                    yield from self._send_chunks(sess, (chunks[d] for d in ack[1]))
                leg_done(False, "disconnected")
            except (Disconnected, HostDown):
                # a replica dying mid-push fails this leg only; durability is
                # the quorum's job, and the scheduler re-orders on total loss
                sess.drop()
                leg_done(False, "disconnected")
        finally:
            if self._push_tail.get(name) is gate:
                del self._push_tail[name]
            gate.resolve_if_pending(True)

    def _send_chunks(self, sess: Session, chunks) -> Generator[Future, Any, None]:
        for chunk in chunks:
            yield from sess.write_frame(
                max(1, chunk.nbytes), ("CHUNK", chunk), mtu=self.cfg.chunk_bytes
            )
            self._m_push_bytes.inc(chunk.nbytes)

    # ------------------------------------------------------------------
    # streamed restart fetch
    # ------------------------------------------------------------------
    def fetch(self) -> Generator[Future, Any, Optional[CheckpointImage]]:
        """Fetch this rank's newest image from any live replica.

        Accumulated chunks survive a mid-stream replica crash: the next
        attempt (on another replica) requests only what is still
        missing.  Returns ``None`` when no replica holds an image (or
        the whole retry budget drains) — restart-from-scratch, exactly
        as a lost single server always meant.

        The fetch needs no stream lock: it runs during recovery, before
        this incarnation's first push can be ordered.
        """
        policy = RetryPolicy.from_config(self.cfg, max_tries=self.cfg.cs_fetch_tries)
        have: dict[int, Chunk] = {}
        failed_over = False
        t_start = self.sim.now
        n_failovers = n_retries = 0
        self.tracer.emit(t_start, "store.fetch_start", rank=self.rank)

        def _done(found: bool) -> None:
            # one completion marker per fetch, on every exit path, so the
            # recovery timeline can attribute the restore window
            self.tracer.emit(
                self.sim.now, "store.fetch_done", rank=self.rank,
                found=found, bytes=sum(c.nbytes for c in have.values()),
                chunks=len(have), failovers=n_failovers, retries=n_retries,
                wait_s=self.sim.now - t_start,
            )

        for attempt in range(policy.max_tries):
            # probe every replica for its newest sequence; fetch the best
            best_name: Optional[str] = None
            best_sess: Optional[Session] = None
            best_seq, refused = 0, 0
            for name in self.names:
                sess = self._session(name)
                if not sess.up():
                    try:
                        sess.connect_now()
                    except ConnectionRefused:
                        refused += 1
                        continue
                try:
                    yield from sess.write(16, ("HEAD", self.key))
                    reply = yield from sess.read_record()
                except Disconnected:
                    sess.drop()
                    refused += 1
                    continue
                if reply[1] > best_seq:
                    best_name, best_sess, best_seq = name, sess, reply[1]
            if best_name is None:
                if refused < len(self.names):
                    _done(False)
                    return None  # replicas answered; none has an image
                delay = policy.delay(attempt, self._rng)
                self._note_retry(attempt, delay)
                n_retries += 1
                yield self.sim.pause(delay)
                continue
            if refused and not failed_over:
                # the preferred replica set is degraded: record that this
                # restart is being served by a failover target
                failed_over = True
                self._m_failover.inc()
                n_failovers += 1
                self.tracer.emit(
                    self.sim.now, "store.failover", rank=self.rank,
                    serving=best_name, dead=refused, mode="probe",
                )
            sess = best_sess
            desync = False
            try:
                yield from sess.write(
                    16 + 8 * len(have),
                    ("FETCH", self.key, best_seq, tuple(have)),
                )
                reply = yield from sess.read_record()
                if reply[0] == "NONE":
                    continue  # wiped between probe and fetch; re-probe
                manifest: Manifest = reply[1]
                needed = set(manifest.digests) - set(have)
                while needed:
                    msg = yield from sess.read_record()
                    if msg[0] != "CHUNK":
                        desync = True  # truncated stream; retry fills the rest
                        break
                    chunk = msg[1]
                    have[chunk.digest] = chunk
                    self._m_fetch_bytes.inc(chunk.nbytes)
                    needed.discard(chunk.digest)
                if needed:
                    continue
                _done(True)
                return assemble_image(manifest, have)
            except (Disconnected, HostDown):
                # mid-stream crash: keep what arrived, fail over
                sess.drop()
                if not failed_over:
                    failed_over = True
                self._m_failover.inc()
                n_failovers += 1
                self.tracer.emit(
                    self.sim.now, "store.failover", rank=self.rank,
                    serving=best_name, dead=refused, mode="midstream",
                    chunks_kept=len(have),
                )
                delay = policy.delay(attempt, self._rng)
                self._note_retry(attempt, delay)
                n_retries += 1
                yield self.sim.pause(delay)
            finally:
                if desync and sess.end is not None:
                    # the replica may still be streaming the rest of the
                    # old transfer: the stream is out of sync with the
                    # protocol and cannot be reused
                    end = sess.end
                    sess.drop()
                    if not end.stream.dead:
                        end.stream.break_both("fetch-desync")
        _done(False)
        return None
