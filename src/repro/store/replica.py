"""One replica of the content-addressed checkpoint store.

Each replica is an independent checkpoint server holding a chunk store
(digest → :class:`~repro.store.chunks.Chunk`) and the committed
manifests per rank.  Chunks arrive individually and idempotently; a
manifest lands only on an explicit COMMIT naming every chunk it needs,
so a client crashing mid-push leaves at worst orphan chunks (reclaimed
by the next GC epoch) and never a half-image — the durability property
the paper's single Checkpoint Server had, kept per replica.

Wire protocol (framed as typed records; a bare ``None`` is an in-flight
segment of a chunked transfer, everything else must be a tagged tuple —
malformed records are rejected with a logged ``store.protocol_error``
instead of being silently treated as payload):

===========================================  ================================
client → replica                             replica → client
===========================================  ================================
``("HAVE", rank, digests)``                  ``("MISSING", digests)``
``("CHUNK", chunk)`` (after size segments)   —
``("COMMIT", manifest)``                     ``("STORED", rank, seq)`` or
                                             ``("INCOMPLETE", digests)``
``("HEAD", rank)``                           ``("LATEST", seq)`` (0 = none)
``("FETCH", rank, seq, have_digests)``       ``("MANIFEST", manifest)`` then
                                             the missing chunks, or ``("NONE",)``
``("GC", {rank: keep_seq})``                 —
===========================================  ================================

GC keeps, per rank, every manifest with ``seq >= keep_seq`` (the
checkpoint scheduler broadcasts each rank's latest *quorum-complete*
sequence), then drops every chunk no surviving manifest references —
chunks dedup across manifests and across ranks, so reference counting is
global over the replica's surviving manifests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs.registry import Metrics
from ..runtime.config import TestbedConfig
from ..runtime.fabric import Fabric
from ..runtime.session import ServiceBase
from ..simnet.kernel import Simulator
from ..simnet.node import Host
from ..simnet.streams import Disconnected, StreamEnd
from ..simnet.trace import Tracer
from .chunks import Chunk, Manifest, assemble_image

if TYPE_CHECKING:  # lazy: core.v2_device sits between this package and core
    from ..core.replay import CheckpointImage

__all__ = ["StoreReplica"]


class StoreReplica(ServiceBase):
    """One checkpoint-store replica (a generalized checkpoint server)."""

    metric_ns = "store"

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fabric: Fabric,
        cfg: TestbedConfig,
        name: str = "cs:0",
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        mutations: Optional[frozenset] = None,
    ) -> None:
        super().__init__(sim, host, fabric, name, tracer=tracer, metrics=metrics)
        self.cfg = cfg
        #: test-only sabotage (``premature_store_gc``): GC one sequence past
        #: the scheduler's epoch, dropping a latest quorum-complete manifest
        #: — the auditor's ``store-gc`` rule must catch the reclaim
        self.mutations = frozenset(mutations or ())
        m = self.metrics
        self._m_stores = m.counter("cs.stores", server=name)
        self._m_fetches = m.counter("cs.fetches", server=name)
        self._m_bytes = m.counter("cs.bytes_stored", server=name)
        self._m_chunks = m.counter("store.chunks_received", server=name)
        self._m_chunk_bytes = m.counter("store.chunk_bytes", server=name)
        self._m_gc_bytes = m.counter("store.gc_reclaimed_bytes", server=name)
        self.chunks: dict[int, Chunk] = {}
        self.manifests: dict[int, dict[int, Manifest]] = {}  # rank -> seq -> manifest
        self.stores = 0  # committed manifests
        self.fetches = 0

    # -- lifecycle ----------------------------------------------------------
    def stop(self, cause: object = "cs-crash") -> None:
        """Service-level crash: drop the listener and every connection.

        Uncommitted chunks of an in-flight push survive (they are
        content-addressed and idempotent), but without their COMMIT they
        reference nothing and the next GC epoch reclaims them — the
        previous complete manifest for each rank stays intact.
        """
        super().stop(cause)

    def wipe(self) -> None:
        """Forget everything (a global restart wiped the job's history)."""
        self.chunks.clear()
        self.manifests.clear()

    # -- the serve loop -----------------------------------------------------
    def _serve(self, end: StreamEnd, hello: object = None):
        while True:
            try:
                msg = yield from self._read_record(end)
            except Disconnected:
                return
            kind = msg[0]
            try:
                if kind == "HAVE":
                    if len(msg) != 3:
                        self._protocol_error("malformed HAVE")
                        continue
                    missing = tuple(d for d in msg[2] if d not in self.chunks)
                    yield from end.write(16 + 8 * len(missing), ("MISSING", missing))
                elif kind == "CHUNK":
                    if len(msg) != 2 or not isinstance(msg[1], Chunk):
                        self._protocol_error("malformed CHUNK")
                        continue
                    chunk = msg[1]
                    if chunk.digest not in self.chunks:
                        self.chunks[chunk.digest] = chunk
                        self._m_chunks.inc()
                        self._m_chunk_bytes.inc(chunk.nbytes)
                elif kind == "COMMIT":
                    if len(msg) != 2 or not isinstance(msg[1], Manifest):
                        self._protocol_error("malformed COMMIT")
                        continue
                    yield from self._commit(end, msg[1])
                elif kind == "HEAD":
                    if len(msg) != 2:
                        self._protocol_error("malformed HEAD")
                        continue
                    per = self.manifests.get(msg[1])
                    yield from end.write(16, ("LATEST", max(per) if per else 0))
                elif kind == "FETCH":
                    if len(msg) != 4:
                        self._protocol_error("malformed FETCH")
                        continue
                    yield from self._fetch(end, msg[1], msg[2], frozenset(msg[3]))
                elif kind == "GC":
                    if len(msg) != 2 or not isinstance(msg[1], dict):
                        self._protocol_error("malformed GC")
                        continue
                    self._collect(msg[1])
                else:
                    self._protocol_error(f"unknown record {kind!r}")
            except Disconnected:
                return

    def _commit(self, end: StreamEnd, manifest: Manifest):
        missing = tuple(
            d for d in manifest.digests if d not in self.chunks
        )
        if missing:
            # a concurrent GC epoch reclaimed orphan chunks of this push
            # (or the client never sent them): refuse, naming the holes
            yield from end.write(16 + 8 * len(missing), ("INCOMPLETE", missing))
            return
        per = self.manifests.setdefault(manifest.rank, {})
        per[manifest.seq] = manifest
        self.stores += 1
        self._m_stores.inc()
        self._m_bytes.inc(manifest.image_bytes)
        self.tracer.emit(
            self.sim.now,
            "store.commit",
            server=self.name,
            rank=manifest.rank,
            seq=manifest.seq,
            nbytes=manifest.image_bytes,
            chunks=len(manifest.chunks),
            digests=manifest.digests,
        )
        yield from end.write(16, ("STORED", manifest.rank, manifest.seq))

    def _fetch(self, end: StreamEnd, rank: int, seq: int, have: frozenset):
        self.fetches += 1
        self._m_fetches.inc()
        per = self.manifests.get(rank)
        if not per:
            yield from end.write(16, ("NONE",))
            return
        manifest = per.get(seq) if seq else None
        if manifest is None:
            manifest = per[max(per)]
        yield from end.write(manifest.wire_bytes, ("MANIFEST", manifest))
        sent = set()
        for ref in manifest.chunks:
            if ref.digest in have or ref.digest in sent:
                continue
            sent.add(ref.digest)
            chunk = self.chunks[ref.digest]
            yield from end.write_frame(
                max(1, chunk.nbytes), ("CHUNK", chunk), mtu=self.cfg.chunk_bytes
            )

    # -- garbage collection -------------------------------------------------
    def _collect(self, keep: dict[int, int]) -> None:
        """Apply one GC epoch: per-rank manifest floors, then chunk sweep."""
        dropped = 0
        for rank, floor in keep.items():
            if "premature_store_gc" in self.mutations:
                floor = floor + 1  # test-only: reclaim past the quorum epoch
            per = self.manifests.get(rank)
            if not per:
                continue
            for seq in [s for s in per if s < floor]:
                del per[seq]
                dropped += 1
        referenced = {
            ref.digest
            for per in self.manifests.values()
            for man in per.values()
            for ref in man.chunks
        }
        freed: list[int] = []
        freed_bytes = 0
        for digest in list(self.chunks):
            if digest not in referenced:
                freed_bytes += self.chunks[digest].nbytes
                freed.append(digest)
                del self.chunks[digest]
        if not dropped and not freed:
            return
        self._m_gc_bytes.inc(freed_bytes)
        self.tracer.emit(
            self.sim.now,
            "store.gc",
            server=self.name,
            manifests_dropped=dropped,
            freed=len(freed),
            nbytes=freed_bytes,
            digests=tuple(freed),
        )

    def evict(self, ranks) -> None:
        """Drop every manifest of the given rank keys (job reclaim).

        The control plane calls this when a job finishes: its images will
        never be fetched again, so all its manifests fall below an
        infinite floor and the reference-counting chunk sweep frees
        whatever no surviving (co-resident) manifest still names.
        """
        self._collect({r: 1 << 62 for r in ranks})
        for r in ranks:
            if not self.manifests.get(r):
                self.manifests.pop(r, None)

    # -- diagnostics --------------------------------------------------------
    def latest(self, rank: int) -> Optional[CheckpointImage]:
        """The most recent complete image for ``rank``, if any."""
        per = self.manifests.get(rank)
        if not per:
            return None
        try:
            return assemble_image(per[max(per)], self.chunks)
        except KeyError:  # pragma: no cover - commits verify completeness
            return None

    @property
    def images(self) -> dict[int, CheckpointImage]:
        """Each rank's latest complete image, assembled on demand.

        The pre-store :class:`CheckpointServer` kept this dict directly;
        tests and diagnostics still read it.
        """
        out: dict[int, CheckpointImage] = {}
        for rank in self.manifests:
            image = self.latest(rank)
            if image is not None:
                out[rank] = image
        return out
