"""Workloads: NPB 2.3 proxies and the paper's microbenchmarks."""

from . import nas
from .collect import collective_bench
from .pingpong import pingpong
from .synthetic import burst_pingpong
from .token_ring import token_ring

__all__ = [
    "nas",
    "collective_bench",
    "pingpong",
    "burst_pingpong",
    "token_ring",
]
