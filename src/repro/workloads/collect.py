"""Collective-operation microbenchmarks (ablation support).

Times one collective across the whole job: the paper's NAS analysis
attributes CG/MG's V2 penalty to small-message latency amplified through
reduction trees; this workload isolates that effect per collective.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["collective_bench"]


def collective_bench(
    mpi,
    op: str = "allreduce",
    nbytes: int = 8,
    reps: int = 20,
    warmup: int = 2,
    fenced: bool = False,
) -> Generator[Any, Any, float]:
    """Returns mean seconds per collective invocation.

    With ``fenced=True`` a barrier separates repetitions, so rooted
    collectives (bcast/scatter) measure completion latency rather than
    pipelined throughput; subtract a separately measured barrier time.
    """
    async_ops = {
        "barrier": lambda: mpi.barrier(),
        "bcast": lambda: mpi.bcast(root=0, nbytes=nbytes, data=0.0),
        "reduce": lambda: mpi.reduce(root=0, value=1.0, nbytes=nbytes),
        "allreduce": lambda: mpi.allreduce(value=1.0, nbytes=nbytes),
        "allgather": lambda: mpi.allgather(value=1.0, nbytes=nbytes),
        "alltoall": lambda: mpi.alltoall(
            [None] * mpi.size, nbytes_each=nbytes
        ),
    }
    if op not in async_ops:
        raise ValueError(f"unknown collective {op!r}")
    run = async_ops[op]
    for _ in range(warmup):
        yield from run()
        if fenced:
            yield from mpi.barrier()
    t0 = mpi.sim.now
    for _ in range(reps):
        yield from run()
        if fenced:
            yield from mpi.barrier()
    return (mpi.sim.now - t0) / reps
