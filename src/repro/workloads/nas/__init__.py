"""NAS Parallel Benchmark 2.3 proxies (CG, MG, FT, LU, BT, SP)."""

from . import bt, cg, ft, lu, mg, sp
from .common import KernelSpec, NasResult

KERNELS = {
    "cg": cg,
    "mg": mg,
    "ft": ft,
    "lu": lu,
    "bt": bt,
    "sp": sp,
}

#: kernels restricted to square process counts (multi-partition scheme)
SQUARE_ONLY = ("bt", "sp")

__all__ = ["KERNELS", "SQUARE_ONLY", "KernelSpec", "NasResult"]
