"""NPB BT proxy: block-tridiagonal ADI solver, the V2-friendly extreme.

Pattern (NPB 2.3): BT runs on square process counts with the
multi-partition decomposition; each iteration sweeps the three
dimensions, each sweep pipelining sqrt(p) stages of nonblocking
isend/irecv/waitall exchanges of medium-large faces, with substantial
computation in between.  Large messages + nonblocking overlap is exactly
where the paper shows MPICH-V2 matching or *beating* MPICH-P4
(Figures 7-9, Table 1): the V2 daemon transmits in the background and
keeps both link directions busy, while P4 pays for payload pushes inside
MPI_Isend and serializes bidirectional traffic.

Class T carries real face vectors and returns a checksum.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from .common import KernelSpec, NasResult

__all__ = ["SPECS", "program", "spec", "square_side"]

SPECS = {
    "T": KernelSpec("bt", "T", 1.0e6, 3, 1 << 20),
    "S": KernelSpec("bt", "S", 3.0e9, 60, 40 << 20),
    "A": KernelSpec("bt", "A", 1.683e11, 200, 300 << 20),
    "B": KernelSpec("bt", "B", 7.215e11, 200, 1200 << 20),
    "C": KernelSpec("bt", "C", 2.8765e12, 200, 4800 << 20),
}

_DIM = {"T": 12, "S": 36, "A": 64, "B": 102, "C": 162}


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def square_side(p: int) -> int:
    """BT/SP require square process counts (1, 4, 9, 16, 25, ...)."""
    side = int(round(np.sqrt(p)))
    if side * side != p:
        raise ValueError(f"BT/SP need a square process count, got {p}")
    return side


def program(mpi, klass: str = "A") -> Generator[Any, Any, NasResult]:
    """The BT proxy program (square process counts)."""
    result = yield from adi_program(
        mpi, SPECS[klass], _DIM[klass], face_scale=5.0
    )
    return result


def adi_program(
    mpi, sp: KernelSpec, dim: int, face_scale: float
) -> Generator[Any, Any, NasResult]:
    """The shared multi-partition ADI driver (BT and SP)."""
    p = mpi.size
    side = square_side(p)
    mpi.set_footprint(sp.footprint_per_proc(p))
    verify = sp.klass == "T"

    iters = sp.iters
    face_bytes = max(256, int(5 * 8 * (dim / side) ** 2 * face_scale))
    stages = side
    flops_per_iter = sp.total_flops / sp.iters / p

    value = float(mpi.rank + 1)
    checksum = 0.0

    for it in range(iters):
        for direction in range(3):
            stride = 1 if direction == 0 else (side if direction == 1 else side + 1)
            fwd = (mpi.rank + stride) % p
            bwd = (mpi.rank - stride) % p
            for stage in range(stages):
                yield from mpi.compute(flops=flops_per_iter / (3 * stages))
                if fwd == mpi.rank:
                    continue
                tag = direction * 100 + stage
                payload = value if verify else None
                s1 = yield from mpi.isend(fwd, nbytes=face_bytes, tag=tag, data=payload)
                s2 = yield from mpi.isend(bwd, nbytes=face_bytes, tag=tag + 50, data=payload)
                r1 = yield from mpi.irecv(source=bwd, tag=tag)
                r2 = yield from mpi.irecv(source=fwd, tag=tag + 50)
                yield from mpi.waitall([s1, s2, r1, r2])
                if verify:
                    value = 0.5 * value + 0.25 * (r1.message.data + r2.message.data)
        if verify:
            total = yield from mpi.allreduce(value=value, nbytes=8)
            checksum += total
    return NasResult(
        kernel=sp.name, klass=sp.klass, nprocs=p,
        checksum=round(checksum, 6) if verify else None,
    )
