"""NPB CG proxy: conjugate gradient, irregular memory access, small messages.

Pattern (NPB 2.3): processes form a 2-D grid; every CG inner iteration
performs a sparse matrix-vector product whose row sums are combined by
log2(ncols) pairwise exchanges of vector segments along the grid row,
plus a transpose send, plus two 8-byte dot-product all-reduces.  With
thousands of small messages per second, CG is the latency-bound extreme
of the suite — the kernel on which the paper measures MPICH-V2 at about
3x the communication time of MPICH-P4 (Table 1, Figure 8).

Class T carries real numpy segments and returns a checksum.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from .common import KernelSpec, NasResult, grid_2d

__all__ = ["SPECS", "program", "spec"]

SPECS = {
    # name, class, total flops, outer iterations, aggregate memory
    "T": KernelSpec("cg", "T", 1.0e6, 3, 1 << 20),
    "S": KernelSpec("cg", "S", 6.4e7, 15, 20 << 20),
    "A": KernelSpec("cg", "A", 1.508e9, 15, 60 << 20),
    "B": KernelSpec("cg", "B", 5.489e10, 75, 320 << 20),
    "C": KernelSpec("cg", "C", 1.433e11, 75, 1100 << 20),
}

_N = {"T": 64, "S": 1400, "A": 14000, "B": 75000, "C": 150000}
_INNER = 25  # CG iterations inside every outer iteration (NPB conj_grad)


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def program(
    mpi, klass: str = "A"
) -> Generator[Any, Any, NasResult]:
    """The CG proxy program (run one instance per rank)."""
    sp = SPECS[klass]
    n = _N[klass]
    p = mpi.size
    row, col, nrows, ncols = grid_2d(mpi.rank, p)
    mpi.set_footprint(sp.footprint_per_proc(p))

    seg_bytes = max(64, 8 * n // max(1, p))
    verify = klass == "T"
    x = local_m = None
    if verify:
        # deterministic local operator (same on every rank for clean math)
        local_m = np.fromfunction(
            lambda i, j: 1.0 / (1.0 + i + 2 * j), (8, 8)
        )
        x = np.ones(8)

    matvecs_per_outer = _INNER + 1
    total_matvecs = sp.iters * matvecs_per_outer
    flops_per_matvec = sp.total_flops / total_matvecs / p
    checksum = 0.0

    for outer in range(sp.iters):
        for inner in range(matvecs_per_outer):
            # local sparse matvec
            if verify:
                x = local_m @ x
                x /= np.max(np.abs(x)) + 1e-12
            yield from mpi.compute(flops=flops_per_matvec)
            # row-wise reduction of partial sums: log2(ncols) exchanges
            # (isend/irecv/waitall, the calls Table 1 decomposes)
            step = 1
            while step < ncols:
                peer_col = col ^ step
                if peer_col < ncols:
                    peer = row * ncols + peer_col
                    payload = x if verify else None
                    tag = outer * 100 + inner
                    sreq = yield from mpi.isend(
                        peer, nbytes=seg_bytes, tag=tag, data=payload
                    )
                    rreq = yield from mpi.irecv(source=peer, tag=tag)
                    yield from mpi.waitall([sreq, rreq])
                    if verify:
                        x = 0.5 * (x + rreq.message.data)
                step <<= 1
            # transpose exchange (send the reduced segment to the
            # symmetric process in the grid)
            transpose = col * nrows + row if nrows == ncols else mpi.rank
            if transpose != mpi.rank and transpose < p:
                payload = x if verify else None
                sreq = yield from mpi.isend(
                    transpose, nbytes=seg_bytes, tag=9_000 + inner, data=payload
                )
                rreq = yield from mpi.irecv(source=transpose, tag=9_000 + inner)
                yield from mpi.waitall([sreq, rreq])
                if verify:
                    x = 0.5 * (x + rreq.message.data)
            # two dot-product all-reduces per CG iteration
            local_dot = float(np.dot(x, x)) if verify else 1.0
            rho = yield from mpi.allreduce(value=local_dot, nbytes=8)
            _alpha = yield from mpi.allreduce(value=local_dot * 0.5, nbytes=8)
            if verify:
                checksum += rho
    return NasResult(
        kernel="cg", klass=klass, nprocs=p,
        checksum=round(checksum, 6) if verify else None,
    )
