"""Shared infrastructure for the NAS Parallel Benchmark 2.3 proxies.

The paper evaluates MPICH-V2 on NPB 2.3 (CG, MG, FT, LU, BT, SP; classes
A and B, up to 32 processes).  We reproduce each kernel as a *proxy*:

* the **communication pattern** (who exchanges what, when, how big) is
  implemented for real over the MPI API, with per-class message sizes
  and counts derived from the published problem dimensions;
* the **computation** advances simulated time through a per-class FLOP
  model (published NPB operation counts divided by the sustained rate of
  the simulated Athlon node);
* class ``T`` ("tiny") runs the same code path with real numpy payloads
  and a numerical result, so tests can assert cross-device and
  fault/replay correctness of every kernel.

Class parameters follow NPB 2.3 (Bailey et al., NAS-95-020).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KernelSpec", "grid_2d", "nearest_pow2_factors", "NasResult"]


@dataclass(frozen=True)
class KernelSpec:
    """Per-class constants of one NPB kernel."""

    name: str
    klass: str
    total_flops: float  # published op count for the full benchmark
    iters: int
    footprint_total: int  # aggregate application memory in bytes

    def footprint_per_proc(self, p: int) -> int:
        """Per-process application memory at ``p`` ranks."""
        return int(self.footprint_total / p) + (1 << 20)


@dataclass
class NasResult:
    """What a kernel program returns on rank 0."""

    kernel: str
    klass: str
    nprocs: int
    checksum: Optional[float] = None  # set in verification (T) mode


def nearest_pow2_factors(p: int) -> tuple[int, int]:
    """Split p into the most square (rows, cols) power-of-two-ish factors."""
    best = (1, p)
    for rows in range(1, int(np.sqrt(p)) + 1):
        if p % rows == 0:
            best = (rows, p // rows)
    return best


def grid_2d(rank: int, p: int) -> tuple[int, int, int, int]:
    """(row, col, nrows, ncols) of ``rank`` in the 2-D process grid."""
    nrows, ncols = nearest_pow2_factors(p)
    return rank // ncols, rank % ncols, nrows, ncols
