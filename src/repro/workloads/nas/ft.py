"""NPB FT proxy: 3-D FFT, all-to-all transposes of large messages.

Pattern (NPB 2.3): each iteration evolves the spectrum and runs a 3-D
FFT whose distributed transpose is an all-to-all of the whole dataset —
``ntotal * 16 / p^2`` bytes per process pair.  Messages are large, so FT
is bandwidth-bound: MPICH-V2 matches MPICH-P4 on it (Figure 7).

The paper could not run FT class B: the sender-based payload log
outgrows the 2 GB (RAM+swap) budget — "checkpointing is recommended in
such a case not only for fault tolerance but also for removing logged
messages on the computing nodes".  The same overflow is raised here (a
:class:`~repro.core.sender_log.LogOverflow`) when class B runs on few
processes with checkpointing disabled.

Class T moves real complex segments and returns an FFT checksum.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from .common import KernelSpec, NasResult

__all__ = ["SPECS", "program", "spec"]

SPECS = {
    "T": KernelSpec("ft", "T", 1.0e6, 2, 1 << 20),
    "S": KernelSpec("ft", "S", 2.0e8, 6, 60 << 20),
    "A": KernelSpec("ft", "A", 7.16e9, 6, 420 << 20),
    "B": KernelSpec("ft", "B", 9.236e10, 20, 1700 << 20),
    "C": KernelSpec("ft", "C", 3.902e11, 20, 6800 << 20),
}

_NTOTAL = {
    "T": 16 * 16 * 8,
    "S": 64 * 64 * 64,
    "A": 256 * 256 * 128,
    "B": 512 * 256 * 256,
    "C": 512 * 512 * 512,
}

#: transposes per iteration: forward + inverse FFT across the evolve step
_TRANSPOSES_PER_ITER = 2


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def program(mpi, klass: str = "A") -> Generator[Any, Any, NasResult]:
    """The FT proxy program."""
    sp = SPECS[klass]
    ntotal = _NTOTAL[klass]
    p = mpi.size
    mpi.set_footprint(sp.footprint_per_proc(p))
    verify = klass == "T"

    pair_bytes = max(256, ntotal * 16 // (p * p))
    flops_per_phase = sp.total_flops / sp.iters / _TRANSPOSES_PER_ITER / p

    if verify:
        rng = np.random.default_rng(77 + mpi.rank)
        local = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    checksum = 0.0

    for it in range(sp.iters):
        for phase in range(_TRANSPOSES_PER_ITER):
            # local 1-D FFTs before the transpose
            yield from mpi.compute(flops=flops_per_phase)
            if verify:
                local = np.fft.fft(local)
                local /= np.max(np.abs(local)) + 1e-12
                blocks = [local / p for _ in range(p)]
            else:
                blocks = [None] * p
            got = yield from mpi.alltoall(blocks, nbytes_each=pair_bytes)
            if verify:
                local = np.sum(
                    [g for g in got if g is not None], axis=0
                )
        # per-iteration checksum reduction
        local_sum = float(np.abs(local).sum()) if verify else 1.0
        total = yield from mpi.allreduce(value=local_sum, nbytes=16)
        if verify:
            checksum += total
    return NasResult(
        kernel="ft", klass=klass, nprocs=p,
        checksum=round(checksum, 6) if verify else None,
    )
