"""NPB LU proxy: SSOR wavefront sweeps, thousands of tiny messages.

Pattern (NPB 2.3): a 2-D process grid; the lower- and upper-triangular
sweeps pipeline over the k planes, each step sending small boundary
pencils (a few KB) to the south and east (resp. north and west)
neighbours.  LU emits by far the highest message *count* of the suite,
which on MPICH-V2 means one event-log round-trip worth of gating per
message plus daemon CPU stolen from the application — the paper singles
LU out: "the message logging daemon becomes a competitor of the MPI
process for CPU resources" and the payload log pushed the node into
disk storage (Figure 7's worst case for V2).

For simulation tractability the per-plane pipeline is coarsened into
``_PIPELINE_STEPS`` stages per sweep, with message sizes scaled to keep
the sweep's byte volume exact; the paper's effects (count-dominated
overhead, log growth) are preserved.  Class T carries real pencil data.
"""

from __future__ import annotations

from typing import Any, Generator


from .common import KernelSpec, NasResult, grid_2d

__all__ = ["SPECS", "program", "spec"]

SPECS = {
    "T": KernelSpec("lu", "T", 1.0e6, 3, 1 << 20),
    "S": KernelSpec("lu", "S", 1.0e9, 50, 15 << 20),
    "A": KernelSpec("lu", "A", 6.457e10, 250, 45 << 20),
    "B": KernelSpec("lu", "B", 3.196e11, 250, 180 << 20),
    "C": KernelSpec("lu", "C", 1.2275e12, 250, 720 << 20),
}

_DIM = {"T": 8, "S": 32, "A": 64, "B": 102, "C": 162}
_PIPELINE_STEPS = 63  # wavefront stages per sweep (per k-plane for class A)


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def program(mpi, klass: str = "A") -> Generator[Any, Any, NasResult]:
    """The LU proxy program."""
    sp = SPECS[klass]
    dim = _DIM[klass]
    p = mpi.size
    row, col, nrows, ncols = grid_2d(mpi.rank, p)
    mpi.set_footprint(sp.footprint_per_proc(p))
    verify = klass == "T"

    steps = min(_PIPELINE_STEPS, dim - 1)
    # boundary pencil: 5 variables x (dim/ncols) cells x 8 B, scaled by the
    # number of real planes folded into one coarsened stage
    pencil = max(64, int(5 * (dim / max(nrows, ncols)) * 8 * (dim / steps)))
    flops_per_iter = sp.total_flops / sp.iters / p

    south = (row + 1) * ncols + col if row + 1 < nrows else None
    north = (row - 1) * ncols + col if row - 1 >= 0 else None
    east = row * ncols + col + 1 if col + 1 < ncols else None
    west = row * ncols + col - 1 if col - 1 >= 0 else None

    value = float(mpi.rank + 1)
    checksum = 0.0

    for it in range(sp.iters):
        # two triangular sweeps per SSOR iteration
        for sweep, (recv_from, send_to) in enumerate(
            (((north, west), (south, east)), ((south, east), (north, west)))
        ):
            for k in range(steps):
                tag = sweep * 1000 + k
                for peer in recv_from:
                    if peer is not None:
                        msg = yield from mpi.recv(source=peer, tag=tag)
                        if verify and msg.data is not None:
                            value = 0.5 * value + 0.5 * msg.data
                yield from mpi.compute(flops=flops_per_iter / (2 * steps))
                for peer in send_to:
                    if peer is not None:
                        yield from mpi.send(
                            peer, nbytes=pencil, tag=tag,
                            data=value if verify else None,
                        )
        if it % 50 == 49 or verify:
            norm = yield from mpi.allreduce(
                value=value if verify else 1.0, nbytes=8
            )
            if verify:
                checksum += norm
    return NasResult(
        kernel="lu", klass=klass, nprocs=p,
        checksum=round(checksum, 6) if verify else None,
    )
