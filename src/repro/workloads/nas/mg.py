"""NPB MG proxy: multigrid V-cycles, shrinking neighbour exchanges.

Pattern (NPB 2.3): a 3-D process grid; every V-cycle walks the level
hierarchy (256^3 down to 2^3 for classes A/B), and at each level the
``comm3`` halo exchange sends one face per direction per axis.  Fine
levels move moderate messages; coarse levels move tiny ones, so MG —
like CG — is latency-sensitive, which is why MPICH-V2 trails MPICH-P4
on it (Figure 7).

Class T carries real face data and returns a checksum.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from .common import KernelSpec, NasResult

__all__ = ["SPECS", "program", "spec"]

SPECS = {
    "T": KernelSpec("mg", "T", 1.0e6, 2, 1 << 20),
    "S": KernelSpec("mg", "S", 8.0e7, 4, 30 << 20),
    "A": KernelSpec("mg", "A", 3.625e9, 4, 450 << 20),
    "B": KernelSpec("mg", "B", 1.816e10, 20, 450 << 20),
    "C": KernelSpec("mg", "C", 1.455e11, 20, 3600 << 20),
}

_DIM = {"T": 16, "S": 64, "A": 256, "B": 256, "C": 512}


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def _factor3(p: int) -> tuple[int, int, int]:
    """Split p into three near-equal factors (the NPB processor grid)."""
    best = (1, 1, p)
    for a in range(1, p + 1):
        if p % a:
            continue
        for b in range(a, p + 1):
            if (p // a) % b:
                continue
            c = p // a // b
            if c >= b:
                cand = (a, b, c)
                if max(cand) - min(cand) < max(best) - min(best):
                    best = cand
    return best


def program(mpi, klass: str = "A") -> Generator[Any, Any, NasResult]:
    """The MG proxy program."""
    sp = SPECS[klass]
    dim = _DIM[klass]
    p = mpi.size
    px, py, pz = _factor3(p)
    mpi.set_footprint(sp.footprint_per_proc(p))
    verify = klass == "T"

    levels = max(2, int(np.log2(dim)) - 1)
    # comm3 halo exchanges per level per V-cycle: NPB calls comm3 after
    # every smoother/residual/restriction application
    comm3_per_level = 3
    flops_per_cycle = sp.total_flops / sp.iters / p

    value = float(mpi.rank + 1)
    checksum = 0.0
    nbr = [(mpi.rank + d) % p for d in (1, -1, px, -px, px * py, -px * py)]

    for cycle in range(sp.iters):
        # descend and ascend the V-cycle
        for half, level_iter in (("down", range(levels, 0, -1)), ("up", range(1, levels + 1))):
            for level in level_iter:
                ld = max(2, dim >> (levels - level))
                # face sizes per axis in bytes (8 B doubles)
                faces = [
                    max(32, (ld // py) * (ld // pz) * 8),
                    max(32, (ld // px) * (ld // pz) * 8),
                    max(32, (ld // px) * (ld // py) * 8),
                ]
                for _ in range(comm3_per_level):
                    # NPB's comm3 walks the axes *sequentially*: each axis
                    # exchange completes (the corners must be current)
                    # before the next axis starts — a latency-bound chain
                    got = []
                    for axis in range(3):
                        reqs = []
                        for side in range(2):
                            peer = nbr[axis * 2 + side]
                            if peer == mpi.rank:
                                continue
                            tag = level * 10 + axis
                            payload = value if verify else None
                            r = yield from mpi.isend(
                                peer, nbytes=faces[axis], tag=tag, data=payload
                            )
                            reqs.append(r)
                            r = yield from mpi.irecv(source=peer, tag=tag)
                            reqs.append(r)
                        yield from mpi.waitall(reqs)
                        if verify:
                            got += [
                                r.message.data
                                for r in reqs
                                if getattr(r, "message", None) is not None
                            ]
                    if verify and got:
                        value = 0.5 * value + 0.5 * float(np.mean(got))
                # smoothing work at this level (coarse levels are cheap)
                yield from mpi.compute(
                    flops=flops_per_cycle / (2 * levels) * (ld / dim) ** 0.5
                )
        norm = yield from mpi.allreduce(value=value if verify else 1.0, nbytes=8)
        if verify:
            checksum += norm
    return NasResult(
        kernel="mg", klass=klass, nprocs=p,
        checksum=round(checksum, 6) if verify else None,
    )
