"""NPB SP proxy: scalar-pentadiagonal ADI solver.

Same multi-partition structure as BT (square process counts, three
pipelined directional sweeps per iteration with nonblocking exchanges),
but twice the iterations with smaller faces and less computation per
stage.  The paper groups SP with BT as the workloads MPICH-V2 handles as
well as (or better than) MPICH-P4.
"""

from __future__ import annotations

from typing import Any, Generator

from .bt import adi_program
from .common import KernelSpec, NasResult

__all__ = ["SPECS", "program", "spec"]

SPECS = {
    "T": KernelSpec("sp", "T", 1.0e6, 3, 1 << 20),
    "S": KernelSpec("sp", "S", 2.0e9, 100, 30 << 20),
    "A": KernelSpec("sp", "A", 1.020e11, 400, 200 << 20),
    "B": KernelSpec("sp", "B", 4.471e11, 400, 800 << 20),
    "C": KernelSpec("sp", "C", 1.8684e12, 400, 3200 << 20),
}

_DIM = {"T": 12, "S": 36, "A": 64, "B": 102, "C": 162}


def spec(klass: str) -> KernelSpec:
    """The per-class constants of this kernel."""
    return SPECS[klass]


def program(mpi, klass: str = "A") -> Generator[Any, Any, NasResult]:
    """The SP proxy program (square process counts)."""
    result = yield from adi_program(
        mpi, SPECS[klass], _DIM[klass], face_scale=2.2
    )
    return result
