"""Synchronous ping-pong: the raw latency/bandwidth microbenchmark.

Figures 5 and 6 of the paper: two computing nodes bounce a message of a
given size; the mean one-way time over many repetitions gives latency
(small sizes) and bandwidth (large sizes) for each MPI implementation.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["pingpong", "measure"]


def pingpong(
    mpi, nbytes: int = 0, reps: int = 20, warmup: int = 2
) -> Generator[Any, Any, float]:
    """Returns the mean one-way time in seconds (measured on both ranks)."""
    peer = 1 - mpi.rank
    for phase_reps in (warmup, reps):
        t0 = mpi.sim.now
        for _ in range(phase_reps):
            if mpi.rank == 0:
                yield from mpi.send(peer, nbytes=nbytes, tag=1)
                yield from mpi.recv(source=peer, tag=2)
            else:
                yield from mpi.recv(source=peer, tag=1)
                yield from mpi.send(peer, nbytes=nbytes, tag=2)
    return (mpi.sim.now - t0) / (2 * reps)


def measure(device: str, nbytes: int, reps: int = 10, **job_kw) -> dict:
    """One ping-pong measurement; returns latency and bandwidth."""
    from ..runtime.mpirun import run_job

    res = run_job(
        pingpong, 2, device=device, params={"nbytes": nbytes, "reps": reps},
        **job_kw,
    )
    one_way = res.results[0]
    return {
        "device": device,
        "nbytes": nbytes,
        "one_way_s": one_way,
        "latency_us": one_way * 1e6,
        "bandwidth_MBps": (nbytes / one_way / 1e6) if nbytes else 0.0,
        "result": res,
    }
