"""The Figure 9 synthetic benchmark: bursty nonblocking bidirectional traffic.

"The test performs a ping-pong of 10 non-blocking sends (MPI_ISend), 10
non blocking receives (MPI_IRecv) and then waits for all these
communications to finish (MPI_Waitall)."  Both ranks run the burst
simultaneously, so both directions of the link carry 10 messages at
once.  The paper shows MPICH-V2 reaching up to *twice* the MPICH-P4
bandwidth at 64 KB: the V2 daemon drains incoming chunks while
transmitting (full duplex), whereas the P4 driver pushes each payload
inside MPI_ISend without servicing receptions.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["burst_pingpong", "measure"]

BURST = 10


def burst_pingpong(
    mpi, nbytes: int = 65536, reps: int = 5, warmup: int = 1
) -> Generator[Any, Any, float]:
    """Returns achieved per-direction bandwidth in bytes/second."""
    peer = 1 - mpi.rank
    for phase_reps in (warmup, reps):
        t0 = mpi.sim.now
        for r in range(phase_reps):
            reqs = []
            for i in range(BURST):
                req = yield from mpi.isend(peer, nbytes=nbytes, tag=i)
                reqs.append(req)
            for i in range(BURST):
                req = yield from mpi.irecv(source=peer, tag=i)
                reqs.append(req)
            yield from mpi.waitall(reqs)
    elapsed = mpi.sim.now - t0
    return BURST * reps * nbytes / elapsed


def measure(device: str, nbytes: int, reps: int = 5, **job_kw) -> dict:
    """One burst measurement; returns the per-direction bandwidth."""
    from ..runtime.mpirun import run_job

    res = run_job(
        burst_pingpong, 2, device=device,
        params={"nbytes": nbytes, "reps": reps}, **job_kw,
    )
    return {
        "device": device,
        "nbytes": nbytes,
        "bandwidth_MBps": min(res.results) / 1e6,
        "result": res,
    }
