"""The Figure 10 microbenchmark: an asynchronous MPI token ring.

"The benchmark consists of an asynchronous MPI token ring ran by 8
computing nodes and a server running the event logger."  Each rank posts
a nonblocking receive from its predecessor and a nonblocking send to its
successor every round.  The paper measures the *re-execution* time: the
run is stopped just before MPI_Finalize, some nodes are killed and
restarted from the beginning (checkpointing disabled), and their
completion time is compared with the reference run — re-executing one
node costs about half the reference time, because only the receptions
are replayed (the restarted node's sends are suppressed: every peer
already delivered them) and event-logger traffic is not replayed.
"""

from __future__ import annotations

from typing import Any, Generator

__all__ = ["token_ring"]


def token_ring(
    mpi, rounds: int = 20, nbytes: int = 4096
) -> Generator[Any, Any, float]:
    """Returns the rank's completion time (simulated seconds)."""
    nxt = (mpi.rank + 1) % mpi.size
    prv = (mpi.rank - 1) % mpi.size
    for r in range(rounds):
        rreq = yield from mpi.irecv(source=prv, tag=r)
        sreq = yield from mpi.isend(nxt, nbytes=nbytes, tag=r)
        yield from mpi.waitall([sreq, rreq])
    return mpi.sim.now
