"""The online protocol auditor: clean runs pass, seeded violations fail.

Mutation-tests the auditor the only way a checker can be trusted: seed
each protocol violation deliberately (test-only ``mutations`` hooks in
the V2 daemon) and assert the auditor names the offending rank and its
causal clock.  Also covers the vector-clock algebra, the happens-before
graph, and the refusal to call a truncated stream clean.
"""

import pytest

from repro.core.clocks import VectorClock
from repro.ft.failure import ExplicitFaults
from repro.obs.audit import ProtocolAuditor, audit_trace
from repro.runtime.cluster import Cluster
from repro.runtime.mpirun import run_job
from repro.simnet.trace import Tracer


def traffic_prog(mpi, rounds=6):
    """A chatty all-pairs workload with compute gaps (the same shape as
    the protocol-invariant tests use)."""
    acc = float(mpi.rank)
    for r in range(rounds):
        reqs = []
        for off in (1, 2):
            peer = (mpi.rank + off) % mpi.size
            src = (mpi.rank - off) % mpi.size
            sreq = yield from mpi.isend(
                peer, nbytes=700, tag=r * 4 + off, data=acc
            )
            rreq = yield from mpi.irecv(source=src, tag=r * 4 + off)
            reqs += [sreq, rreq]
        yield from mpi.waitall(reqs)
        acc += sum(
            q.message.data
            for q in reqs
            if getattr(q, "message", None) is not None
        )
        yield from mpi.compute(seconds=0.005)
    out = yield from mpi.allreduce(value=round(acc, 6), nbytes=8)
    return round(out, 6)


# -- vector clocks ----------------------------------------------------------

def test_vector_clock_algebra():
    a = VectorClock().tick(0)  # {0:1}
    b = VectorClock().tick(1)  # {1:1}
    assert a.concurrent(b) and b.concurrent(a)
    assert not a.happened_before(b)
    c = b.copy().merge(a).tick(1)  # {0:1, 1:2}
    assert a.happened_before(c)
    assert b.happened_before(c)
    assert not c.happened_before(a)
    assert not a.happened_before(a)  # irreflexive
    assert VectorClock({0: 1, 1: 2}) == c
    assert c.as_dict() == {0: 1, 1: 2}


def test_vector_clock_merge_is_componentwise_max():
    a = VectorClock({0: 5, 1: 1})
    b = VectorClock({1: 3, 2: 2})
    a.merge(b)
    assert a.as_dict() == {0: 5, 1: 3, 2: 2}


# -- clean runs -------------------------------------------------------------

def test_clean_fault_and_recovery_run_audits_clean():
    """The acceptance scenario: a run with faults, checkpoints, replay
    and GC reports zero violations, with every rule exercised."""
    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        checkpointing=True, ckpt_interval=0.02,
        faults=ExplicitFaults([(0.03, 2)]),
    )
    rep = res.audit
    assert res.restarts >= 1
    assert rep.verdict == "clean" and rep.clean
    assert not rep.violations
    assert rep.checks["waitlogged"] > 0
    assert rep.checks["orphan"] > 0
    assert rep.checks["replay-order"] > 0  # the restart actually replayed
    assert rep.events_seen > 100
    # every rank advanced its causal clock
    assert sorted(rep.vclocks) == [0, 1, 2, 3]


def test_audit_available_on_non_v2_devices():
    """p4 emits no V2 protocol events: the audit attaches, sees nothing,
    and reports trivially clean (the flag is device-uniform)."""
    res = run_job(traffic_prog, 2, device="p4", audit=True)
    assert res.audit is not None
    assert res.audit.clean
    assert res.audit.events_seen == 0


def test_audit_off_by_default():
    res = run_job(traffic_prog, 2, device="v2")
    assert res.audit is None


# -- seeded violations (mutation coverage) ----------------------------------

def test_mutation_bypass_waitlogged_is_flagged():
    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        mutations=frozenset({"bypass_waitlogged"}),
    )
    rep = res.audit
    assert rep.verdict == "violations"
    assert rep.count("waitlogged") > 0
    v = next(x for x in rep.violations if x.rule == "waitlogged")
    assert v.rank in range(4)
    assert v.vc.get(v.rank, 0) > 0  # stamped with the offender's clock
    assert f"rank {v.rank} transmitted" in v.detail
    assert "unacknowledged" in v.detail
    assert v.context["unacked"] >= 1


def test_mutation_reorder_replay_is_flagged():
    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        faults=ExplicitFaults([(0.01, 2)]),
        mutations=frozenset({"reorder_replay"}),
    )
    rep = res.audit
    assert res.restarts >= 1
    assert rep.verdict == "violations"
    assert rep.count("replay-order") > 0
    v = next(x for x in rep.violations if x.rule == "replay-order")
    assert v.rank == 2  # the crashed (replaying) rank
    assert "logged order" in v.detail
    assert "expected_src" in v.context and "rclock" in v.context
    assert v.vc  # causal context attached


def test_mutation_premature_gc_is_flagged():
    res = run_job(
        traffic_prog, 4, device="v2", params={"rounds": 40}, audit=True,
        checkpointing=True, ckpt_interval=0.01, ckpt_continuous=True,
        mutations=frozenset({"premature_gc"}),
    )
    rep = res.audit
    assert res.checkpoints > 0
    assert rep.verdict == "violations"
    assert rep.count("gc-safety") > 0
    v = next(x for x in rep.violations if x.rule == "gc-safety")
    assert "garbage-collected" in v.detail
    assert f"rank {v.context['peer']}'s last checkpoint" in v.detail
    assert v.context["upto"] > v.context["covered"]


def test_mutation_premature_store_gc_is_flagged():
    """A replica that garbage-collects one sequence past the scheduler's
    quorum epoch reclaims chunks of a latest quorum-complete manifest —
    the ``store-gc`` rule must catch the reclaim on that replica."""
    from repro.runtime.config import DEFAULT_TESTBED

    cfg = DEFAULT_TESTBED.with_(
        ckpt_servers=3, ckpt_replicas=2, ckpt_incremental=True
    )
    res = run_job(
        traffic_prog, 4, device="v2", cfg=cfg, params={"rounds": 40},
        audit=True,
        checkpointing=True, ckpt_interval=0.01, ckpt_continuous=True,
        mutations=frozenset({"premature_store_gc"}),
    )
    rep = res.audit
    assert res.checkpoints > 0
    assert rep.verdict == "violations"
    assert rep.count("store-gc") > 0
    v = next(x for x in rep.violations if x.rule == "store-gc")
    assert "reclaimed" in v.detail and "quorum-complete" in v.detail
    assert v.context["server"].startswith("cs:")
    assert v.context["chunks"] >= 1


def test_mutation_bypass_quorum_is_flagged():
    """A batcher that clears the WAITLOGGED gate at queue time — before
    any replica stored the events — must trip the ``el-quorum`` rule."""
    from repro.runtime.config import DEFAULT_TESTBED

    cfg = DEFAULT_TESTBED.with_(el_replicas=3)
    res = run_job(
        traffic_prog, 4, device="v2", cfg=cfg, audit=True,
        mutations=frozenset({"bypass_quorum"}),
    )
    rep = res.audit
    assert rep.verdict == "violations"
    assert rep.count("el-quorum") > 0
    v = next(x for x in rep.violations if x.rule == "el-quorum")
    assert v.rank in range(4)
    assert "WAITLOGGED gate cleared rclock" in v.detail
    assert "replica store(s)" in v.detail
    assert v.context["quorum"] == 2  # majority of 3
    assert v.context["stored"] < v.context["quorum"]


def test_unmutated_twin_of_each_mutation_run_is_clean():
    """The mutation runs above differ from clean runs only by the seeded
    sabotage: the same configurations without mutations audit clean."""
    from repro.runtime.config import DEFAULT_TESTBED

    a = run_job(traffic_prog, 4, device="v2", audit=True)
    b = run_job(
        traffic_prog, 4, device="v2", audit=True,
        faults=ExplicitFaults([(0.01, 2)]),
    )
    c = run_job(
        traffic_prog, 4, device="v2", params={"rounds": 40}, audit=True,
        checkpointing=True, ckpt_interval=0.01, ckpt_continuous=True,
    )
    d = run_job(
        traffic_prog, 4, device="v2",
        cfg=DEFAULT_TESTBED.with_(
            ckpt_servers=3, ckpt_replicas=2, ckpt_incremental=True
        ),
        params={"rounds": 40}, audit=True,
        checkpointing=True, ckpt_interval=0.01, ckpt_continuous=True,
    )
    e = run_job(
        traffic_prog, 4, device="v2",
        cfg=DEFAULT_TESTBED.with_(el_replicas=3), audit=True,
    )
    assert e.audit.checks["el-quorum"] > 0  # the rule actually evaluated
    for res in (a, b, c, d, e):
        assert res.audit.clean, res.audit.violations
        assert res.audit.checks["store-gc"] >= 0


# -- truncated streams ------------------------------------------------------

def test_posthoc_audit_refuses_truncated_stream():
    """A ring-buffer tracer that evicted records cannot prove anything:
    the post-hoc verdict is ``truncated``, never ``clean``."""
    t = Tracer(enabled=True, max_records=4)
    for i in range(10):
        t.emit(float(i), "v2.log_event", rank=0, rclock=i, src=1, sclock=i)
    assert t.dropped == 6
    rep = audit_trace(t)
    assert not rep.violations  # nothing wrong in what *was* seen...
    assert rep.truncated and not rep.clean  # ...but no clean attestation
    assert rep.verdict == "truncated"
    assert rep.dropped_records == 6


def test_ring_buffer_drops_counted_in_metrics():
    """Satellite of the same fix: evictions surface in the metrics
    registry, so truncation is visible even without an audit."""
    cluster = Cluster(trace=True, trace_max_records=3)
    for i in range(8):
        cluster.tracer.emit(float(i), "net.xfer", nbytes=1)
    assert cluster.tracer.dropped == 5
    assert cluster.metrics.total("trace.dropped") == 5
    assert len(cluster.tracer.records) == 3


def test_live_subscriber_sees_full_stream_despite_ring_buffer():
    """The online auditor is immune to retention truncation: subscribers
    observe every emit, so a live audit over a ring-buffer tracer still
    attests the complete run."""
    t = Tracer(enabled=True, max_records=2)
    auditor = ProtocolAuditor().attach(t)
    for i in range(1, 6):
        t.emit(float(i), "v2.log_event", rank=0, rclock=i, src=1, sclock=i)
    rep = auditor.finish()  # live audit: dropped=0 by definition
    assert rep.events_seen == 5
    assert rep.clean


# -- happens-before graph ---------------------------------------------------

def test_happens_before_graph_links_sends_to_deliveries():
    res = run_job(
        traffic_prog, 4, device="v2", audit=True, audit_hb=True,
    )
    hb = res.audit.hb
    assert hb is not None and hb["nodes"] and hb["edges"]
    nodes = {n["id"]: n for n in hb["nodes"]}
    msg_edges = [e for e in hb["edges"] if e["kind"] == "message"]
    assert msg_edges
    for e in msg_edges:
        tx, dv = nodes[e["from"]], nodes[e["to"]]
        # a message edge lands on the reception event: the logging of
        # the receive (v2) or the delivery itself
        assert tx["op"] == "tx" and dv["op"] in ("deliver", "log_event")
        assert tx["rank"] == dv["src"]  # the edge follows the message
        # causality: the send's clock precedes (or is merged into) the
        # delivery's clock (log_event carries the pre-merge receiver
        # clock — the Fidge-Mattern merge happens at delivery)
        if dv["op"] == "deliver":
            assert VectorClock(tx["vc"]).happened_before(
                VectorClock(dv["vc"])
            ) or tx["vc"] == dv["vc"]
    assert any(nodes[e["to"]]["op"] == "deliver" for e in msg_edges)
    assert any(nodes[e["to"]]["op"] == "log_event" for e in msg_edges)
    # program-order edges stay within one rank
    for e in hb["edges"]:
        if e["kind"] == "program":
            assert nodes[e["from"]]["rank"] == nodes[e["to"]]["rank"]


def test_hb_graph_off_by_default():
    res = run_job(traffic_prog, 2, device="v2", audit=True)
    assert res.audit.hb is None
    with pytest.raises(KeyError):
        _ = res.audit.to_dict()["happens_before"]


# -- report plumbing --------------------------------------------------------

def test_report_to_dict_roundtrips_json():
    import json

    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        mutations=frozenset({"bypass_waitlogged"}),
    )
    doc = json.loads(json.dumps(res.audit.to_dict()))
    assert doc["verdict"] == "violations"
    assert doc["violations"][0]["rule"] == "waitlogged"
    assert doc["checks"]["waitlogged"] > 0


def test_format_audit_names_ranks_and_clocks():
    from repro.analysis.report import format_audit

    res = run_job(
        traffic_prog, 4, device="v2", audit=True,
        mutations=frozenset({"bypass_waitlogged"}),
    )
    text = format_audit(res.audit)
    assert "audit verdict: violations" in text
    assert "waitlogged" in text
    v = res.audit.violations[0]
    assert f"rank {v.rank} transmitted" in text
    assert "vclock" in text
    assert format_audit(None) == "(no audit: run with audit=True)"
