"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_pingpong_command(capsys):
    rc = main(["pingpong", "--sizes", "0,1024", "--devices", "p4,v2",
               "--reps", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "p4 us" in out and "v2 us" in out
    assert "1024" in out


def test_burst_command(capsys):
    rc = main(["burst", "--sizes", "65536", "--reps", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "V2/P4" in out


def test_kernel_command(capsys):
    rc = main(["kernel", "cg", "--class", "T", "-n", "4", "--device", "v2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CG-T" in out
    assert "Mop/s" in out


def test_faulty_command(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--faults", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "restarts" in out


def test_sched_command(capsys):
    rc = main(["sched", "--nodes", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "broadcast" in out
    assert "RR/AD" in out


def test_kernel_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["kernel", "nope"])


def test_pingpong_rejects_unknown_device(capsys):
    rc = main(["pingpong", "--devices", "p4,bogus", "--sizes", "0"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "bogus" in err


def test_faulty_rejects_non_v2_device(capsys):
    rc = main(["faulty", "cg", "--class", "T", "--device", "p4"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "v2" in err


def test_faulty_reports_mechanism_stats(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--faults", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "replayed" in out and "ckpt MB" in out


def test_stats_command(capsys):
    rc = main(["stats", "cg", "--class", "T", "-n", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "el.roundtrips" in out
    assert "senderlog.bytes" in out


def test_kernel_trace_out_writes_chrome_trace(tmp_path, capsys):
    import json

    path = tmp_path / "t.json"
    rc = main(["kernel", "cg", "--class", "T", "-n", "2",
               "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert any(e.get("ph") == "i" for e in doc["traceEvents"])


def test_kernel_metrics_out_writes_registry(tmp_path, capsys):
    import json

    path = tmp_path / "m.json"
    rc = main(["kernel", "cg", "--class", "T", "-n", "2",
               "--metrics-out", str(path)])
    assert rc == 0
    entries = json.loads(path.read_text())
    assert any(e["name"] == "el.roundtrips" for e in entries)


def test_pingpong_trace_out_merges_runs(tmp_path, capsys):
    import json

    path = tmp_path / "t.json"
    rc = main(["pingpong", "--sizes", "1024", "--devices", "p4,v2",
               "--reps", "2", "--trace-out", str(path)])
    assert rc == 0
    doc = json.loads(path.read_text())
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "process_name"
    }
    assert any(n.startswith("p4/1024B:") for n in names)
    assert any(n.startswith("v2/1024B:") for n in names)


def test_trace_command_with_timeline(tmp_path, capsys):
    import json

    path = tmp_path / "t.json"
    rc = main(["trace", "cg", "--class", "T", "-n", "2", "--faults", "1",
               "--fault-interval", "0.05", "--out", str(path), "--timeline"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in out
    assert "downtime s" in out  # the injected fault shows up in the timeline
    assert json.loads(path.read_text())["traceEvents"]


def test_trace_command_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "t.jsonl"
    rc = main(["trace", "cg", "--class", "T", "-n", "2", "--out", str(path)])
    assert rc == 0
    lines = path.read_text().splitlines()
    assert lines and all(json.loads(ln)["kind"] for ln in lines)


def test_audit_command_clean_run_exits_zero(capsys):
    rc = main(["audit", "cg", "--class", "T", "-n", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "audit verdict: clean" in out
    assert "waitlogged" in out and "gc-safety" in out


def test_audit_command_with_faults(capsys):
    rc = main(["audit", "cg", "--class", "T", "-n", "2", "--faults", "1",
               "--fault-interval", "0.05"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "audit verdict: clean" in out


def test_audit_command_writes_hb_and_json(tmp_path, capsys):
    import json

    hb_path = tmp_path / "hb.json"
    json_path = tmp_path / "audit.json"
    rc = main(["audit", "cg", "--class", "T", "-n", "2",
               "--hb-out", str(hb_path), "--json-out", str(json_path)])
    out = capsys.readouterr().out
    assert rc == 0
    hb = json.loads(hb_path.read_text())
    assert hb["nodes"] and hb["edges"]
    assert "happens-before graph" in out
    doc = json.loads(json_path.read_text())
    assert doc["verdict"] == "clean"
    assert doc["checks"]["waitlogged"] > 0


def test_kernel_audit_flag_prints_verdict(capsys):
    rc = main(["kernel", "cg", "--class", "T", "-n", "2", "--audit"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "audit verdict: clean" in out
    assert "Mop/s" in out  # the normal output is still there


def test_faulty_audit_flag_prints_verdict(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--faults", "1",
               "--audit"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "audit verdict: clean" in out


def test_pingpong_audit_flag_prints_per_run_verdicts(capsys):
    rc = main(["pingpong", "--sizes", "1024", "--devices", "p4,v2",
               "--reps", "2", "--audit"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[p4/1024B]" in out and "[v2/1024B]" in out
    assert out.count("audit verdict: clean") == 2


def test_faulty_service_faults_and_partitions(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--faults", "0",
               "--service-faults", "el:0@0.3:0.5",
               "--partitions", "0.5:0.5:0+1", "--audit"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "audit verdict: clean" in out
    assert "outages:" in out
    assert "retries=" in out and "reconnects=" in out


def test_faulty_churn_plan(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--plan", "churn",
               "--faults", "1", "--mean-lifetime", "3.0", "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "restarts" in out


def test_faulty_rejects_bad_partition_spec(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "2",
               "--partitions", "bogus"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "bad fault spec" in err


def test_faulty_parse_helpers():
    from repro.cli import _parse_partitions, _parse_service_faults

    assert _parse_partitions("1.5:2.0:0+3, 4:1:2") == [
        (1.5, (0, 3), 2.0), (4.0, (2,), 1.0)]
    assert _parse_service_faults("el:0@2.0:1.0,cs:0@3:0.5") == [
        (2.0, "el:0", 1.0), (3.0, "cs:0", 0.5)]


def test_stats_prefix_filter(capsys):
    rc = main(["stats", "cg", "--class", "T", "-n", "2", "--prefix", "el."])
    out = capsys.readouterr().out
    assert rc == 0
    assert "el.roundtrips" in out
    assert "senderlog.bytes" not in out  # filtered out of both tables


def test_stats_top_filter(capsys):
    rc = main(["stats", "cg", "--class", "T", "-n", "2", "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    # the totals table keeps only the 3 largest metrics; byte counters
    # dominate, so the small per-event counters must be gone
    totals = out.split("\n\n")[-1]
    assert len([ln for ln in totals.splitlines() if ln.strip()]) == 5
    assert "senderlog.ram_bytes" in totals


def test_profile_command_v2_with_critical_path(tmp_path, capsys):
    import json

    path = tmp_path / "prof.json"
    rc = main(["profile", "cg", "--class", "T", "-n", "2",
               "--json-out", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "events/s" in out
    assert "service CPU decomposition" in out
    assert "critical path" in out and "el-ack" in out
    doc = json.loads(path.read_text())
    assert doc["events"] > 0
    assert doc["critical_path"]["span_s"] > 0


def test_profile_command_p4_skips_critical_path(capsys):
    rc = main(["profile", "cg", "--class", "T", "-n", "2", "--device", "p4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "events/s" in out
    assert "critical path" not in out  # no hb graph outside v2
