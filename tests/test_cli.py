"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_pingpong_command(capsys):
    rc = main(["pingpong", "--sizes", "0,1024", "--devices", "p4,v2",
               "--reps", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "p4 us" in out and "v2 us" in out
    assert "1024" in out


def test_burst_command(capsys):
    rc = main(["burst", "--sizes", "65536", "--reps", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "V2/P4" in out


def test_kernel_command(capsys):
    rc = main(["kernel", "cg", "--class", "T", "-n", "4", "--device", "v2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CG-T" in out
    assert "Mop/s" in out


def test_faulty_command(capsys):
    rc = main(["faulty", "cg", "--class", "S", "-n", "4", "--faults", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "restarts" in out


def test_sched_command(capsys):
    rc = main(["sched", "--nodes", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "broadcast" in out
    assert "RR/AD" in out


def test_kernel_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["kernel", "nope"])
