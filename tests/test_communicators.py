"""Tests for sub-communicators (MPI_Comm_split)."""


from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job


def test_split_ranks_and_sizes():
    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank % 2)
        return (comm.rank, comm.size, comm.ranks)

    res = run_job(prog, 6, device="p4")
    for world_rank, (r, s, members) in enumerate(res.results):
        assert s == 3
        assert members == ([0, 2, 4] if world_rank % 2 == 0 else [1, 3, 5])
        assert members[r] == world_rank


def test_split_with_key_reorders():
    def prog(mpi):
        comm = yield from mpi.split(color=0, key=-mpi.rank)
        return comm.rank

    res = run_job(prog, 4, device="p4")
    assert res.results == [3, 2, 1, 0]  # reversed ordering


def test_split_undefined_color_returns_none():
    def prog(mpi):
        comm = yield from mpi.split(color=None if mpi.rank == 0 else 1)
        if comm is None:
            return "excluded"
        return comm.size

    res = run_job(prog, 4, device="p4")
    assert res.results == ["excluded", 3, 3, 3]


def test_subcomm_p2p_is_isolated():
    """Same tags in sibling communicators never cross-match."""

    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank % 2)
        peer = (comm.rank + 1) % comm.size
        prv = (comm.rank - 1) % comm.size
        sreq = yield from comm.isend(peer, nbytes=64, tag=5, data=mpi.rank)
        rreq = yield from comm.irecv(source=prv, tag=5)
        yield from comm.waitall([sreq, rreq])
        return rreq.message.data

    res = run_job(prog, 6, device="p4")
    # each rank receives from its group predecessor (world ranks)
    assert res.results == [4, 5, 0, 1, 2, 3]


def test_subcomm_collectives():
    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank // 2)  # pairs
        total = yield from comm.allreduce(value=mpi.rank + 1, nbytes=8)
        out = yield from comm.allgather(value=mpi.rank, nbytes=8)
        bc = yield from comm.bcast(root=0, nbytes=16,
                                   data=f"g{mpi.rank // 2}" if comm.rank == 0 else None)
        return (total, out, bc)

    res = run_job(prog, 6, device="p4")
    for world_rank, (total, out, bc) in enumerate(res.results):
        g = world_rank // 2
        assert total == (2 * g + 1) + (2 * g + 2)
        assert out == [2 * g, 2 * g + 1]
        assert bc == f"g{g}"


def test_concurrent_sibling_collectives_do_not_collide():
    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank % 2)
        acc = float(mpi.rank)
        for _ in range(6):
            acc = yield from comm.allreduce(value=acc, nbytes=8)
        return round(acc, 6)

    res = run_job(prog, 8, device="p4")
    even = [res.results[r] for r in range(0, 8, 2)]
    odd = [res.results[r] for r in range(1, 8, 2)]
    assert len(set(even)) == 1 and len(set(odd)) == 1
    assert even[0] != odd[0]


def test_nested_split():
    def prog(mpi):
        half = yield from mpi.split(color=mpi.rank // 4)
        quarter = yield from half.split(color=half.rank // 2)
        total = yield from quarter.allreduce(value=mpi.rank, nbytes=8)
        return total

    res = run_job(prog, 8, device="p4")
    assert res.results == [1, 1, 5, 5, 9, 9, 13, 13]


def test_subcomm_identical_across_devices():
    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank % 2)
        out = yield from comm.scan(value=mpi.rank + 1, nbytes=8)
        total = yield from mpi.allreduce(value=out, nbytes=8)
        return total

    ref = run_job(prog, 6, device="p4").results
    assert run_job(prog, 6, device="v1").results == ref
    assert run_job(prog, 6, device="v2").results == ref


def test_subcomm_survives_fault():
    def prog(mpi):
        comm = yield from mpi.split(color=mpi.rank % 2)
        acc = float(mpi.rank + 1)
        for i in range(5):
            peer = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            msg = yield from comm.sendrecv(peer, nbytes=128, tag=i, data=acc,
                                           source=prv, recvtag=i)
            acc = 0.5 * (acc + msg.data)
            yield from comm.compute(seconds=0.02)
        total = yield from mpi.allreduce(value=round(acc, 9), nbytes=8)
        return round(total, 6)

    clean = run_job(prog, 6, device="v2")
    faulty = run_job(prog, 6, device="v2",
                     faults=ExplicitFaults([(0.05, 3)]), limit=600.0)
    assert faulty.restarts == 1
    assert faulty.results == clean.results
