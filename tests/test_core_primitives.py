"""Unit tests: logical clocks, sender log, fabric, event logger."""

import pytest

from repro.core.clocks import ClockState, EventRecord
from repro.core.event_logger import EventLoggerServer
from repro.core.sender_log import LogOverflow, SenderLog
from repro.mpi.datatypes import Envelope
from repro.runtime.cluster import Cluster
from repro.runtime.fabric import ConnectionRefused, Fabric


def env(nbytes=100, src=0, dst=1, sclock=1):
    return Envelope(src, dst, 0, 0, nbytes, sclock)


# -- clocks -----------------------------------------------------------------


def test_clock_ticks_on_send_and_recv():
    c = ClockState()
    assert c.tick_send() == 1
    assert c.tick_recv(src=3, sclock=7) == 1  # independent sequences
    assert c.h == 2  # the paper's scalar clock = sends + receives
    assert c.hr[3] == 7


def test_hr_is_monotonic():
    c = ClockState()
    c.tick_recv(2, 5)
    c.tick_recv(2, 3)  # duplicate/out-of-order metadata never lowers HR
    assert c.hr[2] == 5


def test_suppression_uses_hs():
    c = ClockState()
    c.hs[4] = 10
    assert c.suppressed(4, 10)
    assert c.suppressed(4, 3)
    assert not c.suppressed(4, 11)
    assert not c.suppressed(5, 1)


def test_clock_snapshot_is_independent():
    c = ClockState()
    c.tick_send()
    snap = c.snapshot()
    c.tick_send()
    c.hr[1] = 99
    assert snap.send_seq == 1
    assert 1 not in snap.hr


def test_event_record_ordering():
    a = EventRecord(rclock=1, src=0, sclock=1, probes=0)
    b = EventRecord(rclock=2, src=0, sclock=2, probes=0)
    assert sorted([b, a]) == [a, b]


# -- sender log -------------------------------------------------------------


def test_sender_log_append_and_lookup():
    log = SenderLog(ram_budget=10_000, disk_budget=0)
    log.append(1, 1, env(nbytes=100, sclock=1))
    log.append(1, 3, env(nbytes=100, sclock=3))
    log.append(2, 2, env(nbytes=100, sclock=2))
    assert len(log) == 3
    assert [m.sclock for m in log.messages_for(1)] == [1, 3]
    assert [m.sclock for m in log.messages_for(1, after_sclock=1)] == [3]
    assert log.has(2, 2)
    assert not log.has(2, 9)


def test_sender_log_ram_then_disk_spill():
    log = SenderLog(ram_budget=150, disk_budget=1000)
    assert log.append(1, 1, env(nbytes=100)) == 0  # fits in RAM
    spilled = log.append(1, 2, env(nbytes=100))  # 50 bytes over RAM
    assert spilled == 50
    assert log.bytes_on_disk == 50


def test_sender_log_overflow_raises():
    log = SenderLog(ram_budget=100, disk_budget=100)
    log.append(1, 1, env(nbytes=150))
    with pytest.raises(LogOverflow):
        log.append(1, 2, env(nbytes=100))


def test_sender_log_gc_frees_prefix_only():
    log = SenderLog(ram_budget=10_000, disk_budget=0)
    for sc in (1, 2, 3, 4):
        log.append(1, sc, env(nbytes=100, sclock=sc))
    freed = log.collect(1, upto_sclock=2)
    assert freed == 200
    assert [m.sclock for m in log.messages_for(1)] == [3, 4]
    assert log.bytes_total == 200


def test_sender_log_snapshot_restore_round_trip():
    log = SenderLog(ram_budget=10_000, disk_budget=0)
    log.append(1, 1, env(nbytes=10, sclock=1))
    log.append(2, 2, env(nbytes=20, sclock=2))
    entries = log.snapshot()
    back = SenderLog.restore(10_000, 0, entries)
    assert len(back) == 2
    assert back.bytes_total == 30
    assert back.has(2, 2)


# -- fabric -----------------------------------------------------------------


def test_fabric_connect_delivers_hello():
    cluster = Cluster()
    fabric = Fabric(cluster)
    a = cluster.add_cn("a")
    b = cluster.add_cn("b")
    acc = fabric.listen("svc", b)
    end_a = fabric.connect(a, "svc", hello={"rank": 3})

    def server():
        end_b, hello = yield acc.accept()
        return hello

    p = cluster.sim.spawn(server(), "srv")
    assert cluster.sim.run_until(p.done) == {"rank": 3}
    assert end_a.host is a


def test_fabric_refuses_unknown_name():
    cluster = Cluster()
    fabric = Fabric(cluster)
    a = cluster.add_cn("a")
    with pytest.raises(ConnectionRefused):
        fabric.connect(a, "nope")


def test_fabric_refuses_dead_listener_host():
    cluster = Cluster()
    fabric = Fabric(cluster)
    a = cluster.add_cn("a")
    b = cluster.add_cn("b")
    fabric.listen("svc", b)
    b.crash()
    with pytest.raises(ConnectionRefused):
        fabric.connect(a, "svc")


def test_fabric_relisten_replaces_old():
    cluster = Cluster()
    fabric = Fabric(cluster)
    a = cluster.add_cn("a")
    b = cluster.add_cn("b")
    acc1 = fabric.listen("svc", b)
    acc2 = fabric.listen("svc", b)
    assert acc1.closed
    fabric.connect(a, "svc", hello=1)
    assert len(acc2.queue) == 1
    assert len(acc1.queue) == 0


# -- event logger --------------------------------------------------------------


def _el_setup():
    cluster = Cluster()
    fabric = Fabric(cluster)
    aux = cluster.add_aux("el-host")
    cn = cluster.add_cn("cn0")
    el = EventLoggerServer(cluster.sim, aux, fabric, cluster.cfg)
    el.start()
    return cluster, fabric, cn, el


def test_event_logger_store_ack_download():
    cluster, fabric, cn, el = _el_setup()

    def client():
        end = fabric.connect(cn, "el:0", hello=0)
        recs = [EventRecord(1, src=2, sclock=5, probes=0)]
        yield from end.write(20, ("EVENT", 0, 0, recs))
        _, ack = yield end.read()
        assert ack == ("ACK", 0, 1)
        yield from end.write(12, ("DOWNLOAD", 0, 0))
        _, reply = yield end.read()
        return reply

    p = cluster.sim.spawn(client(), "cli")
    kind, records, _piggy = cluster.sim.run_until(p.done)
    assert kind == "EVENTS"
    assert records == [EventRecord(1, 2, 5, 0)]


def test_event_logger_download_after_clock_filters():
    cluster, fabric, cn, el = _el_setup()

    def client():
        end = fabric.connect(cn, "el:0", hello=0)
        recs = [EventRecord(rc, src=1, sclock=rc, probes=0) for rc in (1, 2, 3)]
        yield from end.write(60, ("EVENT", 0, 0, recs))
        yield end.read()
        yield from end.write(12, ("DOWNLOAD", 0, 2))
        _, reply = yield end.read()
        return reply[1]

    p = cluster.sim.spawn(client(), "cli")
    records = cluster.sim.run_until(p.done)
    assert [r.rclock for r in records] == [3]


def test_event_logger_dedups_and_prunes():
    cluster, fabric, cn, el = _el_setup()

    def client():
        end = fabric.connect(cn, "el:0", hello=0)
        rec = EventRecord(1, src=1, sclock=1, probes=0)
        yield from end.write(20, ("EVENT", 0, 0, [rec]))
        yield end.read()
        yield from end.write(20, ("EVENT", 0, 1, [rec]))  # duplicate (replay)
        yield end.read()
        yield from end.write(20, ("EVENT", 0, 2, [EventRecord(2, 1, 2, 1)]))
        yield end.read()
        yield from end.write(12, ("PRUNE", 0, 1))
        yield from end.write(12, ("DOWNLOAD", 0, 0))
        _, reply = yield end.read()
        return reply[1]

    p = cluster.sim.spawn(client(), "cli")
    records = cluster.sim.run_until(p.done)
    assert [r.rclock for r in records] == [2]
    assert el.events_stored == 2  # duplicate not double-counted


def test_event_logger_survives_client_disconnect():
    cluster, fabric, cn, el = _el_setup()

    def client():
        end = fabric.connect(cn, "el:0", hello=0)
        yield from end.write(20, ("EVENT", 0, 0, [EventRecord(1, 1, 1, 0)]))
        yield end.read()

    p = cluster.sim.spawn(client(), "cli")
    cluster.sim.run_until(p.done)
    cn.crash()
    cluster.sim.run(until=cluster.sim.now + 1.0)
    assert el.high_water(0) == 1  # events survive the daemon's death
