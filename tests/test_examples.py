"""The example scripts must keep running (they are documentation)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main()


def test_quickstart_example(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "identical results" in out


def test_desktop_grid_example(capsys):
    _run_example("desktop_grid")
    out = capsys.readouterr().out
    assert "Same result despite the churn" in out


def test_grid_outage_example(capsys):
    _run_example("grid_outage")
    out = capsys.readouterr().out
    assert "gamma" in out


@pytest.mark.slow
def test_nas_campaign_example(capsys):
    _run_example("nas_campaign")
    out = capsys.readouterr().out
    assert "CG-A" in out and "BT-A" in out
