"""Unit/integration tests for the fault-tolerance components."""

import pytest

from repro.core.clocks import ClockState, EventRecord
from repro.core.replay import CheckpointImage, DeliveryRecord, ReplayState
from repro.core.sender_log import LogOverflow
from repro.ft.failure import ExplicitFaults, RandomFaults
from repro.mpi.datatypes import Envelope
from repro.mpi.protocol import Packet, PacketKind
from repro.runtime.mpirun import run_job


def ring(mpi, rounds=6, work=0.05):
    nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
    token = mpi.rank
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=256, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = rreq.message.data + 1
        yield from mpi.compute(seconds=work)
    return token


# -- ReplayState unit behaviour -------------------------------------------------


def _pkt(src, sclock):
    env = Envelope(src, 9, 0, 0, 64, sclock)
    return Packet(PacketKind.SHORT, env, payload_bytes=64)


def test_replay_releases_in_event_order():
    events = [EventRecord(1, src=2, sclock=5, probes=0),
              EventRecord(2, src=1, sclock=3, probes=0)]
    rp = ReplayState(None, events)
    assert rp.offer_packet(_pkt(1, 3)) == []  # not due yet
    released = rp.offer_packet(_pkt(2, 5))
    assert [(p.env.src, p.env.sclock) for p in released] == [(2, 5), (1, 3)]
    assert not rp.replaying()


def test_replay_holds_post_crash_traffic_until_done():
    events = [EventRecord(1, src=1, sclock=1, probes=0)]
    rp = ReplayState(None, events)
    assert rp.offer_packet(_pkt(1, 9)) == []  # future message: held
    released = rp.offer_packet(_pkt(1, 1))
    assert [(p.env.src, p.env.sclock) for p in released] == [(1, 1), (1, 9)]


def test_replay_dedups_within_holdback():
    events = [EventRecord(1, src=1, sclock=2, probes=0)]
    rp = ReplayState(None, events)
    rp.offer_packet(_pkt(1, 9))
    rp.offer_packet(_pkt(1, 9))  # duplicate re-send
    released = rp.offer_packet(_pkt(1, 2))
    ids = [(p.env.src, p.env.sclock) for p in released]
    assert ids == [(1, 2), (1, 9)]


def test_replay_probe_budget_counts_down():
    events = [EventRecord(1, src=1, sclock=1, probes=3)]
    rp = ReplayState(None, events)
    assert [rp.replay_probe() for _ in range(4)] == [False, False, False, None]


def test_fast_forward_boundaries():
    img = CheckpointImage(
        rank=0, seq=1, op_count=5, clock=ClockState(),
        saved=[], delivery_log=[
            DeliveryRecord(1, 1, 1, 0, 64, 0, 0, None)
        ], app_footprint=1000,
    )
    rp = ReplayState(img, [])
    assert rp.fast_forward(0)
    assert rp.fast_forward(4)
    assert not rp.fast_forward(5)
    rec = rp.next_ff_delivery()
    assert rec.src == 1
    assert rp.next_ff_delivery() is None


def test_image_bytes_counts_footprint_and_saved():
    env = Envelope(0, 1, 0, 0, 5000, 1)
    img = CheckpointImage(
        rank=0, seq=1, op_count=1, clock=ClockState(),
        saved=[(1, 1, env)], delivery_log=[], app_footprint=100_000,
    )
    assert img.image_bytes == 100_000 + 5000 + 4096


# -- fault injectors --------------------------------------------------------------


def test_explicit_faults_record_injections():
    faults = ExplicitFaults([(0.1, 1)])
    res = run_job(ring, 3, device="v2", faults=faults)
    assert faults.injected and faults.injected[0][1] == 1
    assert res.restarts == 1


def test_random_faults_respect_count():
    faults = RandomFaults(interval=0.08, count=2, seed=5)
    res = run_job(ring, 3, device="v2", params={"rounds": 10}, faults=faults,
                  limit=3600.0)
    assert len(faults.injected) <= 2
    assert res.restarts == len(faults.injected)


def test_faults_after_completion_are_not_injected():
    faults = ExplicitFaults([(1e6, 0)])
    res = run_job(ring, 3, device="v2", faults=faults)
    assert res.restarts == 0
    assert faults.injected == []


# -- dispatcher / deployment -----------------------------------------------------


def test_spares_exhausted_falls_back_to_reboot():
    expect = run_job(ring, 3, device="v2").results
    res = run_job(
        ring, 3, device="v2", spares=1,
        faults=ExplicitFaults([(0.05, 0), (2.0, 1)]),
    )
    assert res.results == expect
    disp = res.extras["dispatcher"]
    assert disp.states[0].host.name == "spare0"  # first crash took the spare
    assert disp.states[1].host.name == "cn1"  # second rebooted in place


def test_multiple_event_loggers():
    res = run_job(ring, 4, device="v2", n_event_loggers=2)
    els = res.extras["event_loggers"]
    assert len(els) == 2
    # ranks are partitioned round-robin across loggers
    assert len(els[0].records_for(0)) > 0
    assert len(els[1].records_for(1)) > 0
    assert len(els[0].records_for(1)) == 0


def test_log_overflow_aborts_job():
    def hog(mpi):
        # two ranks exchange far beyond the 2 GB log budget
        peer = 1 - mpi.rank
        for i in range(50):
            yield from mpi.sendrecv(peer, nbytes=100 << 20, tag=i, source=peer)
        return None

    with pytest.raises(LogOverflow):
        run_job(hog, 2, device="v2", limit=1e6)


def test_checkpoint_server_keeps_latest_image():
    res = run_job(
        ring, 3, device="v2", params={"rounds": 12, "work": 0.1},
        checkpointing=True, ckpt_interval=0.15,
    )
    cs = res.extras["checkpoint_server"]
    assert cs.stores >= 2
    img = cs.latest(0) or cs.latest(1) or cs.latest(2)
    assert img is not None
    latest = cs.images[img.rank]
    assert latest.seq == max(i.seq for i in [latest])


def test_adaptive_scheduler_polls_status():
    res = run_job(
        ring, 3, device="v2", params={"rounds": 15, "work": 0.1},
        checkpointing=True, ckpt_policy="adaptive", ckpt_interval=0.2,
    )
    sched = res.extras["scheduler"]
    assert sched.orders_issued >= 1
    assert sched.status  # STATUS replies arrived


def test_round_robin_scheduler_orders_in_cycle():
    res = run_job(
        ring, 3, device="v2", params={"rounds": 15, "work": 0.1},
        checkpointing=True, ckpt_policy="round_robin", ckpt_interval=0.15,
    )
    assert res.checkpoints >= 2
    cs = res.extras["checkpoint_server"]
    assert len({img.rank for img in cs.images.values()}) >= 2


def test_elapsed_and_restart_accounting_consistency():
    res = run_job(ring, 3, device="v2", faults=ExplicitFaults([(0.05, 2)]))
    disp = res.extras["dispatcher"]
    assert res.elapsed == max(s.finish_time for s in disp.states)
    assert disp.states[2].incarnation == 1
    assert disp.states[2].spawn_time > 0


def test_checkpoint_server_crash_degrades_to_restart_from_scratch():
    """Paper §4.3: "the checkpoint scheduler and the checkpoint servers may
    be unreliable. In the case where such a component fails, the computing
    nodes requiring checkpoint images will not be served by the failed
    checkpoint components and may restart from scratch, at worst."""
    from repro.runtime.config import DEFAULT_TESTBED

    cfg = DEFAULT_TESTBED.with_(reliable_aux=False)
    expect = run_job(ring, 3, device="v2", params={"rounds": 10, "work": 0.1},
                     cfg=cfg).results

    def chaos(env):
        env["sim"].after(0.35, env["cs_host"].crash)

    res = run_job(
        ring, 3, device="v2", params={"rounds": 10, "work": 0.1}, cfg=cfg,
        checkpointing=True, ckpt_interval=0.1,
        faults=ExplicitFaults([(0.5, 1)]),  # fault after the CS is gone
        on_ready=chaos, limit=600.0,
    )
    # per-process replay was impossible (image gone, logs collected):
    # the whole application restarted from scratch — and still finished
    # with the correct result
    assert res.extras["global_restarts"] >= 1
    assert res.results == expect
    disp = res.extras["dispatcher"]
    assert disp.states[1].daemon.restart_base_recv == 0


def test_churn_faults_kill_and_recover():
    from repro.ft.failure import ChurnFaults

    expect = run_job(ring, 4, device="v2", params={"rounds": 12, "work": 0.15}).results
    churn = ChurnFaults(mean_lifetime=1.2, seed=3, max_faults=4,
                        check_interval=0.1)
    res = run_job(
        ring, 4, device="v2", params={"rounds": 12, "work": 0.15},
        checkpointing=True, ckpt_interval=0.2,
        faults=churn, limit=3600.0,
    )
    assert res.restarts == len(churn.injected)
    assert res.restarts >= 1
    assert res.results == expect


def test_churn_respects_max_faults():
    from repro.ft.failure import ChurnFaults

    churn = ChurnFaults(mean_lifetime=0.3, seed=1, max_faults=2,
                        check_interval=0.05)
    res = run_job(
        ring, 3, device="v2", params={"rounds": 10, "work": 0.2},
        faults=churn, limit=3600.0,
    )
    assert len(churn.injected) <= 2
