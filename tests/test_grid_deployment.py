"""Grid deployments: multi-site topologies (the paper's future work).

"Future works will consider ... test[ing] MPICH-V2 on large clusters and
Grid deployments."  Hosts carry a site label; traffic between sites runs
over wide-area latency/bandwidth.
"""

import pytest

from repro.ft.failure import ExplicitFaults
from repro.runtime.cluster import Cluster
from repro.runtime.mpirun import run_job
from repro.runtime.progfile import parse_progfile

TWO_SITE_PROGFILE = """
a1 CN site=alpha
a2 CN site=alpha
b1 CN site=beta
b2 CN site=beta
bx SPARE site=beta
fe EL site=alpha
st CS site=alpha
"""


def test_inter_site_transfer_is_slower():
    cluster = Cluster()
    a = cluster.add_cn("a", site="alpha")
    b = cluster.add_cn("b", site="alpha")
    c = cluster.add_cn("c", site="alpha")
    d = cluster.add_cn("d", site="beta")
    t_lan = cluster.net.transfer(a, b, 100_000, lambda: None)
    t_wan = cluster.net.transfer(c, d, 100_000, lambda: None)
    # the 6 MB/s WAN path is slower than the 11.4 MB/s LAN by ~2x plus
    # the extra propagation delay
    assert t_wan > 1.7 * t_lan
    assert t_wan - t_lan > cluster.cfg.link.wan_latency / 2


def test_same_site_unaffected_by_wan_params():
    cluster = Cluster()
    a = cluster.add_cn("a")
    b = cluster.add_cn("b")
    t = cluster.net.transfer(a, b, 1000, lambda: None)
    assert t == pytest.approx(cluster.net.one_way_time(1000))


def ring(mpi, rounds=6):
    nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
    token = float(mpi.rank)
    for r in range(rounds):
        sreq = yield from mpi.isend(nxt, nbytes=2000, tag=r, data=token)
        rreq = yield from mpi.irecv(source=prv, tag=r)
        yield from mpi.waitall([sreq, rreq])
        token = 0.5 * token + 0.5 * rreq.message.data + 1.0
        yield from mpi.compute(seconds=0.01)
    total = yield from mpi.allreduce(value=round(token, 9), nbytes=8)
    return round(total, 9)


def test_grid_job_slower_than_single_cluster():
    plan = parse_progfile(TWO_SITE_PROGFILE)
    grid = run_job(ring, 4, device="v2", plan=plan)
    local = run_job(ring, 4, device="v2")
    assert grid.results == local.results  # same math
    assert grid.elapsed > 1.25 * local.elapsed  # WAN hops on the ring


def test_grid_site_failure_recovers_on_site_spare():
    plan = parse_progfile(TWO_SITE_PROGFILE)
    expect = run_job(ring, 4, device="v2", plan=parse_progfile(TWO_SITE_PROGFILE)).results
    res = run_job(
        ring, 4, device="v2", plan=plan,
        faults=ExplicitFaults([(0.05, 2)]),  # b1, on the remote site
        limit=600.0,
    )
    assert res.restarts == 1
    assert res.results == expect
    disp = res.extras["dispatcher"]
    assert disp.states[2].host.name == "bx"
    assert disp.states[2].host.site == "beta"
