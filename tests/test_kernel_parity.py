"""Dispatch-path parity: flat slots against legacy closures.

The flat event kernel keeps every heap entry a ``(time, seq, slot, a,
b)`` 5-tuple in both modes; :data:`repro.simnet.kernel.FLAT_DISPATCH`
only selects whether *call sites* push inline slot events or slot-0
closures.  Both paths push exactly one entry at the same point in
execution, so the two modes must produce the same simulation — not just
equal results, but byte-identical trace sequences (same kinds, same
fields, same simulated timestamps, same order) on arbitrary programs.
These tests run the random-program generators of
``test_random_programs`` through both dispatch paths and diff the full
trace streams; any divergence in event ordering between the paths shows
up here as a first-divergence assertion.
"""

from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.simnet.kernel as kernel
from repro.ft.failure import ExplicitFaults
from repro.runtime.mpirun import run_job
from tests.test_random_programs import NPROCS, make_program, step_st


@contextmanager
def dispatch(flat: bool):
    """Run a block with the given dispatch mode (Simulator reads the
    module global once, at construction)."""
    old = kernel.FLAT_DISPATCH
    kernel.FLAT_DISPATCH = flat
    try:
        yield
    finally:
        kernel.FLAT_DISPATCH = old


def _trace(res):
    return [
        (rec.time, rec.kind, sorted(rec.fields.items()))
        for rec in res.tracer.records
    ]


def _run_both(prog, device, **kw):
    out = {}
    for flat in (True, False):
        with dispatch(flat):
            out[flat] = run_job(prog, NPROCS, device=device, trace=True,
                                limit=3600.0, **kw)
    return out[True], out[False]


def _assert_identical(fast, legacy):
    assert fast.results == legacy.results
    t_fast, t_legacy = _trace(fast), _trace(legacy)
    if t_fast != t_legacy:  # pinpoint the first divergence for the report
        for i, (a, b) in enumerate(zip(t_fast, t_legacy)):
            assert a == b, f"trace diverges at record {i}: {a} != {b}"
        assert len(t_fast) == len(t_legacy)


def test_flat_dispatch_is_the_default():
    assert kernel.FLAT_DISPATCH is True
    assert kernel.Simulator().flat is True
    with dispatch(False):
        assert kernel.Simulator().flat is False


@given(st.lists(step_st, min_size=2, max_size=8))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_v2_traces_identical_across_dispatch_paths(schedule):
    prog = make_program(schedule)
    _assert_identical(*_run_both(prog, "v2"))


@given(st.lists(step_st, min_size=2, max_size=8))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_p4_traces_identical_across_dispatch_paths(schedule):
    prog = make_program(schedule)
    _assert_identical(*_run_both(prog, "p4"))


@given(
    st.lists(step_st, min_size=3, max_size=8),
    st.floats(min_value=0.001, max_value=0.2),
    st.integers(0, NPROCS - 1),
)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_v2_fault_recovery_traces_identical_across_dispatch_paths(
    schedule, t_kill, victim
):
    """Recovery exercises every extension slot (stream arrivals during
    replay, timer storms from reconnect backoff) — the paths must stay
    in lockstep through a crash and restart, not just in steady state."""
    prog = make_program(schedule)
    _assert_identical(*_run_both(
        prog, "v2", faults=ExplicitFaults([(t_kill, victim)]),
    ))
