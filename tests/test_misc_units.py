"""Unit tests: API helpers, protocol segmentation, reports, metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import breakdown, mops
from repro.analysis.report import Report, format_table
from repro.devices.base import segment_sizes
from repro.mpi.api import payload_nbytes
from repro.mpi.datatypes import Envelope
from repro.mpi.protocol import Packet, PacketKind, is_app_payload, wire_bytes
from repro.mpi.timing import CallTimer
from repro.runtime.config import DEFAULT_TESTBED
from repro.runtime.mpirun import run_job


# -- payload size estimation ---------------------------------------------------


def test_payload_nbytes_none_is_zero():
    assert payload_nbytes(None) == 0


def test_payload_nbytes_bytes():
    assert payload_nbytes(b"abcd") == 4


def test_payload_nbytes_numpy():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80


def test_payload_nbytes_scalars_and_containers():
    assert payload_nbytes(3.14) == 8
    assert payload_nbytes([1.0, 2.0]) == 16 + 16
    assert payload_nbytes(object()) == 64


# -- segmentation ----------------------------------------------------------------


def test_segment_sizes_small_single():
    assert segment_sizes(100, 16384) == [100]


def test_segment_sizes_exact_multiple():
    assert segment_sizes(32768, 16384) == [16384, 16384]


def test_segment_sizes_remainder_last():
    assert segment_sizes(40000, 16384) == [16384, 16384, 7232]


def test_segment_sizes_zero_is_one_byte():
    assert segment_sizes(0, 16384) == [1]


def test_segment_sizes_sum_preserved():
    for total in (1, 100, 16384, 16385, 999_999):
        assert sum(segment_sizes(total, 16384)) == total


# -- protocol packets -------------------------------------------------------------


def env(nbytes=100):
    return Envelope(0, 1, 0, 0, nbytes, 1)


def test_wire_bytes_adds_header():
    pkt = Packet(PacketKind.EAGER, env(5000), payload_bytes=5000)
    assert wire_bytes(pkt, header=32) == 5032


def test_is_app_payload_classification():
    assert is_app_payload(Packet(PacketKind.EAGER, env(), 10))
    assert is_app_payload(Packet(PacketKind.RTS, env(), 0))
    assert is_app_payload(Packet(PacketKind.DATA, env(), 10))
    assert not is_app_payload(Packet(PacketKind.CTS, env(), 0))
    assert not is_app_payload(Packet(PacketKind.CONTROL, env(), 0))


# -- call timer -------------------------------------------------------------------


def test_timer_accumulates_outermost_only():
    t = CallTimer()
    t.enter("send", 0.0)
    t.enter("isend", 0.1)  # nested: attributed to the outer category
    t.exit(0.5)
    t.exit(1.0)
    assert t.get("send") == pytest.approx(1.0)
    assert t.get("isend") == 0.0
    assert t.counts["send"] == 1


def test_timer_comm_total_excludes_compute():
    t = CallTimer()
    t.enter("compute", 0.0)
    t.exit(2.0)
    t.enter("wait", 2.0)
    t.exit(3.0)
    assert t.comm_total() == pytest.approx(1.0)
    assert t.total() == pytest.approx(3.0)


def test_timer_unbalanced_exit_raises():
    t = CallTimer()
    with pytest.raises(RuntimeError):
        t.exit(1.0)


# -- report tables ------------------------------------------------------------------


def test_format_table_aligns_and_renders_floats():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 1234.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "1,234" in out
    assert "2.500" in out


def test_report_render_contains_title_and_blocks():
    rep = Report("My Title").add("hello").table(["x"], [[1]])
    text = rep.render()
    assert "My Title" in text
    assert "hello" in text


# -- metrics ------------------------------------------------------------------------


def test_mops_and_breakdown():
    def prog(mpi):
        yield from mpi.compute(seconds=1.0)
        yield from mpi.barrier()
        return None

    res = run_job(prog, 2, device="p4")
    assert mops(1e9, res) == pytest.approx(1e3 / res.elapsed, rel=1e-6)
    b = breakdown(res)
    assert b["compute"] == pytest.approx(1.0, abs=0.01)
    assert b["comm"] > 0
    assert b["elapsed"] >= b["compute"]


# -- config -----------------------------------------------------------------------


def test_config_with_creates_modified_copy():
    cfg = DEFAULT_TESTBED.with_(cn_flops=1e9)
    assert cfg.cn_flops == 1e9
    assert DEFAULT_TESTBED.cn_flops != 1e9
    assert cfg.link is DEFAULT_TESTBED.link


# -- api odds and ends ----------------------------------------------------------------


def test_compute_requires_exactly_one_argument():
    def prog(mpi):
        with pytest.raises(ValueError):
            yield from mpi.compute()
        with pytest.raises(ValueError):
            yield from mpi.compute(seconds=1.0, flops=1.0)
        yield from mpi.compute(seconds=0.0)
        return "ok"

    assert run_job(prog, 1, device="p4").results == ["ok"]


def test_sendrecv_exchanges_both_ways():
    def prog(mpi):
        peer = 1 - mpi.rank
        msg = yield from mpi.sendrecv(
            peer, nbytes=64, tag=5, data=f"from{mpi.rank}",
            source=peer, recvtag=5,
        )
        return msg.data

    res = run_job(prog, 2, device="p4")
    assert res.results == ["from1", "from0"]


def test_test_advances_progress_without_blocking():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(seconds=0.01)
            yield from mpi.send(1, nbytes=64, tag=1)
            return None
        req = yield from mpi.irecv(source=0, tag=1)
        polls = 0
        while True:
            done = yield from mpi.test(req)
            if done:
                break
            polls += 1
            yield from mpi.compute(seconds=0.002)
        return polls

    res = run_job(prog, 2, device="p4")
    assert res.results[1] > 0


def test_scatter_requires_values_on_root():
    def solo(mpi):
        with pytest.raises(ValueError):
            yield from mpi.scatter(root=0, values=[1, 2])  # wrong length
        out = yield from mpi.scatter(root=0, values=["only"])
        return out

    assert run_job(solo, 1, device="p4").results == ["only"]


def test_scatter_two_ranks():
    def prog(mpi):
        values = [10, 20] if mpi.rank == 0 else None
        out = yield from mpi.scatter(root=0, values=values)
        return out

    assert run_job(prog, 2, device="p4").results == [10, 20]


def test_jobresult_timer_sum():
    def prog(mpi):
        yield from mpi.compute(seconds=0.5)
        return None

    res = run_job(prog, 3, device="p4")
    assert res.timer_sum("compute") == pytest.approx(1.5, abs=0.01)


def test_waitany_returns_first_completed():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.compute(seconds=0.05)
            yield from mpi.send(1, nbytes=64, tag=1)
            yield from mpi.compute(seconds=0.05)
            yield from mpi.send(1, nbytes=64, tag=2)
            return None
        r1 = yield from mpi.irecv(source=0, tag=1)
        r2 = yield from mpi.irecv(source=0, tag=2)
        idx = yield from mpi.waitany([r2, r1])
        rest = yield from mpi.waitall([r1, r2])
        return idx

    res = run_job(prog, 2, device="p4")
    assert res.results[1] == 1  # tag-1 arrives first; it is reqs[1]


def test_waitsome_returns_completed_indices():
    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send(1, nbytes=64, tag=1)
            yield from mpi.send(1, nbytes=64, tag=2)
            yield from mpi.compute(seconds=0.2)
            yield from mpi.send(1, nbytes=64, tag=3)
            return None
        reqs = []
        for t in (1, 2, 3):
            r = yield from mpi.irecv(source=0, tag=t)
            reqs.append(r)
        yield from mpi.compute(seconds=0.05)  # let 1 and 2 arrive
        done = yield from mpi.waitsome(reqs)
        yield from mpi.waitall(reqs)
        return done

    res = run_job(prog, 2, device="p4")
    assert set(res.results[1]) >= {0, 1}
    assert 2 not in res.results[1]


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5, 8])
def test_scan_inclusive_prefix(nprocs):
    def prog(mpi):
        out = yield from mpi.scan(value=mpi.rank + 1, nbytes=8)
        return out

    res = run_job(prog, nprocs, device="p4")
    for r in range(nprocs):
        assert res.results[r] == sum(range(1, r + 2))


def test_scan_on_v2_and_under_fault():
    from repro.ft.failure import ExplicitFaults

    def prog(mpi):
        yield from mpi.compute(seconds=0.05)
        out = yield from mpi.scan(value=float(mpi.rank + 1), nbytes=8)
        yield from mpi.compute(seconds=0.05)
        total = yield from mpi.allreduce(value=out, nbytes=8)
        return total

    clean = run_job(prog, 4, device="v2")
    faulty = run_job(prog, 4, device="v2",
                     faults=ExplicitFaults([(0.03, 2)]), limit=600.0)
    assert faulty.restarts == 1
    assert faulty.results == clean.results
