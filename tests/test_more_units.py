"""Edge-case unit tests across modules."""

import pytest

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, CTX_PT2PT, Envelope
from repro.runtime.cluster import Cluster
from repro.runtime.mpirun import run_job
from repro.simnet import DeadlockError, Simulator, any_of


def test_run_job_rejects_unknown_device():
    def prog(mpi):
        yield mpi.sim.timeout(0.0)

    with pytest.raises(ValueError, match="unknown device"):
        run_job(prog, 2, device="mpich9")


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        any_of(sim, [])


def test_envelope_matching_semantics():
    env = Envelope(src=3, dst=0, tag=7, context=CTX_PT2PT, nbytes=10)
    assert env.matches(3, 7, CTX_PT2PT)
    assert env.matches(ANY_SOURCE, 7, CTX_PT2PT)
    assert env.matches(3, ANY_TAG, CTX_PT2PT)
    assert not env.matches(4, 7, CTX_PT2PT)
    assert not env.matches(3, 8, CTX_PT2PT)
    assert not env.matches(3, 7, CTX_PT2PT + 1)
    assert env.msgid == (3, 0)


def test_cluster_hosts_have_testbed_parameters():
    cluster = Cluster()
    cn = cluster.add_cn("cn0")
    aux = cluster.add_aux("aux0")
    assert cn.cpu_flops == cluster.cfg.cn_flops
    assert aux.cpu_flops == cluster.cfg.aux_flops
    assert aux.reliable and not cn.reliable


def test_deadlocked_program_is_diagnosed():
    """A program that receives a message nobody sends deadlocks visibly."""

    def prog(mpi):
        if mpi.rank == 1:
            yield from mpi.recv(source=0, tag=99)
        else:
            yield from mpi.compute(seconds=0.01)
        return None

    with pytest.raises(DeadlockError, match="never resolved"):
        run_job(prog, 2, device="p4")


def test_program_exception_propagates_with_rank():
    def prog(mpi):
        yield from mpi.compute(seconds=0.01)
        if mpi.rank == 1:
            raise ValueError("user bug on rank 1")
        yield from mpi.barrier()
        return None

    with pytest.raises(Exception, match="rank1"):
        run_job(prog, 2, device="p4")


def test_v2_program_exception_aborts_job():
    def prog(mpi):
        yield from mpi.compute(seconds=0.01)
        if mpi.rank == 0:
            raise RuntimeError("app failure")
        yield from mpi.barrier()
        return None

    with pytest.raises(RuntimeError, match="app failure"):
        run_job(prog, 2, device="v2")


def test_single_rank_job_all_devices():
    def prog(mpi):
        yield from mpi.compute(seconds=0.1)
        out = yield from mpi.allreduce(value=41, nbytes=8)
        yield from mpi.send(0, nbytes=10, tag=1, data="self")
        msg = yield from mpi.recv(source=0, tag=1)
        return (out + 1, msg.data)

    for dev in ("p4", "v1", "v2"):
        res = run_job(prog, 1, device=dev)
        assert res.results == [(42, "self")], dev


def test_zero_byte_messages_roundtrip():
    def prog(mpi):
        peer = 1 - mpi.rank
        if mpi.rank == 0:
            yield from mpi.send(peer, nbytes=0, tag=1)
            msg = yield from mpi.recv(source=peer, tag=2)
            return msg.nbytes
        msg = yield from mpi.recv(source=peer, tag=1)
        yield from mpi.send(peer, nbytes=0, tag=2)
        return msg.nbytes

    for dev in ("p4", "v1", "v2"):
        assert run_job(prog, 2, device=dev).results == [0, 0], dev


def test_many_outstanding_requests():
    """Request bookkeeping survives hundreds of outstanding operations."""

    def prog(mpi):
        peer = 1 - mpi.rank
        n = 150
        sends, recvs = [], []
        for i in range(n):
            r = yield from mpi.isend(peer, nbytes=200, tag=i, data=i)
            sends.append(r)
        for i in range(n):
            r = yield from mpi.irecv(source=peer, tag=i)
            recvs.append(r)
        yield from mpi.waitall(sends + recvs)
        return sum(r.message.data for r in recvs)

    res = run_job(prog, 2, device="v2")
    assert res.results == [sum(range(150))] * 2


def test_tags_segregate_interleaved_traffic():
    def prog(mpi):
        peer = 1 - mpi.rank
        evens = []
        odds = []
        for i in range(10):
            yield from mpi.send(peer, nbytes=32, tag=i % 2, data=i)
        for _ in range(5):
            m = yield from mpi.recv(source=peer, tag=0)
            evens.append(m.data)
        for _ in range(5):
            m = yield from mpi.recv(source=peer, tag=1)
            odds.append(m.data)
        return (evens, odds)

    res = run_job(prog, 2, device="p4")
    assert res.results[0] == ([0, 2, 4, 6, 8], [1, 3, 5, 7, 9])


def test_large_rank_count_barrier():
    def prog(mpi):
        yield from mpi.barrier()
        out = yield from mpi.allreduce(value=1, nbytes=8)
        return out

    res = run_job(prog, 24, device="p4")
    assert res.results == [24] * 24


def test_stats_track_traffic():
    def prog(mpi):
        peer = 1 - mpi.rank
        if mpi.rank == 0:
            yield from mpi.send(peer, nbytes=5000, tag=1)
        else:
            yield from mpi.recv(source=peer, tag=1)
        return None

    res = run_job(prog, 2, device="p4")
    assert res.stats[0]["bytes_sent"] >= 5000
    assert res.stats[1]["bytes_received"] >= 5000


def test_rng_streams_are_stable_and_independent():
    from repro.simnet.rng import RngRegistry

    a = RngRegistry(7)
    b = RngRegistry(7)
    # same seed + name -> same stream
    assert a.stream("x").integers(0, 1000) == b.stream("x").integers(0, 1000)
    # different names -> independent streams
    a2 = RngRegistry(7)
    xs = a2.stream("x").integers(0, 1000, size=5).tolist()
    ys = a2.stream("y").integers(0, 1000, size=5).tolist()
    assert xs != ys
    # stream objects are cached
    r = RngRegistry(1)
    assert r.stream("s") is r.stream("s")


def test_rng_fork_changes_streams():
    from repro.simnet.rng import RngRegistry

    base = RngRegistry(3)
    fork = base.fork(1)
    assert base.master_seed != fork.master_seed
    assert (base.stream("z").integers(0, 10**6)
            != fork.stream("z").integers(0, 10**6))


def test_tracer_select_prefix():
    from repro.simnet.trace import Tracer

    t = Tracer(enabled=True)
    t.emit(0.0, "v2.tx", x=1)
    t.emit(0.1, "v2.restart", x=2)
    t.emit(0.2, "net.xfer", x=3)
    assert len(t.select("v2")) == 2
    assert len(t.select("v2.tx")) == 1
    assert len(t.select("net")) == 1
    assert len(t) == 3
    t.clear()
    assert len(t) == 0


def test_tracer_disabled_records_nothing():
    from repro.simnet.trace import Tracer

    t = Tracer(enabled=False)
    t.emit(0.0, "anything")
    assert len(t) == 0


def test_thirty_two_ranks_on_v2():
    """The paper's maximum deployment size: 32 computing nodes on V2."""

    def prog(mpi):
        total = yield from mpi.allreduce(value=mpi.rank, nbytes=8)
        out = yield from mpi.allgather(value=mpi.rank % 4, nbytes=8)
        return (total, sum(out))

    res = run_job(prog, 32, device="v2")
    assert res.results[0] == (sum(range(32)), 8 * (0 + 1 + 2 + 3))
    assert len(set(res.results)) == 1
