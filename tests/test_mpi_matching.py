"""Unit tests for the MPI matching engine."""

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, CTX_COLL, CTX_PT2PT, Envelope
from repro.mpi.matching import MatchEngine
from repro.mpi.requests import RecvRequest
from repro.simnet import Simulator


def env(src=0, dst=1, tag=0, ctx=CTX_PT2PT, nbytes=10, sclock=0, data=None):
    return Envelope(src, dst, tag, ctx, nbytes, sclock, data)


def req(sim, src=ANY_SOURCE, tag=ANY_TAG, ctx=CTX_PT2PT):
    return RecvRequest(sim, src, tag, ctx)


def test_arrival_queues_unexpected_when_no_recv():
    m = MatchEngine()
    assert m.arrived(env()) is None
    assert len(m.unexpected) == 1


def test_post_matches_unexpected():
    m = MatchEngine()
    sim = Simulator()
    e = env(src=3, tag=7)
    m.arrived(e)
    r = req(sim, src=3, tag=7)
    assert m.post(r) is e
    assert m.idle()


def test_arrival_matches_posted():
    m = MatchEngine()
    sim = Simulator()
    r = req(sim, src=3, tag=7)
    assert m.post(r) is None
    e = env(src=3, tag=7)
    assert m.arrived(e) is r


def test_wildcard_source_matches_any():
    m = MatchEngine()
    sim = Simulator()
    r = req(sim, src=ANY_SOURCE, tag=5)
    m.post(r)
    assert m.arrived(env(src=9, tag=5)) is r


def test_wildcard_tag_matches_any():
    m = MatchEngine()
    sim = Simulator()
    r = req(sim, src=2, tag=ANY_TAG)
    m.post(r)
    assert m.arrived(env(src=2, tag=42)) is r


def test_tag_mismatch_does_not_match():
    m = MatchEngine()
    sim = Simulator()
    r = req(sim, src=2, tag=1)
    m.post(r)
    assert m.arrived(env(src=2, tag=2)) is None
    assert len(m.posted) == 1
    assert len(m.unexpected) == 1


def test_context_separation():
    """Collective-context traffic never matches point-to-point receives."""
    m = MatchEngine()
    sim = Simulator()
    r = req(sim, src=ANY_SOURCE, tag=ANY_TAG, ctx=CTX_PT2PT)
    m.post(r)
    assert m.arrived(env(ctx=CTX_COLL)) is None


def test_posted_receives_match_in_post_order():
    m = MatchEngine()
    sim = Simulator()
    r1 = req(sim, src=ANY_SOURCE, tag=ANY_TAG)
    r2 = req(sim, src=ANY_SOURCE, tag=ANY_TAG)
    m.post(r1)
    m.post(r2)
    assert m.arrived(env()) is r1
    assert m.arrived(env()) is r2


def test_unexpected_matched_in_arrival_order():
    m = MatchEngine()
    sim = Simulator()
    e1 = env(sclock=1)
    e2 = env(sclock=2)
    m.arrived(e1)
    m.arrived(e2)
    r = req(sim)
    assert m.post(r) is e1


def test_specific_recv_skips_nonmatching_unexpected():
    m = MatchEngine()
    sim = Simulator()
    m.arrived(env(src=1, tag=10))
    wanted = env(src=2, tag=20)
    m.arrived(wanted)
    r = req(sim, src=2, tag=20)
    assert m.post(r) is wanted
    assert len(m.unexpected) == 1  # the other one stays


def test_probe_finds_first_match_without_consuming():
    m = MatchEngine()
    sim = Simulator()
    e = env(src=4, tag=4)
    m.arrived(e)
    assert m.probe(4, 4, CTX_PT2PT) is e
    assert m.probe(ANY_SOURCE, ANY_TAG, CTX_PT2PT) is e
    assert m.probe(5, 4, CTX_PT2PT) is None
    assert len(m.unexpected) == 1


def test_cancel_posted_receive():
    m = MatchEngine()
    sim = Simulator()
    r = req(sim)
    m.post(r)
    assert m.cancel(r) is True
    assert m.cancel(r) is False
    assert m.idle()
